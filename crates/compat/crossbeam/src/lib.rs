//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace uses single-consumer channels, so mpsc's restriction
//! (a `Receiver` is not `Clone`) does not bite; `Receiver` here wraps the
//! std receiver in a mutex so it can still be shared by reference if a
//! future caller needs `&self` receiving from multiple threads.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
