//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly and a poisoned mutex is recovered
//! rather than propagated, which matches parking_lot's semantics (it has
//! no poisoning at all).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
