//! Offline stand-in for `serde_json`.
//!
//! Serializes the local `serde` crate's [`Value`] tree to JSON text and
//! parses JSON text back. Output matches what real serde_json produces for
//! the same derives (compact separators, externally tagged enums), so trace
//! files are interchangeable between the two implementations.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{self, Write};

/// Error raised by encoding or decoding.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.msg)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display for floats is shortest-roundtrip; add a
                // trailing `.0` for integral values like serde_json does.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.fail("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.fail("bad escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.fail("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.fail("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.fail("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.fail("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.fail("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.fail("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.fail("bad number"))
    }
}

const fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a [`Value`] from JSON text.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_value(&value_from_str(s)?)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "-17", "3.25", "\"hi\\n\""] {
            let v = value_from_str(json).unwrap();
            assert_eq!(to_string(&RawValue(v.clone())).unwrap(), json, "{json}");
        }
    }

    struct RawValue(Value);
    impl Serialize for RawValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn roundtrip_nested() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x y","d":-2.5}"#;
        let v = value_from_str(json).unwrap();
        assert_eq!(to_string(&RawValue(v)).unwrap(), json);
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v = value_from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aé😀b");
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
