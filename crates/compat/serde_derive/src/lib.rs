//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented without `syn`/`quote` (no crates-io access): the input item
//! is parsed by a small hand-rolled walker that understands exactly the
//! shapes this workspace uses — structs with named fields, tuple structs,
//! and enums whose variants are unit, newtype, tuple or struct-like —
//! plus the `#[serde(skip)]` field attribute. Generated impls target the
//! value-tree model of the local `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------- item model

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    /// `struct S { a: T, .. }`
    Named(Vec<Field>),
    /// `struct S(T, ..);` — arity only, newtypes serialize transparently.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    /// Raw generics tokens between `<` and `>`, e.g. `'a`.
    generics: String,
    shape: Shape,
}

// ---------------------------------------------------------------- parsing

/// Does a `#[...]` attribute group mark a serde skip?
fn attr_is_skip(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consume leading attributes; report whether any was `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= attr_is_skip(g);
        pos += 2;
    }
    (pos, skip)
}

/// Consume an optional `pub` / `pub(..)` visibility.
fn eat_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(pos) {
        if id.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Skip a type (or any token run) up to a top-level comma, tracking `<>`
/// depth so commas inside generic arguments do not split fields.
fn skip_to_comma(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle: i32 = 0;
    while pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[pos] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return pos,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

/// Count the top-level comma-separated entries of a tuple body.
fn tuple_arity(body: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        let (p, _) = eat_attrs(&tokens, pos);
        let p = eat_vis(&tokens, p);
        if p >= tokens.len() {
            break;
        }
        arity += 1;
        pos = skip_to_comma(&tokens, p) + 1;
    }
    arity
}

/// Parse `{ attrs vis name : Type, .. }` named fields.
fn parse_named_fields(body: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (p, skip) = eat_attrs(&tokens, pos);
        let p = eat_vis(&tokens, p);
        let Some(TokenTree::Ident(name)) = tokens.get(p) else {
            break;
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
        // name, ':', then the type up to the next top-level comma.
        pos = skip_to_comma(&tokens, p + 2) + 1;
    }
    fields
}

fn parse_variants(body: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (p, _) = eat_attrs(&tokens, pos);
        let Some(TokenTree::Ident(name)) = tokens.get(p) else {
            break;
        };
        let name = name.to_string();
        let mut p = p + 1;
        let shape = match tokens.get(p) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                p += 1;
                VariantShape::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                p += 1;
                VariantShape::Named(parse_named_fields(g))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip a possible discriminant and the separating comma.
        pos = skip_to_comma(&tokens, p) + 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut pos, _) = eat_attrs(&tokens, 0);
    pos = eat_vis(&tokens, pos);
    let is_enum = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("serde_derive: expected struct or enum, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    pos += 1;
    // Optional generics: capture raw tokens between the angle brackets.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            pos += 1;
            let mut depth = 1;
            while pos < tokens.len() {
                if let TokenTree::Punct(p) = &tokens[pos] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                pos += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                match &tokens[pos] {
                    // Keep joint punctuation (e.g. the `'` of a lifetime)
                    // glued to the following token, or the re-parse fails.
                    TokenTree::Punct(p) => {
                        generics.push(p.as_char());
                        if p.spacing() == proc_macro::Spacing::Alone {
                            generics.push(' ');
                        }
                    }
                    t => {
                        generics.push_str(&t.to_string());
                        generics.push(' ');
                    }
                }
                pos += 1;
            }
        }
    }
    let shape = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_variants(g))
            } else {
                Shape::Named(parse_named_fields(g))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(tuple_arity(g))
        }
        other => panic!("serde_derive: unsupported item body {other:?}"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", item.name)
    } else {
        format!(
            "impl<{g}> ::serde::{trait_name} for {}<{g}> ",
            item.name,
            g = item.generics
        )
    }
}

// ------------------------------------------------------------- generation

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut s =
                String::from("let mut pairs: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "pairs.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(pairs)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{v}]))]),\n",
                            b = binds.join(", "),
                            v = vals.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "inner.push((\"{0}\".to_string(), \
                                     ::serde::Serialize::to_value({0})));",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{\n\
                             let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n{p}\n\
                             ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(inner))]) }},\n",
                            b = binds.join(", "),
                            p = pushes.join("\n")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "{header}{{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        header = impl_header(&item, "Serialize")
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// `field: <decode field "f">` expression for named-field construction.
fn named_field_inits(type_name: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{0}: ::serde::Deserialize::from_value({source}.get(\"{0}\")\
                 .unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::Error::msg(\
                 format!(\"field `{0}` of {type_name}: {{e}}\")))?,\n",
                f.name
            ));
        }
    }
    inits
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits = named_field_inits(name, fields, "v");
            format!(
                "if v.as_object().is_none() {{\n\
                 return Err(::serde::Error::msg(format!(\
                 \"expected object for {name}, got {{}}\", v.kind())));\n}}\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::msg(\
                 \"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::msg(\"wrong arity for {name}\"));\n}}\n\
                 Ok({name}({gets}))",
                gets = gets.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"))
                    }
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(val)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = val.as_array().ok_or_else(|| ::serde::Error::msg(\
                             \"expected array for {name}::{vn}\"))?;\n\
                             if items.len() != {n} {{\n\
                             return Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\"));\n}}\n\
                             Ok({name}::{vn}({gets}))\n}},\n",
                            gets = gets.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits = named_field_inits(&format!("{name}::{vn}"), fields, "val");
                        data_arms
                            .push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown variant {{other:?}} of {name}\"))),\n}},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, val) = &pairs[0];\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::Error::msg(format!(\
                 \"unknown variant {{other:?}} of {name}\"))),\n}}\n}},\n\
                 other => Err(::serde::Error::msg(format!(\
                 \"expected variant of {name}, got {{}}\", other.kind()))),\n}}"
            )
        }
    };
    let header = if item.generics.is_empty() {
        format!("impl ::serde::Deserialize for {name} ")
    } else {
        format!(
            "impl<{g}> ::serde::Deserialize for {name}<{g}> ",
            g = item.generics
        )
    };
    let out = format!(
        "{header}{{\n fn from_value(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
