//! Offline stand-in for `rand`.
//!
//! Provides the slice of the rand API this workspace uses: `RngCore`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges. Distribution quality matches what deterministic workload
//! generation needs (uniform via widening multiply); it is not a
//! cryptographic source.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire-style widening multiply maps next_u64 uniformly onto 0..span
    // (modulo a bias below one part in 2^64, irrelevant for workloads).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_u64(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full u64 domain; take the raw draw.
                let off = if span == 0 { rng.next_u64() } else { sample_u64(rng, span) };
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 mantissa bits of uniformity in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let lo = self.start as f64;
                let hi = self.end as f64;
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Default small rng: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let a = rng.gen_range(0..7usize);
            assert!(a < 7);
            let b = rng.gen_range(-3..4i32);
            assert!((-3..4).contains(&b));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
