//! Offline stand-in for `rand_chacha`.
//!
//! `ChaCha8Rng` here is a real (if compact) ChaCha8 keystream generator:
//! 8 double-rounds over the standard ChaCha state, keyed by expanding the
//! `seed_from_u64` seed the same way rand_core does (seed repeated across
//! the 32-byte key via SplitMix64). The workspace only relies on the
//! stream being deterministic per seed, but keeping the core primitive
//! honest costs little.

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the block is exhausted.
    idx: usize,
}

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..4 {
            // Two rounds per iteration: column round + diagonal round.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed to a 256-bit key with SplitMix64.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let mut same = true;
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            same &= x == c.next_u64();
        }
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn gen_range_works_through_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_range(0..10u32) < 10);
        }
    }
}
