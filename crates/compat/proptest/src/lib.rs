//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! deterministic strategies (`Just`, ranges, tuples, `any`, regex-lite
//! string literals, `collection::vec`, `prop_map`, `prop_oneof!`,
//! `prop_compose!`) and the `proptest!` test harness macro. Each test gets
//! a fixed seed derived from its name, so failures reproduce exactly.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated values still in scope, visible via assert messages)
//! and string strategies support only the character-class + quantifier
//! regex subset (`[a-z]{1,12}`, `[ -~]{0,40}`, bare classes, `* + ?`).

pub mod test_runner {
    /// Deterministic SplitMix64 generator used by all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed derived from the test name (FNV-1a), so every test has a
        /// stable but distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seeded(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Test-harness configuration. Only `cases` is consulted; the other
    /// fields exist so `..ProptestConfig::default()` struct update works.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy, the element type of `prop_oneof!`.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Strategy built from a plain generation closure (`prop_compose!`).
    pub struct FnStrategy<F>(F);

    impl<F> FnStrategy<F> {
        pub fn new(f: F) -> Self {
            FnStrategy(f)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    // ------------------------------------------------------ integer ranges

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // ------------------------------------------------------------- tuples

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    }

    // ------------------------------------------- regex-lite string literals

    /// A `&str` strategy interprets the string as a character-class regex:
    /// a sequence of `[class]` atoms, each optionally quantified with
    /// `{n}`, `{m,n}`, `*`, `+`, or `?`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut out = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => return out,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().unwrap();
                    let hi = chars.next().unwrap();
                    // `lo` is already in `out`; add the rest of the range.
                    for code in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            out.push(ch);
                        }
                    }
                }
                '\\' => {
                    let esc = chars.next().unwrap_or('\\');
                    out.push(esc);
                    prev = Some(esc);
                }
                c => {
                    out.push(c);
                    prev = Some(c);
                }
            }
        }
        panic!("unterminated character class in string strategy");
    }

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let mut chars = pat.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => parse_class(&mut chars),
                '\\' => vec![chars.next().unwrap_or('\\')],
                c => vec![c],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad quantifier"),
                            b.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(!choices.is_empty(), "empty character class");
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pat) {
            let span = (atom.max - atom.min + 1) as u64;
            let count = atom.min + rng.below(span) as usize;
            for _ in 0..count {
                let i = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[i]);
            }
        }
        out
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Whole-domain generation for `any::<T>()`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    /// Strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact size or a range.
    pub trait IntoSizeRange {
        /// Inclusive bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing vectors of elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

// -------------------------------------------------------------------- macros

/// Run each contained `#[test] fn name(bindings in strategies) { .. }` as a
/// deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Define a function returning a composite strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($param:ident : $pty:ty),* $(,)?) (
        $($arg:ident in $strat:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                },
            )
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Without shrinking, a failed property simply panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec() {
        let mut rng = TestRng::seeded(1);
        let s = crate::collection::vec(0u32..10, 3..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn regex_lite_patterns() {
        let mut rng = TestRng::seeded(2);
        for _ in 0..100 {
            let s = "[A-Za-z_][A-Za-z0-9_]{0,10}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            let t = "[ -~]{0,40}".generate(&mut rng);
            assert!(t.len() <= 40);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = TestRng::seeded(3);
        let s = prop_oneof![Just(None), (0u32..4).prop_map(Some)];
        let mut seen_none = false;
        let mut seen_some = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                None => seen_none = true,
                Some(x) => {
                    assert!(x < 4);
                    seen_some = true;
                }
            }
        }
        assert!(seen_none && seen_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn harness_macro_runs(a in 0u64..100, b in any::<i64>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
        }
    }

    prop_compose! {
        fn arb_pair()(x in 0u32..5, y in 0u32..5) -> (u32, u32) {
            (x, y)
        }
    }

    #[test]
    fn compose_macro_works() {
        let mut rng = TestRng::seeded(4);
        for _ in 0..50 {
            let (x, y) = arb_pair().generate(&mut rng);
            assert!(x < 5 && y < 5);
        }
    }
}
