//! Offline stand-in for `serde`.
//!
//! The build environment has no crates-io access, so this workspace ships a
//! minimal local replacement for the handful of serde features it actually
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs and enums,
//! plus JSON encoding through the sibling `serde_json` shim.
//!
//! The model is deliberately simpler than real serde: serialization goes
//! through an owned [`Value`] tree rather than visitor-driven streaming.
//! The JSON text produced is compatible with what real serde_json emits
//! for the same types (externally tagged enums, objects for named-field
//! structs, transparent newtypes), so trace files written by either
//! implementation parse with the other.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt(n) => Some(n),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

fn expected(what: &str, got: &Value) -> Error {
    Error::msg(format!("expected {what}, got {}", got.kind()))
}

/// Types encodable as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types decodable from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n < 0 { Value::Int(n as i64) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match *v {
                    Value::Int(n) => n as i128,
                    Value::UInt(n) => n as i128,
                    _ => return Err(expected("integer", v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| expected("number", v))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// ----------------------------------------------------- references & seqs

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| expected("array", v))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| expected("array", v))?;
                let want = [$($n),+].len();
                if items.len() != want {
                    return Err(Error::msg(format!(
                        "expected tuple of {want} elements, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ----------------------------------------------------------------- maps

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            <[i64; 2]>::from_value(&[1i64, 2].to_value()).unwrap(),
            [1, 2]
        );
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn out_of_range_integer_fails() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
