//! Bounded span ring-buffer — the "flight recorder".
//!
//! Keeps the last N engine-level spans (turn grants, matches, blocks,
//! faults, traps, panics) as purely *numeric* records keyed by decision
//! index and simulated time, never wall clock. Rendering to text happens
//! only at [`FlightRecorder::dump`], so recording is a couple of array
//! stores and the dump of a failing run is byte-identical no matter which
//! worker or job count produced it.

use serde::{Deserialize, Serialize};

/// What a recorded span describes. Argument meaning per kind is fixed by
/// the `Display`-style rendering in [`Span::render`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A rank was granted a turn: `a` = rank.
    Turn,
    /// A message matched: `a` = dst rank, `b` = src rank, `c` = seq.
    Match,
    /// A rank blocked in recv: `a` = rank, `b` = expected src (u64::MAX
    /// for wildcard).
    Block,
    /// An injected fault fired: `a` = rank, `b` = op index, `c` = extra
    /// delay.
    Fault,
    /// A marker threshold trap: `a` = rank, `b` = marker count.
    Trap,
    /// A process panicked: `a` = rank.
    Panic,
}

impl SpanKind {
    fn code(self) -> &'static str {
        match self {
            SpanKind::Turn => "turn",
            SpanKind::Match => "match",
            SpanKind::Block => "block",
            SpanKind::Fault => "fault",
            SpanKind::Trap => "trap",
            SpanKind::Panic => "panic",
        }
    }
}

/// One flight-recorder entry. All-numeric so recording never allocates
/// and the serialized form is deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Decision-log length when the span was recorded (the logical clock
    /// the replayer understands).
    pub decision: u64,
    /// Simulated time (ns).
    pub sim_time: u64,
    pub kind: SpanKind,
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

impl Span {
    /// Render one span as a stable text line.
    pub fn render(&self) -> String {
        let head = format!(
            "d{:<6} t{:<8} {:<5}",
            self.decision,
            self.sim_time,
            self.kind.code()
        );
        match self.kind {
            SpanKind::Turn => format!("{head} rank={}", self.a),
            SpanKind::Match => format!("{head} dst={} src={} seq={}", self.a, self.b, self.c),
            SpanKind::Block => {
                if self.b == u64::MAX {
                    format!("{head} rank={} from=*", self.a)
                } else {
                    format!("{head} rank={} from={}", self.a, self.b)
                }
            }
            SpanKind::Fault => format!("{head} rank={} op={} delay={}", self.a, self.b, self.c),
            SpanKind::Trap => format!("{head} rank={} marker={}", self.a, self.b),
            SpanKind::Panic => format!("{head} rank={}", self.a),
        }
    }
}

/// Default number of spans retained.
pub const FLIGHT_CAP: usize = 64;

/// Bounded ring of the most recent [`Span`]s.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: Vec<Span>,
    cap: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    /// Total spans ever recorded (≥ `ring.len()`).
    total: u64,
}

impl FlightRecorder {
    pub fn new() -> Self {
        Self::with_capacity(FLIGHT_CAP)
    }

    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(cap),
            cap,
            head: 0,
            total: 0,
        }
    }

    pub fn record(&mut self, span: Span) {
        if self.ring.len() < self.cap {
            self.ring.push(span);
        } else {
            self.ring[self.head] = span;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Spans currently retained, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.ring.len());
        for i in 0..self.ring.len() {
            out.push(self.ring[(self.head + i) % self.ring.len()]);
        }
        out
    }

    /// Total spans ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact number of spans evicted by ring overflow. Zero until the
    /// `cap+1`-th record; surfaced numerically in `MetricsReport` /
    /// `ProfileReport` so consumers need not parse the dump's text note.
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the retained spans as text lines, oldest first. The first
    /// line notes how many spans were dropped, if any.
    pub fn dump(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.ring.len() + 1);
        let dropped = self.dropped();
        if dropped > 0 {
            out.push(format!("... {dropped} earlier spans dropped"));
        }
        for s in self.spans() {
            out.push(s.render());
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(decision: u64, kind: SpanKind, a: u64) -> Span {
        Span {
            decision,
            sim_time: decision * 10,
            kind,
            a,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn ring_keeps_the_newest_cap_spans() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            fr.record(span(i, SpanKind::Turn, i));
        }
        let spans = fr.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.decision).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest first"
        );
        assert_eq!(fr.total(), 10);
    }

    #[test]
    fn dump_notes_dropped_spans() {
        let mut fr = FlightRecorder::with_capacity(2);
        for i in 0..5 {
            fr.record(span(i, SpanKind::Turn, 0));
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 3);
        assert!(dump[0].contains("3 earlier spans dropped"), "{:?}", dump[0]);
    }

    #[test]
    fn render_is_stable_per_kind() {
        let m = Span {
            decision: 7,
            sim_time: 120,
            kind: SpanKind::Match,
            a: 1,
            b: 0,
            c: 3,
        };
        assert_eq!(m.render(), "d7      t120      match dst=1 src=0 seq=3");
        let b = Span {
            decision: 2,
            sim_time: 30,
            kind: SpanKind::Block,
            a: 4,
            b: u64::MAX,
            c: 0,
        };
        assert!(b.render().ends_with("rank=4 from=*"), "{}", b.render());
    }

    #[test]
    fn dropped_counter_is_exact_across_the_capacity_edge() {
        let mut fr = FlightRecorder::with_capacity(3);
        assert_eq!(fr.dropped(), 0);
        for i in 0..3 {
            fr.record(span(i, SpanKind::Turn, i));
            assert_eq!(fr.dropped(), 0, "no drop until the ring overflows");
        }
        // The capacity edge: the very next record evicts exactly one.
        fr.record(span(3, SpanKind::Turn, 3));
        assert_eq!(fr.dropped(), 1);
        for i in 4..103 {
            fr.record(span(i, SpanKind::Turn, i));
        }
        assert_eq!(fr.dropped(), 100);
        assert_eq!(fr.total(), 103);
        assert_eq!(fr.len(), 3);
        // The text note and the numeric counter agree.
        assert!(fr.dump()[0].contains("100 earlier spans dropped"));
    }

    #[test]
    fn under_capacity_dump_has_no_drop_line() {
        let mut fr = FlightRecorder::new();
        fr.record(span(0, SpanKind::Panic, 2));
        let dump = fr.dump();
        assert_eq!(dump.len(), 1);
        assert!(dump[0].contains("panic"));
    }
}
