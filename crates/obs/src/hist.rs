//! Fixed log-2-bucket histogram.
//!
//! AIMS statistics views summarize distributions (message sizes, blocking
//! durations) rather than raw samples; a 65-bucket power-of-two histogram
//! keeps that summary O(1) per sample and O(1) space with no floating
//! point anywhere — merges and serialized form stay byte-deterministic.
//!
//! Bucket layout: bucket 0 holds exactly the value 0; bucket `i` (1..=63)
//! holds values in `[2^(i-1), 2^i - 1]`; bucket 64 holds `u64::MAX` alone
//! (the only value whose `ilog2` is 63 *and* that does not fit the
//! half-open scheme — in practice, the saturation bucket).

use serde::{Deserialize, Serialize};

/// Number of buckets: {0}, 63 power-of-two ranges, and a saturation
/// bucket for `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A log-2-bucket histogram over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket sample counts; see module docs for the layout.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            u64::MAX => HIST_BUCKETS - 1,
            v => v.ilog2() as usize + 1,
        }
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (u64::MAX, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one (element-wise bucket sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Integer mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn u64_max_goes_to_saturation_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.max, u64::MAX);
        // A second MAX saturates the sum instead of wrapping.
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
    }

    #[test]
    fn power_of_two_boundaries() {
        // 2^i opens bucket i+1; 2^i - 1 closes bucket i.
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(255), 8);
        assert_eq!(Histogram::bucket_of(256), 9);
        assert_eq!(Histogram::bucket_of(u64::MAX - 1), 64);
        assert_eq!(Histogram::bucket_of(1u64 << 63), 64);
        assert_eq!(Histogram::bucket_of((1u64 << 63) - 1), 63);
    }

    #[test]
    fn ranges_tile_the_domain() {
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(Histogram::bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0, 1, 5, 1000] {
            a.record(v);
        }
        for v in [3, 5, u64::MAX] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 7);
        assert_eq!(merged.max, u64::MAX);
        let mut all = Histogram::new();
        for v in [0, 1, 5, 1000, 3, 5, u64::MAX] {
            all.record(v);
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn mean_is_integer_division() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(4);
        assert_eq!(h.mean(), 3);
        assert_eq!(Histogram::new().mean(), 0);
    }
}
