//! tracedbg-obs — offline telemetry for the tracedbg reproduction.
//!
//! The paper's AIMS monitors feed *statistics* — communication volume,
//! blocking time, intrusion overhead — alongside the trace itself, and
//! the NTV/VK views render them. This crate is that statistics plane:
//! counters, high-water gauges, fixed log-2-bucket [`Histogram`]s, a
//! bounded [`FlightRecorder`] span ring, and the [`MetricsReport`] JSON
//! schema every `tracedbg` surface exports through.
//!
//! Design constraints (see DESIGN.md §10):
//!
//! * **Zero external deps** — only the in-tree compat `serde`/`serde_json`.
//! * **Determinism where it counts** — everything in
//!   [`EventMetrics`] derives from the executed event sequence alone and
//!   is byte-identical across `--jobs`; wall-clock facts live in
//!   [`TimingMetrics`], outside the digest.
//! * **Near-zero cost when disabled** — collection lives behind an
//!   `Option` checked at each call site; no metrics object, no work.

pub mod flight;
pub mod hist;
pub mod mad;
pub mod metrics;
pub mod report;

pub use flight::{FlightRecorder, Span, SpanKind, FLIGHT_CAP};
pub use hist::{Histogram, HIST_BUCKETS};
pub use mad::{mad, mad_score, median, SCORE_CAP};
pub use metrics::EngineMetrics;
pub use report::{
    event_digest, fnv1a64, CacheStats, ClassCount, CommandStat, EventMetrics, ExploreEvent,
    MetricsReport, TimingMetrics, WorkerStat, METRICS_SCHEMA_VERSION, METRICS_VERSION,
};
