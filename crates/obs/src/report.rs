//! The `MetricsReport` JSON schema — one shape for every producer.
//!
//! `tracedbg stats`, `tracedbg explore --metrics`, and the debugger's
//! `stats` command all export through this struct. The report is split in
//! two on purpose:
//!
//! * **`event`** — counters derived purely from the executed event
//!   sequence. Deterministic: byte-identical across `--jobs` at a fixed
//!   seed. `event_digest` (FNV-1a over the serialized `event` section)
//!   makes that contract checkable with a `grep`.
//! * **`timing`** — wall-clock and scheduling facts (walks/sec, worker
//!   utilization, cache behaviour). Honest about being nondeterministic;
//!   excluded from the digest.

use crate::metrics::EngineMetrics;
use serde::{Deserialize, Serialize, Value};

/// Schema version of [`MetricsReport`].
pub const METRICS_VERSION: u32 = 1;

/// Schema revision of the report *shape*. Bumped whenever fields are
/// added; consumers (profile, the future `serve` daemon) use it to gate
/// feature probes while `extra` keeps unknown future fields intact.
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Top-level telemetry export.
///
/// Serialization is hand-written (not derived) so a report produced by a
/// *newer* schema round-trips through an older binary: fields this
/// version does not know land in `extra` and are re-emitted verbatim,
/// after the known fields, in their original order.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    pub version: u32,
    /// [`METRICS_SCHEMA_VERSION`] of the producer.
    pub schema_version: u32,
    /// Producing command: `"stats"`, `"explore"`, or `"debugger"`.
    pub source: String,
    pub workload: String,
    pub procs: u64,
    pub seed: u64,
    pub jobs: u64,
    /// Event-derived, deterministic counters.
    pub event: EventMetrics,
    /// FNV-1a 64 hex digest of the serialized `event` section.
    pub event_digest: String,
    /// Wall-clock facts; nondeterministic, excluded from the digest.
    pub timing: TimingMetrics,
    /// Fields from a newer schema, preserved across a round trip.
    pub extra: Vec<(String, Value)>,
}

/// Keys [`MetricsReport`] owns; anything else goes to `extra`.
const REPORT_KEYS: [&str; 10] = [
    "version",
    "schema_version",
    "source",
    "workload",
    "procs",
    "seed",
    "jobs",
    "event",
    "event_digest",
    "timing",
];

impl Serialize for MetricsReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("version".to_string(), self.version.to_value()),
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("source".to_string(), self.source.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("procs".to_string(), self.procs.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("jobs".to_string(), self.jobs.to_value()),
            ("event".to_string(), self.event.to_value()),
            ("event_digest".to_string(), self.event_digest.to_value()),
            ("timing".to_string(), self.timing.to_value()),
        ];
        fields.extend(self.extra.iter().cloned());
        Value::Object(fields)
    }
}

impl Deserialize for MetricsReport {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("MetricsReport: expected object"))?;
        let field = |key: &str| -> Result<&Value, serde::Error> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::msg(format!("MetricsReport: missing field {key}")))
        };
        Ok(MetricsReport {
            version: u32::from_value(field("version")?)?,
            // Reports predating the field are schema revision 1.
            schema_version: match obj.iter().find(|(k, _)| k == "schema_version") {
                Some((_, v)) => u32::from_value(v)?,
                None => 1,
            },
            source: String::from_value(field("source")?)?,
            workload: String::from_value(field("workload")?)?,
            procs: u64::from_value(field("procs")?)?,
            seed: u64::from_value(field("seed")?)?,
            jobs: u64::from_value(field("jobs")?)?,
            event: EventMetrics::from_value(field("event")?)?,
            event_digest: String::from_value(field("event_digest")?)?,
            timing: TimingMetrics::from_value(field("timing")?)?,
            extra: obj
                .iter()
                .filter(|(k, _)| !REPORT_KEYS.contains(&k.as_str()))
                .cloned()
                .collect(),
        })
    }
}

impl MetricsReport {
    /// Assemble a report, computing `event_digest` from `event`.
    pub fn new(
        source: &str,
        workload: &str,
        procs: u64,
        seed: u64,
        jobs: u64,
        event: EventMetrics,
        timing: TimingMetrics,
    ) -> Self {
        let digest = event_digest(&event);
        MetricsReport {
            version: METRICS_VERSION,
            schema_version: METRICS_SCHEMA_VERSION,
            source: source.to_string(),
            workload: workload.to_string(),
            procs,
            seed,
            jobs,
            event,
            event_digest: digest,
            timing,
            extra: Vec::new(),
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("MetricsReport serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad MetricsReport: {e:?}"))
    }
}

/// Deterministic, event-derived counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventMetrics {
    /// Engine runs aggregated into `engine` (1 for `stats`).
    pub runs: u64,
    /// Summed per-run engine metrics.
    pub engine: EngineMetrics,
    /// Explorer-level event counters; absent outside `explore`.
    pub explore: Option<ExploreEvent>,
}

/// Explorer event counters — all derived from the deterministic
/// absorb-order aggregation, never from worker scheduling.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreEvent {
    /// Budgeted runs executed.
    pub runs_executed: u64,
    /// Auxiliary runs (shrinking, confirmation) beyond the budget.
    pub aux_runs: u64,
    /// Runs discarded as duplicate trace digests.
    pub digest_pruned: u64,
    /// Sibling schedules skipped by prefix-hash pruning.
    pub prefix_pruned: u64,
    /// Sibling groups that shared a prefix checkpoint.
    pub prefix_groups: u64,
    /// Systematic alternatives never enqueued because a sleeping
    /// (independence-proven) decision covered them (DPOR sleep sets).
    pub runs_skipped_by_sleep_sets: u64,
    /// Independent rank pairs proven by the static analysis (0 when the
    /// explorer ran without independence facts).
    pub independence_pairs: u64,
    /// Oracle verdicts per violation class, sorted by class name.
    pub oracle_triggers: Vec<ClassCount>,
}

/// A (violation class, count) pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCount {
    pub class: String,
    pub count: u64,
}

/// Wall-clock / scheduling telemetry. Every field here may differ
/// between runs and job counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimingMetrics {
    pub wall_ms: u64,
    /// Runs per second over the whole exploration (0 outside explore).
    pub walks_per_sec: u64,
    /// Nanoseconds spent taking snapshots.
    pub snapshot_ns: u64,
    /// Per-worker load; worker 0 is the sequential path.
    pub workers: Vec<WorkerStat>,
    pub prefix_cache_hits: u64,
    pub prefix_cache_len: u64,
    /// Debugger checkpoint-cache behaviour; absent outside the debugger.
    pub checkpoint_cache: Option<CacheStats>,
    /// Per-command timing, sorted by command name; debugger only.
    pub commands: Vec<CommandStat>,
}

/// One worker's share of a parallel exploration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStat {
    pub worker: u64,
    pub tasks: u64,
    pub busy_ms: u64,
    /// Busy time as a percentage of the whole run's wall clock.
    pub util_pct: u64,
}

/// Hit/miss behaviour of the debugger's checkpoint cache.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Restores actually performed from a cached checkpoint.
    pub restores: u64,
    /// Summed marker distance between restore targets and the
    /// checkpoints served (lower = less re-execution).
    pub restore_distance: u64,
    /// Nanoseconds spent restoring.
    pub restore_ns: u64,
}

/// Aggregate timing of one debugger command verb.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandStat {
    pub command: String,
    pub count: u64,
    pub total_ns: u64,
}

/// FNV-1a 64-bit hex digest of the serialized `event` section.
pub fn event_digest(event: &EventMetrics) -> String {
    let json = serde_json::to_string(event).expect("EventMetrics serializes");
    format!("{:016x}", fnv1a64(json.as_bytes()))
}

/// FNV-1a over raw bytes — stable, dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> EventMetrics {
        let mut engine = EngineMetrics::new(2);
        engine.turns = 12;
        engine.msgs_sent[0] = 3;
        EventMetrics {
            runs: 1,
            engine,
            explore: None,
        }
    }

    #[test]
    fn digest_tracks_event_content_only() {
        let event = sample_event();
        let a = MetricsReport::new(
            "stats",
            "ring",
            2,
            7,
            1,
            event.clone(),
            TimingMetrics::default(),
        );
        let slow = TimingMetrics {
            wall_ms: 999_999,
            ..Default::default()
        };
        let b = MetricsReport::new("stats", "ring", 2, 7, 4, event, slow);
        assert_eq!(
            a.event_digest, b.event_digest,
            "timing must not affect digest"
        );
        let mut other = sample_event();
        other.engine.turns += 1;
        let c = MetricsReport::new("stats", "ring", 2, 7, 1, other, TimingMetrics::default());
        assert_ne!(a.event_digest, c.event_digest);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = MetricsReport::new(
            "explore",
            "ring",
            4,
            42,
            4,
            EventMetrics {
                runs: 10,
                engine: EngineMetrics::new(4),
                explore: Some(ExploreEvent {
                    runs_executed: 10,
                    aux_runs: 2,
                    digest_pruned: 3,
                    prefix_pruned: 1,
                    prefix_groups: 2,
                    runs_skipped_by_sleep_sets: 5,
                    independence_pairs: 4,
                    oracle_triggers: vec![ClassCount {
                        class: "deadlock".into(),
                        count: 1,
                    }],
                }),
            },
            TimingMetrics {
                wall_ms: 12,
                walks_per_sec: 800,
                workers: vec![WorkerStat {
                    worker: 0,
                    tasks: 10,
                    busy_ms: 11,
                    util_pct: 91,
                }],
                ..Default::default()
            },
        );
        let json = report.to_json();
        for key in [
            "\"version\"",
            "\"event\"",
            "\"event_digest\"",
            "\"timing\"",
            "\"match_latency\"",
            "\"oracle_triggers\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back = MetricsReport::from_json(&json).unwrap();
        assert_eq!(back.event, report.event);
        assert_eq!(back.event_digest, report.event_digest);
    }

    #[test]
    fn unknown_fields_round_trip() {
        // A report written by a hypothetical newer schema: two fields
        // this version has never heard of. Parsing must keep them and
        // re-serialization must emit them unchanged — the forward-compat
        // contract profile/serve consumers rely on.
        let mut report = MetricsReport::new(
            "stats",
            "ring",
            2,
            7,
            1,
            sample_event(),
            TimingMetrics::default(),
        );
        report.extra = vec![
            (
                "gpu_ms".to_string(),
                Value::Object(vec![("kernel".to_string(), Value::UInt(42))]),
            ),
            ("notes".to_string(), Value::Str("from v3".to_string())),
        ];
        let json = report.to_json();
        assert!(json.contains("\"gpu_ms\":{\"kernel\":42}"), "{json}");
        let back = MetricsReport::from_json(&json).unwrap();
        assert_eq!(back.extra, report.extra, "unknown fields preserved");
        assert_eq!(back.to_json(), json, "byte-identical round trip");
        assert_eq!(back.schema_version, METRICS_SCHEMA_VERSION);
    }

    #[test]
    fn schema_version_defaults_to_one_for_old_reports() {
        let report = MetricsReport::new(
            "stats",
            "ring",
            2,
            7,
            1,
            sample_event(),
            TimingMetrics::default(),
        );
        let json = report.to_json();
        assert!(json.contains("\"schema_version\":2"), "{json}");
        // Strip the field the way a v1 producer would never emit it.
        let old = json.replace("\"schema_version\":2,", "");
        let back = MetricsReport::from_json(&old).unwrap();
        assert_eq!(back.schema_version, 1);
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
