//! Median / median-absolute-deviation helpers over integer counters.
//!
//! The localize plane scores per-rank anomalies by comparing a failing
//! run's counters against the *median* of the passing reference set,
//! scaled by the set's MAD — the robust dispersion measure that one
//! outlying reference run cannot inflate. Everything here is pure integer
//! arithmetic on `u64` counters, so scores are byte-identical across
//! platforms and `--jobs` (the determinism contract every report plane
//! shares).

/// Median of a sample; even-sized samples take the lower middle (a real
/// sample value, which keeps everything in `u64`). Empty samples are 0.
pub fn median(values: &[u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

/// Median absolute deviation from the sample median. Empty samples are 0.
pub fn mad(values: &[u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let m = median(values);
    let devs: Vec<u64> = values.iter().map(|&x| x.abs_diff(m)).collect();
    median(&devs)
}

/// Robust z-score of `x` against a reference sample, in milli-units:
/// `|x - median| * 1000 / max(mad, 1)`, capped at [`SCORE_CAP`] so one
/// wild counter cannot drown every other signal.
pub fn mad_score(x: u64, reference: &[u64]) -> u64 {
    let m = median(reference);
    let spread = mad(reference).max(1);
    let dev = x.abs_diff(m);
    (dev.saturating_mul(1000) / spread).min(SCORE_CAP)
}

/// Upper bound on a single [`mad_score`]: 20 MADs, in milli-units.
pub const SCORE_CAP: u64 = 20_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_takes_lower_middle_and_handles_edges() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 9]), 1);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 3, 2]), 2);
    }

    #[test]
    fn mad_measures_dispersion_robustly() {
        assert_eq!(mad(&[]), 0);
        assert_eq!(mad(&[5, 5, 5]), 0);
        assert_eq!(mad(&[1, 2, 3]), 1);
        // One wild outlier moves the MAD of a tight sample barely at all.
        assert_eq!(mad(&[10, 10, 10, 10, 1000]), 0);
    }

    #[test]
    fn mad_score_scales_deviation_by_spread() {
        // Tight reference: any deviation is many MADs (capped).
        assert_eq!(mad_score(10, &[10, 10, 10]), 0);
        assert_eq!(mad_score(30, &[10, 10, 10]), SCORE_CAP);
        // Spread reference: the same deviation scores lower.
        let reference = [8, 10, 12, 14];
        assert_eq!(median(&reference), 10);
        assert_eq!(mad(&reference), 2);
        assert_eq!(mad_score(30, &reference), 10_000);
        assert_eq!(mad_score(10, &reference), 0);
    }

    #[test]
    fn mad_score_is_symmetric_in_deviation() {
        let reference = [100, 100, 104];
        assert_eq!(mad_score(90, &reference), mad_score(110, &reference));
    }
}
