//! Event-derived engine metrics.
//!
//! Everything in [`EngineMetrics`] is a pure function of the engine's
//! decision/event sequence — never of wall-clock time, worker identity,
//! or job count. That is the determinism contract the `--jobs` byte-
//! identity check in `verify.sh` pins down: summing the per-run metrics
//! of the same task set in task order yields the same aggregate no
//! matter how the runs were scheduled.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};

/// Per-rank / per-channel counters gathered by an `mpsim` engine run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Scheduler turns granted, total.
    pub turns: u64,
    /// Messages matched (send paired with receive), total.
    pub matches: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Messages sent, per source rank.
    pub msgs_sent: Vec<u64>,
    /// Payload bytes sent, per source rank.
    pub bytes_sent: Vec<u64>,
    /// Receives posted, per rank.
    pub recvs: Vec<u64>,
    /// Turns the rank spent blocked in recv before its match arrived
    /// (sum over all matched receives; a never-matched block — deadlock —
    /// is not counted).
    pub blocked_turns: Vec<u64>,
    /// Mailbox queue-depth high-water mark, per destination rank.
    pub queue_hwm: Vec<u64>,
    /// Messages per (src, dst) channel: `channel_msgs[src][dst]`.
    pub channel_msgs: Vec<Vec<u64>>,
    /// Payload bytes per (src, dst) channel.
    pub channel_bytes: Vec<Vec<u64>>,
    /// Distribution of match latency in turns (0 = message was already
    /// waiting when the receive was posted).
    pub match_latency: Histogram,
    /// Distribution of replay-delta lengths (decisions re-executed per
    /// delta replay).
    pub replay_delta: Histogram,
    /// Spans evicted from the bounded flight recorder by ring overflow —
    /// exact, so consumers know how much of the span history is gone.
    pub flight_dropped: u64,
}

impl EngineMetrics {
    pub fn new(nprocs: usize) -> Self {
        EngineMetrics {
            turns: 0,
            matches: 0,
            snapshots: 0,
            msgs_sent: vec![0; nprocs],
            bytes_sent: vec![0; nprocs],
            recvs: vec![0; nprocs],
            blocked_turns: vec![0; nprocs],
            queue_hwm: vec![0; nprocs],
            channel_msgs: vec![vec![0; nprocs]; nprocs],
            channel_bytes: vec![vec![0; nprocs]; nprocs],
            match_latency: Histogram::new(),
            replay_delta: Histogram::new(),
            flight_dropped: 0,
        }
    }

    pub fn nprocs(&self) -> usize {
        self.msgs_sent.len()
    }

    /// Fold another engine's metrics into this one. Counters sum;
    /// high-water marks take the max; histograms merge bucket-wise.
    /// Merging across different process counts widens to the larger.
    pub fn merge(&mut self, other: &EngineMetrics) {
        let n = self.nprocs().max(other.nprocs());
        self.widen(n);
        self.turns += other.turns;
        self.matches += other.matches;
        self.snapshots += other.snapshots;
        for r in 0..other.nprocs() {
            self.msgs_sent[r] += other.msgs_sent[r];
            self.bytes_sent[r] += other.bytes_sent[r];
            self.recvs[r] += other.recvs[r];
            self.blocked_turns[r] += other.blocked_turns[r];
            self.queue_hwm[r] = self.queue_hwm[r].max(other.queue_hwm[r]);
            for d in 0..other.nprocs() {
                self.channel_msgs[r][d] += other.channel_msgs[r][d];
                self.channel_bytes[r][d] += other.channel_bytes[r][d];
            }
        }
        self.match_latency.merge(&other.match_latency);
        self.replay_delta.merge(&other.replay_delta);
        self.flight_dropped += other.flight_dropped;
    }

    fn widen(&mut self, n: usize) {
        if self.nprocs() >= n {
            return;
        }
        self.msgs_sent.resize(n, 0);
        self.bytes_sent.resize(n, 0);
        self.recvs.resize(n, 0);
        self.blocked_turns.resize(n, 0);
        self.queue_hwm.resize(n, 0);
        for row in &mut self.channel_msgs {
            row.resize(n, 0);
        }
        for row in &mut self.channel_bytes {
            row.resize(n, 0);
        }
        self.channel_msgs.resize(n, vec![0; n]);
        self.channel_bytes.resize(n, vec![0; n]);
    }

    /// Total messages across ranks.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent.iter().sum()
    }

    /// Total payload bytes across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_hwm() {
        let mut a = EngineMetrics::new(2);
        a.turns = 10;
        a.msgs_sent[0] = 3;
        a.queue_hwm[1] = 5;
        a.channel_msgs[0][1] = 3;
        let mut b = EngineMetrics::new(2);
        b.turns = 7;
        b.msgs_sent[0] = 2;
        b.queue_hwm[1] = 2;
        b.channel_msgs[0][1] = 2;
        a.merge(&b);
        assert_eq!(a.turns, 17);
        assert_eq!(a.msgs_sent[0], 5);
        assert_eq!(a.queue_hwm[1], 5, "hwm merges by max");
        assert_eq!(a.channel_msgs[0][1], 5);
    }

    #[test]
    fn merge_widens_to_the_larger_rank_count() {
        let mut a = EngineMetrics::new(1);
        a.msgs_sent[0] = 1;
        let mut b = EngineMetrics::new(3);
        b.msgs_sent[2] = 4;
        b.channel_msgs[2][0] = 4;
        a.merge(&b);
        assert_eq!(a.nprocs(), 3);
        assert_eq!(a.msgs_sent, vec![1, 0, 4]);
        assert_eq!(a.channel_msgs[2][0], 4);
    }
}
