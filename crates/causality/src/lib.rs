//! Causality analysis over execution traces: vector clocks, happens-before,
//! consistent frontiers, races, and post-hoc deadlock detection.

pub mod cut;
pub mod deadlock;
pub mod frontier;
pub mod hb;
pub mod race;
pub mod vclock;

pub use cut::{cut_of_time, verify_cut, CutViolation};
pub use deadlock::{detect_circular_waits, CircularWait};
pub use frontier::{ConcurrencyRegion, Frontier};
pub use hb::HbIndex;
pub use race::{detect_races, MessageRace};
pub use vclock::VectorClock;
