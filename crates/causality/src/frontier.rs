//! Past/future frontiers and concurrency regions (§4.1, Figure 8).
//!
//! "In order to depict the past and future of an event we use the notion
//! of *consistent frontier*. It is defined as a set of events in which no
//! event happens before another. Lack of circular message dependencies in
//! the trace file guarantees that the set of most recent events in the
//! past is a consistent frontier (past frontier). The same is true for the
//! set of earliest events of the future (future frontier)."
//!
//! Figure 8 draws both frontiers around a user-selected event; the region
//! between them is the set of events concurrent with the selection.

use crate::hb::{HbIndex, NO_SUCC};
use tracedbg_trace::{EventId, Marker, MarkerVector, Rank, TraceStore};

/// A frontier: at most one event per rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frontier {
    /// Per rank: the frontier event's marker (None = no event of that rank
    /// on this frontier).
    entries: Vec<Option<Marker>>,
}

impl Frontier {
    /// The most recent event of each rank that happens before (or is) `e`
    /// — the **past frontier**.
    pub fn past_of(store: &TraceStore, hb: &HbIndex, e: EventId) -> Frontier {
        let _ = store;
        let past = hb.past_markers(e);
        Frontier {
            entries: past
                .iter()
                .enumerate()
                .map(|(r, &m)| {
                    if m == 0 {
                        None
                    } else {
                        Some(Marker::new(r as u32, m))
                    }
                })
                .collect(),
        }
    }

    /// The earliest event of each rank that `e` happens before (or is) —
    /// the **future frontier**.
    pub fn future_of(store: &TraceStore, hb: &HbIndex, e: EventId) -> Frontier {
        let fut = hb.future_markers(e);
        let _ = store;
        Frontier {
            entries: fut
                .iter()
                .enumerate()
                .map(|(r, &m)| {
                    if m == NO_SUCC {
                        None
                    } else {
                        Some(Marker::new(r as u32, m))
                    }
                })
                .collect(),
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.entries.len()
    }

    pub fn marker_of(&self, rank: Rank) -> Option<Marker> {
        self.entries[rank.ix()]
    }

    /// Markers as a vector, with 0 for ranks without a frontier event —
    /// directly usable as a stopline ("the user could be given a choice of
    /// stopping execution in each process either immediately after the
    /// point where it could last affect the selected state or immediately
    /// before the point where it could first be affected").
    pub fn as_marker_vector(&self) -> MarkerVector {
        MarkerVector::from_counts(
            self.entries
                .iter()
                .map(|e| e.map(|m| m.count).unwrap_or(0))
                .collect(),
        )
    }

    /// The cut "everything up to and including the frontier" (used for a
    /// past-frontier stopline: stop each process immediately *after* the
    /// point where it could last affect the selected state).
    pub fn inclusive_cut(&self) -> MarkerVector {
        self.as_marker_vector()
    }

    /// The cut "everything strictly before the frontier" (used for a
    /// future-frontier stopline: stop each process immediately *before*
    /// the point where it could first be affected by the selected state).
    /// Ranks with no frontier event stop at `default` — pass the trace's
    /// final markers to let them run to completion.
    pub fn exclusive_cut(&self, default: &MarkerVector) -> MarkerVector {
        MarkerVector::from_counts(
            self.entries
                .iter()
                .enumerate()
                .map(|(r, e)| match e {
                    Some(m) => m.count.saturating_sub(1),
                    None => default.get(Rank(r as u32)),
                })
                .collect(),
        )
    }

    pub fn iter(&self) -> impl Iterator<Item = Marker> + '_ {
        self.entries.iter().flatten().copied()
    }
}

/// The three-way classification of a trace relative to a selected event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Region {
    Past,
    Concurrent,
    Future,
}

/// Concurrency region of an event: every other event classified.
pub struct ConcurrencyRegion {
    pub event: EventId,
    past: Vec<u64>,
    future: Vec<u64>,
}

impl ConcurrencyRegion {
    pub fn of(hb: &HbIndex, e: EventId) -> Self {
        ConcurrencyRegion {
            event: e,
            past: hb.past_markers(e),
            future: hb.future_markers(e),
        }
    }

    /// Classify an event by rank and marker.
    pub fn classify(&self, rank: Rank, marker: u64) -> Region {
        if marker <= self.past[rank.ix()] {
            Region::Past
        } else if marker >= self.future[rank.ix()] {
            Region::Future
        } else {
            Region::Concurrent
        }
    }

    /// Classify a store event.
    pub fn classify_event(&self, store: &TraceStore, e: EventId) -> Region {
        let rec = store.record(e);
        self.classify(rec.rank, rec.marker)
    }

    /// All events concurrent with the selection ("the user can skip events
    /// that do not affect (or are not affected by) the current event").
    pub fn concurrent_events(&self, store: &TraceStore) -> Vec<EventId> {
        store
            .ids()
            .filter(|&id| id != self.event && self.classify_event(store, id) == Region::Concurrent)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, SiteTable, Tag, TraceRecord};
    use tracedbg_tracegraph::MessageMatching;

    /// P0: c(1) send(2) c(3);  P1: c(1) recv(2) c(3);  P2: c(1)
    fn store() -> TraceStore {
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 10),
            TraceRecord::basic(0u32, EventKind::Send, 2, 10)
                .with_span(10, 12)
                .with_msg(m),
            TraceRecord::basic(0u32, EventKind::Compute, 3, 12).with_span(12, 30),
            TraceRecord::basic(1u32, EventKind::Compute, 1, 0).with_span(0, 5),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 5)
                .with_span(5, 20)
                .with_msg(m),
            TraceRecord::basic(1u32, EventKind::Compute, 3, 20).with_span(20, 40),
            TraceRecord::basic(2u32, EventKind::Compute, 1, 0).with_span(0, 100),
        ];
        TraceStore::build(recs, SiteTable::new(), 3)
    }

    fn setup() -> (TraceStore, HbIndex) {
        let s = store();
        let mm = MessageMatching::build(&s);
        let hb = HbIndex::build(&s, &mm);
        (s, hb)
    }

    fn ev(store: &TraceStore, rank: u32, marker: u64) -> EventId {
        store
            .find_marker(tracedbg_trace::Marker::new(rank, marker))
            .unwrap()
    }

    #[test]
    fn past_frontier_of_recv() {
        let (s, hb) = setup();
        let recv = ev(&s, 1, 2);
        let f = Frontier::past_of(&s, &hb, recv);
        assert_eq!(f.marker_of(Rank(0)), Some(Marker::new(0u32, 2)));
        assert_eq!(f.marker_of(Rank(1)), Some(Marker::new(1u32, 2)));
        assert_eq!(f.marker_of(Rank(2)), None);
        // The induced stopline cut is consistent.
        let mm = MessageMatching::build(&s);
        assert!(crate::cut::verify_cut(&s, &mm, &f.inclusive_cut()).is_empty());
    }

    #[test]
    fn future_frontier_of_send() {
        let (s, hb) = setup();
        let send = ev(&s, 0, 2);
        let f = Frontier::future_of(&s, &hb, send);
        assert_eq!(f.marker_of(Rank(0)), Some(Marker::new(0u32, 2)));
        assert_eq!(f.marker_of(Rank(1)), Some(Marker::new(1u32, 2)));
        assert_eq!(f.marker_of(Rank(2)), None);
        // Stopping strictly before the future frontier is consistent.
        let mm = MessageMatching::build(&s);
        let cut = f.exclusive_cut(&s.final_markers());
        assert_eq!(cut.counts(), &[1, 1, 1]);
        assert!(crate::cut::verify_cut(&s, &mm, &cut).is_empty());
    }

    #[test]
    fn frontier_as_stopline_vector() {
        let (s, hb) = setup();
        let recv = ev(&s, 1, 2);
        let v = Frontier::past_of(&s, &hb, recv).as_marker_vector();
        assert_eq!(v.counts(), &[2, 2, 0]);
    }

    #[test]
    fn concurrency_region_classification() {
        let (s, hb) = setup();
        // Select P1's recv (marker 2).
        let region = ConcurrencyRegion::of(&hb, ev(&s, 1, 2));
        use Region::*;
        assert_eq!(region.classify(Rank(0), 1), Past);
        assert_eq!(region.classify(Rank(0), 2), Past);
        assert_eq!(region.classify(Rank(0), 3), Concurrent);
        assert_eq!(region.classify(Rank(1), 1), Past);
        assert_eq!(region.classify(Rank(1), 3), Future);
        assert_eq!(region.classify(Rank(2), 1), Concurrent);
    }

    #[test]
    fn concurrent_events_listed() {
        let (s, hb) = setup();
        let region = ConcurrencyRegion::of(&hb, ev(&s, 1, 2));
        let conc = region.concurrent_events(&s);
        // P0 m3 and P2 m1
        assert_eq!(conc.len(), 2);
        let set: Vec<(u32, u64)> = conc
            .iter()
            .map(|&id| (s.record(id).rank.0, s.record(id).marker))
            .collect();
        assert!(set.contains(&(0, 3)));
        assert!(set.contains(&(2, 1)));
    }
}
