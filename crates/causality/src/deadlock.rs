//! Post-hoc deadlock detection from a trace (§4.4).
//!
//! "When provided with the history trace, the debugger is also able to
//! detect deadlocks due to circular dependency in sends or receives."
//!
//! Unlike the runtime detector in `mpsim` (which sees live scheduler
//! state), this analysis works on a trace file alone: processes whose last
//! communication construct is an uncompleted `RecvPost` are blocked; a
//! cycle among their awaited sources is a circular wait.

use tracedbg_trace::{EventId, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// A circular wait found in the trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircularWait {
    /// Ranks on the cycle, sorted.
    pub ranks: Vec<Rank>,
    /// The blocked receive posts of those ranks.
    pub posts: Vec<EventId>,
}

/// Detect circular waits among the trace's blocked receives.
pub fn detect_circular_waits(store: &TraceStore, matching: &MessageMatching) -> Vec<CircularWait> {
    let _ = store;
    use std::collections::HashMap;
    // waiter -> (awaited, post)
    let mut edge: HashMap<Rank, (Rank, EventId)> = HashMap::new();
    for ur in &matching.unmatched_recvs {
        if let Some(src) = ur.src {
            edge.insert(ur.rank, (src, ur.post));
        }
    }
    let mut cycles: Vec<CircularWait> = Vec::new();
    let mut on_known_cycle: std::collections::HashSet<Rank> = Default::default();
    for &start in edge.keys() {
        if on_known_cycle.contains(&start) {
            continue;
        }
        let mut path: Vec<Rank> = vec![start];
        let mut cur = start;
        #[allow(clippy::while_let_loop)] // the None arm documents "walked out of the blocked set"
        loop {
            match edge.get(&cur) {
                Some(&(next, _)) => {
                    if let Some(pos) = path.iter().position(|&r| r == next) {
                        let mut ranks: Vec<Rank> = path[pos..].to_vec();
                        ranks.sort();
                        if !on_known_cycle.contains(&ranks[0]) {
                            let posts = ranks.iter().map(|r| edge[r].1).collect();
                            for r in &ranks {
                                on_known_cycle.insert(*r);
                            }
                            cycles.push(CircularWait { ranks, posts });
                        }
                        break;
                    }
                    path.push(next);
                    cur = next;
                }
                None => break,
            }
        }
    }
    cycles.sort_by_key(|c| c.ranks.clone());
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, SiteTable, TraceRecord};

    fn post(rank: u32, marker: u64, t: u64, src: i64) -> TraceRecord {
        TraceRecord::basic(rank, EventKind::RecvPost, marker, t).with_args(src, -1)
    }

    #[test]
    fn figure5_cycle_found() {
        // P0 blocked on P7, P7 blocked on P0 (8-rank run).
        let recs = vec![post(0, 5, 100, 7), post(7, 3, 90, 0)];
        let store = TraceStore::build(recs, SiteTable::new(), 8);
        let mm = MessageMatching::build(&store);
        let cycles = detect_circular_waits(&store, &mm);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].ranks, vec![Rank(0), Rank(7)]);
        assert_eq!(cycles[0].posts.len(), 2);
    }

    #[test]
    fn chain_is_not_a_cycle() {
        let recs = vec![post(0, 1, 0, 1), post(1, 1, 0, 2)];
        let store = TraceStore::build(recs, SiteTable::new(), 3);
        let mm = MessageMatching::build(&store);
        assert!(detect_circular_waits(&store, &mm).is_empty());
    }

    #[test]
    fn two_disjoint_cycles() {
        let recs = vec![
            post(0, 1, 0, 1),
            post(1, 1, 0, 0),
            post(2, 1, 0, 3),
            post(3, 1, 0, 2),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 4);
        let mm = MessageMatching::build(&store);
        let cycles = detect_circular_waits(&store, &mm);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0].ranks, vec![Rank(0), Rank(1)]);
        assert_eq!(cycles[1].ranks, vec![Rank(2), Rank(3)]);
    }

    #[test]
    fn wildcard_wait_is_not_circular() {
        let recs = vec![post(0, 1, 0, -1), post(1, 1, 0, 0)];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        assert!(detect_circular_waits(&store, &mm).is_empty());
    }
}
