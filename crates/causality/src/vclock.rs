//! Vector clocks over process events.

use std::cmp::Ordering;
use std::fmt;

/// A vector clock: component `r` counts events of rank `r` in the causal
/// past (inclusive of the event itself for its own rank).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    v: Vec<u64>,
}

impl VectorClock {
    pub fn zero(n: usize) -> Self {
        VectorClock { v: vec![0; n] }
    }

    pub fn from_components(v: Vec<u64>) -> Self {
        VectorClock { v }
    }

    pub fn len(&self) -> usize {
        self.v.len()
    }

    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    pub fn get(&self, r: usize) -> u64 {
        self.v[r]
    }

    pub fn set(&mut self, r: usize, val: u64) {
        self.v[r] = val;
    }

    /// Tick one component (a local event on rank `r`).
    pub fn inc(&mut self, r: usize) {
        self.v[r] += 1;
    }

    /// Componentwise maximum (message receipt).
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.v.len(), other.v.len());
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a = (*a).max(*b);
        }
    }

    /// Componentwise `<=`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.v.len() == other.v.len() && self.v.iter().zip(&other.v).all(|(a, b)| a <= b)
    }

    /// Strictly less: `<=` and different.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// Neither ordered way: concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Partial-order comparison.
    pub fn partial_cmp_vc(&self, other: &VectorClock) -> Option<Ordering> {
        if self == other {
            Some(Ordering::Equal)
        } else if self.le(other) {
            Some(Ordering::Less)
        } else if other.le(self) {
            Some(Ordering::Greater)
        } else {
            None
        }
    }

    pub fn components(&self) -> &[u64] {
        &self.v
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{:?}", self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_and_merge() {
        let mut a = VectorClock::zero(3);
        a.inc(0);
        a.inc(0);
        let mut b = VectorClock::zero(3);
        b.inc(1);
        b.merge(&a);
        assert_eq!(b.components(), &[2, 1, 0]);
    }

    #[test]
    fn ordering() {
        let a = VectorClock::from_components(vec![1, 0]);
        let b = VectorClock::from_components(vec![1, 2]);
        let c = VectorClock::from_components(vec![0, 1]);
        assert!(a.lt(&b));
        assert!(!b.lt(&a));
        assert!(a.concurrent(&c));
        assert_eq!(a.partial_cmp_vc(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_vc(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_vc(&c), None);
        assert_eq!(a.partial_cmp_vc(&a), Some(Ordering::Equal));
    }

    #[test]
    fn le_rejects_length_mismatch() {
        let a = VectorClock::zero(2);
        let b = VectorClock::zero(3);
        assert!(!a.le(&b));
    }
}
