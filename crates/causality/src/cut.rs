//! Consistent cuts and the vertical-slice stopline theorem (§4.1).
//!
//! A marker vector is a *cut*: for each process, a prefix of its events. A
//! cut is consistent when every received message inside the cut was also
//! sent inside the cut ("consistent set of breakpoints"). The paper's key
//! observation: any vertical line through the time-space diagram is
//! consistent, because the trace timestamps honour send-before-receive —
//! [`cut_of_time`] + [`verify_cut`] make that checkable.

use tracedbg_trace::{EventId, MarkerVector, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// A message received inside the cut but sent outside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutViolation {
    pub send: EventId,
    pub recv: EventId,
}

/// The cut induced by a vertical line at simulated time `t`: in each
/// process, everything that started at or before `t`.
pub fn cut_of_time(store: &TraceStore, t: u64) -> MarkerVector {
    store.markers_at_time(t)
}

/// Verify cut consistency: no message is received at or before the cut but
/// sent after it. Returns all violations (empty = consistent).
pub fn verify_cut(
    store: &TraceStore,
    matching: &MessageMatching,
    cut: &MarkerVector,
) -> Vec<CutViolation> {
    let mut violations = Vec::new();
    for m in &matching.matched {
        let send = store.record(m.send);
        let recv = store.record(m.recv);
        let recv_inside = recv.marker <= cut.get(recv.rank);
        let send_inside = send.marker <= cut.get(send.rank);
        if recv_inside && !send_inside {
            violations.push(CutViolation {
                send: m.send,
                recv: m.recv,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord};

    fn msg() -> MsgInfo {
        MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        }
    }

    fn store() -> TraceStore {
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 10)
                .with_span(10, 12)
                .with_msg(msg()),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 5)
                .with_span(5, 20)
                .with_msg(msg()),
            TraceRecord::basic(0u32, EventKind::Compute, 2, 12).with_span(12, 40),
            TraceRecord::basic(1u32, EventKind::Compute, 2, 20).with_span(20, 40),
        ];
        TraceStore::build(recs, SiteTable::new(), 2)
    }

    #[test]
    fn vertical_slices_are_consistent() {
        let s = store();
        let mm = MessageMatching::build(&s);
        let (lo, hi) = s.time_bounds();
        for t in lo..=hi {
            let cut = cut_of_time(&s, t);
            assert!(
                verify_cut(&s, &mm, &cut).is_empty(),
                "vertical slice at t={t} must be consistent (cut {cut:?})"
            );
        }
    }

    #[test]
    fn hand_built_inconsistent_cut_detected() {
        let s = store();
        let mm = MessageMatching::build(&s);
        // Cut includes P1's recv (marker 1) but not P0's send (marker 1).
        let cut = MarkerVector::from_counts(vec![0, 1]);
        let v = verify_cut(&s, &mm, &cut);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn full_and_empty_cuts_are_consistent() {
        let s = store();
        let mm = MessageMatching::build(&s);
        assert!(verify_cut(&s, &mm, &MarkerVector::zero(2)).is_empty());
        assert!(verify_cut(&s, &mm, &s.final_markers()).is_empty());
    }
}
