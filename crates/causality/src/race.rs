//! Message race detection (§4.4, after Netzer et al.).
//!
//! "If however the program is multithreaded, then message racing can
//! occur. In this case the user might want to turn on the race detection
//! feature of the debugger."
//!
//! A wildcard (`MPI_ANY_SOURCE`) receive races when some *other* send
//! could have been delivered to it instead of the one that was: the
//! alternative send targets the same destination with an admissible tag
//! and is not causally ordered after the receive's completion (if it were,
//! it could never have arrived in time in any execution).

use crate::hb::HbIndex;
use tracedbg_trace::{EventId, EventKind, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// One racing wildcard receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRace {
    /// The completed wildcard receive.
    pub recv: EventId,
    /// The send it actually matched.
    pub actual_send: EventId,
    /// Other sends that could have matched it instead.
    pub alternatives: Vec<EventId>,
}

/// Find all message races in a trace.
///
/// For each `RecvDone` whose `RecvPost` used a wildcard source, collect
/// alternative sends: different source, same destination, admissible tag,
/// not happening-after the receive, and not consumed by an *earlier*
/// receive on the same destination.
pub fn detect_races(
    store: &TraceStore,
    matching: &MessageMatching,
    hb: &HbIndex,
) -> Vec<MessageRace> {
    let mut races = Vec::new();
    // All sends, by destination.
    let sends: Vec<EventId> = store.of_kind(EventKind::Send);
    for r in 0..store.n_ranks() {
        let rank = Rank(r as u32);
        let lane = store.by_rank(rank);
        // Walk posts and dones in program order, remembering the wildcard
        // flag and tag of each pending post. Posts complete in post order
        // (non-overtaking), so a FIFO pairs each done with its own post
        // even when several receives are outstanding at once.
        let mut pending: std::collections::VecDeque<(bool, i64)> =
            std::collections::VecDeque::new();
        for &id in lane {
            let rec = store.record(id);
            match rec.kind {
                EventKind::RecvPost => {
                    pending.push_back((rec.args[0] < 0, rec.args[1]));
                }
                EventKind::RecvDone => {
                    let Some((wildcard_src, want_tag)) = pending.pop_front() else {
                        continue;
                    };
                    if !wildcard_src {
                        continue;
                    }
                    let Some(m) = matching.match_of_recv(id) else {
                        continue;
                    };
                    let actual_src = m.info.src;
                    let mut alternatives = Vec::new();
                    for &s in &sends {
                        let srec = store.record(s);
                        let info = srec.msg.unwrap();
                        if info.dst != rank || info.src == actual_src {
                            continue;
                        }
                        if want_tag >= 0 && info.tag.0 as i64 != want_tag {
                            continue;
                        }
                        // A send causally after the receive's completion
                        // could never have raced with it.
                        if hb.happens_before(store, id, s) {
                            continue;
                        }
                        // A send whose own receive happens before this
                        // receive was already consumed earlier; it was not
                        // available.
                        if let Some(other) = matching.match_of_send(s) {
                            if hb.happens_before(store, other.recv, id) || other.recv == id {
                                continue;
                            }
                        }
                        alternatives.push(s);
                    }
                    if !alternatives.is_empty() {
                        races.push(MessageRace {
                            recv: id,
                            actual_send: m.send,
                            alternatives,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{MsgInfo, SiteTable, Tag, TraceRecord};

    fn msg(src: u32, dst: u32, tag: i32, seq: u64) -> MsgInfo {
        MsgInfo {
            src: Rank(src),
            dst: Rank(dst),
            tag: Tag(tag),
            bytes: 8,
            seq,
        }
    }

    /// Two senders race to a single wildcard receive on P0.
    fn racy_store() -> TraceStore {
        let m1 = msg(1, 0, 5, 0);
        let m2 = msg(2, 0, 5, 0);
        let recs = vec![
            TraceRecord::basic(1u32, EventKind::Send, 1, 0)
                .with_span(0, 2)
                .with_msg(m1),
            TraceRecord::basic(2u32, EventKind::Send, 1, 1)
                .with_span(1, 3)
                .with_msg(m2),
            TraceRecord::basic(0u32, EventKind::RecvPost, 1, 4).with_args(-1, 5),
            TraceRecord::basic(0u32, EventKind::RecvDone, 2, 4)
                .with_span(4, 10)
                .with_msg(m1),
            // The losing message is received later by a second wildcard.
            TraceRecord::basic(0u32, EventKind::RecvPost, 3, 10).with_args(-1, 5),
            TraceRecord::basic(0u32, EventKind::RecvDone, 4, 10)
                .with_span(10, 12)
                .with_msg(m2),
        ];
        TraceStore::build(recs, SiteTable::new(), 3)
    }

    fn analyze(store: &TraceStore) -> Vec<MessageRace> {
        let mm = MessageMatching::build(store);
        let hb = HbIndex::build(store, &mm);
        detect_races(store, &mm, &hb)
    }

    #[test]
    fn wildcard_race_detected() {
        let s = racy_store();
        let races = analyze(&s);
        // The first receive raced (P2's message was also available). The
        // second receive had no choice: P1's message was already consumed
        // by the first (causally earlier) receive.
        assert_eq!(races.len(), 1);
        assert_eq!(s.record(races[0].recv).marker, 2);
        assert_eq!(races[0].alternatives.len(), 1);
        let alt = s.record(races[0].alternatives[0]);
        assert_eq!(alt.msg.unwrap().src, Rank(2));
    }

    #[test]
    fn specific_source_recv_never_races() {
        let m1 = msg(1, 0, 5, 0);
        let m2 = msg(2, 0, 5, 0);
        let recs = vec![
            TraceRecord::basic(1u32, EventKind::Send, 1, 0)
                .with_span(0, 2)
                .with_msg(m1),
            TraceRecord::basic(2u32, EventKind::Send, 1, 1)
                .with_span(1, 3)
                .with_msg(m2),
            TraceRecord::basic(0u32, EventKind::RecvPost, 1, 4).with_args(1, 5),
            TraceRecord::basic(0u32, EventKind::RecvDone, 2, 4)
                .with_span(4, 10)
                .with_msg(m1),
        ];
        let s = TraceStore::build(recs, SiteTable::new(), 3);
        assert!(analyze(&s).is_empty());
    }

    #[test]
    fn tag_mismatch_is_not_an_alternative() {
        let m1 = msg(1, 0, 5, 0);
        let m2 = msg(2, 0, 6, 0); // different tag
        let recs = vec![
            TraceRecord::basic(1u32, EventKind::Send, 1, 0)
                .with_span(0, 2)
                .with_msg(m1),
            TraceRecord::basic(2u32, EventKind::Send, 1, 1)
                .with_span(1, 3)
                .with_msg(m2),
            TraceRecord::basic(0u32, EventKind::RecvPost, 1, 4).with_args(-1, 5),
            TraceRecord::basic(0u32, EventKind::RecvDone, 2, 4)
                .with_span(4, 10)
                .with_msg(m1),
        ];
        let s = TraceStore::build(recs, SiteTable::new(), 3);
        assert!(analyze(&s).is_empty());
    }

    #[test]
    fn interleaved_posts_keep_their_own_specs() {
        // Two receives are posted back-to-back before either completes:
        // first a wildcard, then a source-specific one. The specific post
        // must not clobber the wildcard's spec — the first RecvDone still
        // belongs to the wildcard post and must be race-checked.
        let m1 = msg(1, 0, 5, 0);
        let m2 = msg(2, 0, 5, 0);
        let recs = vec![
            TraceRecord::basic(1u32, EventKind::Send, 1, 0)
                .with_span(0, 2)
                .with_msg(m1),
            TraceRecord::basic(2u32, EventKind::Send, 1, 1)
                .with_span(1, 3)
                .with_msg(m2),
            // Post #1: wildcard. Post #2: specifically from rank 2.
            TraceRecord::basic(0u32, EventKind::RecvPost, 1, 4).with_args(-1, 5),
            TraceRecord::basic(0u32, EventKind::RecvPost, 2, 5).with_args(2, 5),
            // Done #1 completes the wildcard post with P1's message.
            TraceRecord::basic(0u32, EventKind::RecvDone, 3, 6)
                .with_span(6, 7)
                .with_msg(m1),
            // Done #2 completes the specific post.
            TraceRecord::basic(0u32, EventKind::RecvDone, 4, 8)
                .with_span(8, 9)
                .with_msg(m2),
        ];
        let s = TraceStore::build(recs, SiteTable::new(), 3);
        let races = analyze(&s);
        // Exactly one race: the wildcard receive could have taken P2's
        // message instead. Before the FIFO fix the second post overwrote
        // the pending spec, the first done was treated as source-specific,
        // and no race was reported.
        assert_eq!(races.len(), 1);
        assert_eq!(s.record(races[0].recv).marker, 3);
        assert_eq!(races[0].alternatives.len(), 1);
        assert_eq!(s.record(races[0].alternatives[0]).msg.unwrap().src, Rank(2));
    }

    #[test]
    fn causally_later_send_is_not_a_race() {
        // P0 wildcard-receives from P1, then sends to P2, which triggers
        // P2's send back to P0: that send could never have raced.
        let m1 = msg(1, 0, 5, 0);
        let trigger = msg(0, 2, 9, 0);
        let m2 = msg(2, 0, 5, 0);
        let recs = vec![
            TraceRecord::basic(1u32, EventKind::Send, 1, 0)
                .with_span(0, 2)
                .with_msg(m1),
            TraceRecord::basic(0u32, EventKind::RecvPost, 1, 3).with_args(-1, 5),
            TraceRecord::basic(0u32, EventKind::RecvDone, 2, 3)
                .with_span(3, 5)
                .with_msg(m1),
            TraceRecord::basic(0u32, EventKind::Send, 3, 5)
                .with_span(5, 6)
                .with_msg(trigger),
            TraceRecord::basic(2u32, EventKind::RecvDone, 1, 7)
                .with_span(7, 8)
                .with_msg(trigger),
            TraceRecord::basic(2u32, EventKind::Send, 2, 8)
                .with_span(8, 9)
                .with_msg(m2),
        ];
        let s = TraceStore::build(recs, SiteTable::new(), 3);
        assert!(analyze(&s).is_empty());
    }
}
