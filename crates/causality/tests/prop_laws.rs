//! Property tests: vector clock laws and cut algebra.

use proptest::prelude::*;
use tracedbg_causality::VectorClock;
use tracedbg_trace::MarkerVector;

fn arb_vc(n: usize) -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..50, n).prop_map(VectorClock::from_components)
}

fn arb_mv(n: usize) -> impl Strategy<Value = MarkerVector> {
    proptest::collection::vec(0u64..50, n).prop_map(MarkerVector::from_counts)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn vc_le_is_a_partial_order(a in arb_vc(4), b in arb_vc(4), c in arb_vc(4)) {
        prop_assert!(a.le(&a), "reflexive");
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(&a, &b, "antisymmetric");
        }
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c), "transitive");
        }
    }

    #[test]
    fn vc_merge_is_lub(a in arb_vc(4), b in arb_vc(4)) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(a.le(&m) && b.le(&m), "upper bound");
        // Least: any other upper bound dominates m.
        let mut wit = a.clone();
        wit.merge(&b);
        prop_assert!(m.le(&wit));
        // Commutative.
        let mut m2 = b.clone();
        m2.merge(&a);
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn vc_concurrency_is_symmetric_and_irreflexive(a in arb_vc(4), b in arb_vc(4)) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
        prop_assert!(!a.concurrent(&a));
        // Trichotomy-ish: exactly one of <=, >=, concurrent (with overlap
        // on equality for <= and >=).
        let le = a.le(&b);
        let ge = b.le(&a);
        let conc = a.concurrent(&b);
        prop_assert!(le || ge || conc);
        prop_assert!(!(conc && (le || ge)));
    }

    #[test]
    fn vc_inc_strictly_increases(a in arb_vc(4), r in 0usize..4) {
        let mut b = a.clone();
        b.inc(r);
        prop_assert!(a.lt(&b));
        prop_assert!(!b.le(&a));
    }

    #[test]
    fn marker_vector_meet_is_glb(a in arb_mv(5), b in arb_mv(5)) {
        let m = a.meet(&b);
        prop_assert!(m.le(&a) && m.le(&b), "lower bound");
        // Greatest: the meet dominates any common lower bound; test with
        // the zero vector and with the meet itself.
        prop_assert!(MarkerVector::zero(5).le(&m) || m.counts().contains(&0));
        prop_assert_eq!(a.meet(&b), b.meet(&a), "commutative");
        let idem = a.meet(&a);
        prop_assert_eq!(idem, a.clone(), "idempotent");
    }

    #[test]
    fn marker_vector_le_consistent_with_meet(a in arb_mv(5), b in arb_mv(5)) {
        if a.le(&b) {
            prop_assert_eq!(a.meet(&b), a.clone());
        }
        if a.meet(&b) == a {
            prop_assert!(a.le(&b));
        }
    }
}
