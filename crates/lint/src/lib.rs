//! Rule-based correctness checking over traces and workload scripts.

pub mod config;
pub mod diag;
pub mod engine;
pub mod report;
pub mod script_rules;
pub mod trace_rules;

pub use config::LintConfig;
pub use diag::{Diagnostic, RuleId, Severity};
pub use engine::{lint_script, lint_source, lint_trace, lint_trace_with_script, rule_catalog};
