//! Rule selection.

use crate::diag::RuleId;
use std::collections::BTreeSet;

/// Which rules run. Default: all of them.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    disabled: BTreeSet<String>,
    /// When set, only these rules run (takes precedence over `disabled`).
    only: Option<BTreeSet<String>>,
}

impl LintConfig {
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Disable one rule by ID.
    pub fn disable(mut self, id: impl Into<String>) -> Self {
        self.disabled.insert(id.into());
        self
    }

    /// Restrict the run to exactly these rules.
    pub fn only(mut self, ids: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.only = Some(ids.into_iter().map(Into::into).collect());
        self
    }

    /// Parse a CLI spec: a comma-separated list of rule IDs, each
    /// optionally prefixed with `-` to disable it instead. A spec with
    /// any non-negated ID becomes an allow-list.
    pub fn from_spec(spec: &str) -> Self {
        let mut cfg = LintConfig::new();
        let mut allow = BTreeSet::new();
        for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(id) = part.strip_prefix('-') {
                cfg.disabled.insert(id.to_string());
            } else {
                allow.insert(part.to_string());
            }
        }
        if !allow.is_empty() {
            cfg.only = Some(allow);
        }
        cfg
    }

    pub fn is_enabled(&self, id: RuleId) -> bool {
        if let Some(only) = &self.only {
            return only.contains(id.as_str());
        }
        !self.disabled.contains(id.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let cfg = LintConfig::new();
        assert!(cfg.is_enabled(RuleId("TDL001")));
        assert!(cfg.is_enabled(RuleId("SDL999")));
    }

    #[test]
    fn disable_and_only() {
        let cfg = LintConfig::new().disable("TDL004");
        assert!(!cfg.is_enabled(RuleId("TDL004")));
        assert!(cfg.is_enabled(RuleId("TDL001")));

        let cfg = LintConfig::new().only(["TDL001", "TDL002"]);
        assert!(cfg.is_enabled(RuleId("TDL002")));
        assert!(!cfg.is_enabled(RuleId("TDL005")));
    }

    #[test]
    fn spec_parsing() {
        let cfg = LintConfig::from_spec("-TDL005");
        assert!(!cfg.is_enabled(RuleId("TDL005")));
        assert!(cfg.is_enabled(RuleId("TDL001")));

        let cfg = LintConfig::from_spec("TDL001, SDL102");
        assert!(cfg.is_enabled(RuleId("SDL102")));
        assert!(!cfg.is_enabled(RuleId("TDL002")));
    }
}
