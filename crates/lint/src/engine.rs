//! The rule engine: shared analysis context, rule registry, entry points.
//!
//! Two front ends share one diagnostic pipeline. The post-mortem front end
//! builds the expensive trace indices (message matching, happens-before)
//! once and hands every registered [`TraceRule`] the same context — this is
//! the paper's "history analysis" recast as a batch of checkers. The
//! pre-execution front end walks a parsed workload script per rank without
//! running it, so the same class of mistakes is caught before any trace
//! exists.

use crate::config::LintConfig;
use crate::diag::{Diagnostic, Loc, RuleId, Severity};
use crate::{script_rules, trace_rules};
use tracedbg_causality::HbIndex;
use tracedbg_trace::{EventId, TraceStore};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_workloads::script::Script;

/// Everything a trace rule may consult, built once per run.
pub struct TraceCx<'a> {
    pub store: &'a TraceStore,
    pub matching: MessageMatching,
    pub hb: HbIndex,
    /// Static analysis of the script that produced this trace, when the
    /// caller knows the source (enables TDL008 divergence checking).
    pub analysis: Option<tracedbg_analysis::Analysis>,
}

impl<'a> TraceCx<'a> {
    pub fn build(store: &'a TraceStore) -> Self {
        Self::build_with_analysis(store, None)
    }

    pub fn build_with_analysis(
        store: &'a TraceStore,
        analysis: Option<tracedbg_analysis::Analysis>,
    ) -> Self {
        let matching = MessageMatching::build(store);
        let hb = HbIndex::build(store, &matching);
        TraceCx {
            store,
            matching,
            hb,
            analysis,
        }
    }

    /// Resolve an event's source location through the site table.
    pub fn loc_of(&self, id: EventId) -> Option<Loc> {
        let rec = self.store.record(id);
        self.store.sites().resolve(rec.site).map(|s| Loc {
            file: s.file,
            line: s.line,
            func: s.func,
        })
    }
}

/// Everything a script rule may consult.
pub struct ScriptCx<'a> {
    pub script: &'a Script,
    pub nprocs: usize,
    /// File name used in diagnostics.
    pub file: &'a str,
}

/// A post-mortem checker over a recorded trace.
pub trait TraceRule {
    fn id(&self) -> RuleId;
    fn severity(&self) -> Severity;
    fn description(&self) -> &'static str;
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>);
}

/// A pre-execution checker over a parsed workload script.
pub trait ScriptRule {
    fn id(&self) -> RuleId;
    fn severity(&self) -> Severity;
    fn description(&self) -> &'static str;
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>);
}

/// One row of the rule catalog.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    pub id: RuleId,
    pub severity: Severity,
    pub description: &'static str,
    /// `"trace"` or `"script"`.
    pub front_end: &'static str,
}

/// Every registered rule, for `--rules` listings and the README table.
pub fn rule_catalog() -> Vec<RuleInfo> {
    let mut out: Vec<RuleInfo> = trace_rules::all()
        .iter()
        .map(|r| RuleInfo {
            id: r.id(),
            severity: r.severity(),
            description: r.description(),
            front_end: "trace",
        })
        .collect();
    out.extend(script_rules::all().iter().map(|r| RuleInfo {
        id: r.id(),
        severity: r.severity(),
        description: r.description(),
        front_end: "script",
    }));
    out.sort_by_key(|r| r.id);
    out
}

fn finish(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by(|a, b| {
        (a.severity, a.rule, a.rank, &a.events, &a.message)
            .cmp(&(b.severity, b.rule, b.rank, &b.events, &b.message))
    });
    diags.dedup_by(|a, b| {
        a.rule == b.rule && a.rank == b.rank && a.events == b.events && a.message == b.message
    });
    diags
}

/// Run every enabled trace rule over a recorded trace.
pub fn lint_trace(store: &TraceStore, cfg: &LintConfig) -> Vec<Diagnostic> {
    lint_trace_cx(TraceCx::build(store), cfg)
}

/// Run the trace rules over any [`TraceSource`] — e.g. an on-disk store.
/// The rules need message matching and cross-rank context, so the source
/// is materialized into the in-memory reference form first; the store
/// stays the single artifact the user hands around.
pub fn lint_source(
    src: &dyn tracedbg_trace::TraceSource,
    cfg: &LintConfig,
) -> Result<Vec<Diagnostic>, tracedbg_trace::SourceError> {
    let store = tracedbg_trace::materialize(src)?;
    Ok(lint_trace(&store, cfg))
}

/// [`lint_trace`], additionally told which script (as executed with
/// `nprocs` ranks under the file label `file`) produced the trace. The
/// static analysis of that script feeds the analysis-vs-trace divergence
/// rule (TDL008).
pub fn lint_trace_with_script(
    store: &TraceStore,
    script: &Script,
    nprocs: usize,
    file: &str,
    cfg: &LintConfig,
) -> Vec<Diagnostic> {
    let analysis = tracedbg_analysis::analyze(script, nprocs, file);
    lint_trace_cx(TraceCx::build_with_analysis(store, Some(analysis)), cfg)
}

fn lint_trace_cx(cx: TraceCx<'_>, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in trace_rules::all() {
        if cfg.is_enabled(rule.id()) {
            rule.check(&cx, &mut diags);
        }
    }
    finish(diags)
}

/// Run every enabled script rule over a parsed workload script, as it
/// would execute with `nprocs` processes.
pub fn lint_script(
    script: &Script,
    nprocs: usize,
    file: &str,
    cfg: &LintConfig,
) -> Vec<Diagnostic> {
    let cx = ScriptCx {
        script,
        nprocs,
        file,
    };
    let mut diags = Vec::new();
    for rule in script_rules::all() {
        if cfg.is_enabled(rule.id()) {
            rule.check(&cx, &mut diags);
        }
    }
    finish(diags)
}
