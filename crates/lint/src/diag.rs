//! Structured diagnostics emitted by lint rules.
//!
//! Every finding carries a stable rule ID (`TDL...` for trace rules,
//! `SDL...` for script rules), a severity, the events or source location
//! it anchors to, and — where the rule can tell — a suggested fix. The
//! shape deliberately mirrors compiler diagnostics so reports stay useful
//! both for humans (`report::render_human`) and tools (`--json`).

use serde::Serialize;
use std::fmt;

/// Stable identifier of a lint rule, e.g. `TDL001`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct RuleId(pub &'static str);

impl RuleId {
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// Stable documentation URL for this rule.
    pub fn docs_url(&self) -> String {
        format!("https://tracedbg.dev/rules/{}", self.0)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Definite correctness problem (lost message, deadlock, mismatch).
    Error,
    /// Suspicious but potentially intended (race, self-send).
    Warning,
    /// Informational observation.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// Source location a diagnostic points at.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Loc {
    pub file: String,
    pub line: u32,
    pub func: String,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} ({})", self.file, self.line, self.func)
    }
}

/// One finding.
#[derive(Clone, Debug, Serialize)]
pub struct Diagnostic {
    pub rule: RuleId,
    pub severity: Severity,
    /// Rank the finding is about, when it concerns a single process.
    pub rank: Option<u32>,
    /// Trace event ids involved (empty for script findings).
    pub events: Vec<u32>,
    /// Source location, when the trace site table or script line knows it.
    pub loc: Option<Loc>,
    pub message: String,
    /// Actionable follow-up, when the rule can propose one.
    pub suggestion: Option<String>,
    /// Stable documentation URL for the rule.
    pub docs: String,
}

impl Diagnostic {
    pub fn new(rule: RuleId, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity,
            rank: None,
            events: Vec::new(),
            loc: None,
            message: message.into(),
            suggestion: None,
            docs: rule.docs_url(),
        }
    }

    pub fn with_rank(mut self, rank: u32) -> Self {
        self.rank = Some(rank);
        self
    }

    pub fn with_events(mut self, events: impl IntoIterator<Item = u32>) -> Self {
        self.events.extend(events);
        self
    }

    pub fn with_loc(mut self, loc: Loc) -> Self {
        self.loc = Some(loc);
        self
    }

    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.rule)?;
        if let Some(r) = self.rank {
            write!(f, " rank {r}")?;
        }
        if let Some(loc) = &self.loc {
            write!(f, " at {loc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_and_rank() {
        let d = Diagnostic::new(RuleId("TDL001"), Severity::Error, "boom").with_rank(3);
        let s = d.to_string();
        assert!(s.contains("TDL001") && s.contains("rank 3") && s.contains("boom"));
    }

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Info);
    }
}
