//! Post-mortem rules over a recorded trace (`TDL...`).
//!
//! These are the checks §4.4 of the paper describes the history analyzer
//! performing by hand — unmatched send/receive reporting, nondeterministic
//! receives, blocked-process cycles — promoted to always-on rules with
//! stable IDs, plus MUST-style collective consistency and event-protocol
//! checks.

use crate::diag::{Diagnostic, RuleId, Severity};
use crate::engine::{TraceCx, TraceRule};
use std::collections::BTreeSet;
use tracedbg_causality::{detect_circular_waits, detect_races};
use tracedbg_trace::{EventId, EventKind, Rank};

pub const UNRECEIVED_SEND: RuleId = RuleId("TDL001");
pub const BLOCKED_RECEIVE: RuleId = RuleId("TDL002");
pub const IMPOSSIBLE_RECEIVE: RuleId = RuleId("TDL003");
pub const COLLECTIVE_MISMATCH: RuleId = RuleId("TDL004");
pub const WILDCARD_RACE: RuleId = RuleId("TDL005");
pub const WAIT_CYCLE: RuleId = RuleId("TDL006");
pub const EVENT_AFTER_END: RuleId = RuleId("TDL007");
pub const ANALYSIS_DIVERGENCE: RuleId = RuleId("TDL008");

/// All registered trace rules.
pub fn all() -> Vec<Box<dyn TraceRule>> {
    vec![
        Box::new(UnreceivedSend),
        Box::new(BlockedReceive),
        Box::new(ImpossibleReceive),
        Box::new(CollectiveMismatch),
        Box::new(WildcardRace),
        Box::new(WaitCycle),
        Box::new(EventAfterEnd),
        Box::new(AnalysisDivergence),
    ]
}

fn fmt_rank_set(ranks: &BTreeSet<u32>) -> String {
    let items: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
    items.join(", ")
}

/// TDL001: a send whose message was never received.
struct UnreceivedSend;

impl TraceRule for UnreceivedSend {
    fn id(&self) -> RuleId {
        UNRECEIVED_SEND
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a message was sent but never received (leaked send)"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        for u in &cx.matching.unmatched_sends {
            let mut d = Diagnostic::new(
                self.id(),
                self.severity(),
                format!(
                    "message from rank {} to rank {} with tag {} (seq {}) was never received",
                    u.info.src.0, u.info.dst.0, u.info.tag.0, u.info.seq
                ),
            )
            .with_rank(u.info.src.0)
            .with_events([u.send.0])
            .with_suggestion(format!(
                "add a matching receive on rank {} or remove the send",
                u.info.dst.0
            ));
            if let Some(loc) = cx.loc_of(u.send) {
                d = d.with_loc(loc);
            }
            out.push(d);
        }
    }
}

/// Describe a posted receive's (src, tag) specification.
fn recv_spec(cx: &TraceCx<'_>, post: EventId) -> (Option<u32>, Option<i32>) {
    let rec = cx.store.record(post);
    let src = (rec.args[0] >= 0).then_some(rec.args[0] as u32);
    let tag = (rec.args[1] >= 0).then_some(rec.args[1] as i32);
    (src, tag)
}

fn spec_text(src: Option<u32>, tag: Option<i32>) -> String {
    let s = match src {
        Some(s) => format!("from rank {s}"),
        None => "from any rank".to_string(),
    };
    let t = match tag {
        Some(t) => format!("tag {t}"),
        None => "any tag".to_string(),
    };
    format!("{s}, {t}")
}

/// TDL002: a posted receive that never completed.
struct BlockedReceive;

impl TraceRule for BlockedReceive {
    fn id(&self) -> RuleId {
        BLOCKED_RECEIVE
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a posted receive never completed (process blocked at end of trace)"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        for u in &cx.matching.unmatched_recvs {
            let (src, tag) = recv_spec(cx, u.post);
            let mut d = Diagnostic::new(
                self.id(),
                self.severity(),
                format!(
                    "receive posted on rank {} ({}) never completed",
                    u.rank.0,
                    spec_text(src, tag)
                ),
            )
            .with_rank(u.rank.0)
            .with_events([u.post.0]);
            if let Some(loc) = cx.loc_of(u.post) {
                d = d.with_loc(loc);
            }
            out.push(d);
        }
    }
}

/// TDL003: a blocked receive whose specification can never match — the
/// named source did send to this rank, but only under different tags.
struct ImpossibleReceive;

impl TraceRule for ImpossibleReceive {
    fn id(&self) -> RuleId {
        IMPOSSIBLE_RECEIVE
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "a blocked receive requests a tag its source never sent (tag mismatch)"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        for u in &cx.matching.unmatched_recvs {
            let (src, tag) = recv_spec(cx, u.post);
            let Some(want_tag) = tag else { continue };
            // Tags actually sent to this rank from the requested source
            // (or from anyone, for a wildcard-source receive).
            let mut seen_tags: BTreeSet<i32> = BTreeSet::new();
            for id in cx.store.ids() {
                let rec = cx.store.record(id);
                if rec.kind != EventKind::Send {
                    continue;
                }
                let Some(m) = rec.msg else { continue };
                if m.dst != u.rank {
                    continue;
                }
                if let Some(s) = src {
                    if m.src.0 != s {
                        continue;
                    }
                }
                seen_tags.insert(m.tag.0);
            }
            if seen_tags.is_empty() || seen_tags.contains(&want_tag) {
                // No sends at all (plain TDL002 territory), or the tag
                // exists and the receive is blocked for another reason.
                continue;
            }
            let tags: Vec<String> = seen_tags.iter().map(|t| t.to_string()).collect();
            let mut d = Diagnostic::new(
                self.id(),
                self.severity(),
                format!(
                    "receive on rank {} waits for tag {want_tag}, but {} only sent tag(s) {}",
                    u.rank.0,
                    match src {
                        Some(s) => format!("rank {s}"),
                        None => "its sources".to_string(),
                    },
                    tags.join(", ")
                ),
            )
            .with_rank(u.rank.0)
            .with_events([u.post.0])
            .with_suggestion(format!(
                "check the tag: did you mean tag {}?",
                seen_tags.iter().next().unwrap()
            ));
            if let Some(loc) = cx.loc_of(u.post) {
                d = d.with_loc(loc);
            }
            out.push(d);
        }
    }
}

/// TDL004: aligned collective instances must agree across ranks.
///
/// Collectives are aligned the same way [`tracedbg_causality::HbIndex`]
/// aligns them: the i-th collective record on each rank belongs to
/// instance i. A kind mismatch or a rank that never reaches an instance
/// other ranks completed is reported once, at the first bad instance.
struct CollectiveMismatch;

impl TraceRule for CollectiveMismatch {
    fn id(&self) -> RuleId {
        COLLECTIVE_MISMATCH
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "ranks disagree on the kind or count of a collective operation"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        let n_ranks = cx.store.n_ranks();
        if n_ranks == 0 {
            return;
        }
        let lanes: Vec<Vec<EventId>> = (0..n_ranks)
            .map(|r| {
                cx.store
                    .by_rank(Rank(r as u32))
                    .iter()
                    .copied()
                    .filter(|&id| matches!(cx.store.record(id).kind, EventKind::Collective(_)))
                    .collect()
            })
            .collect();
        let max_len = lanes.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..max_len {
            let mut present: Vec<(u32, EventId)> = Vec::new();
            let mut absent: BTreeSet<u32> = BTreeSet::new();
            for (r, lane) in lanes.iter().enumerate() {
                match lane.get(i) {
                    Some(&id) => present.push((r as u32, id)),
                    None => {
                        absent.insert(r as u32);
                    }
                }
            }
            if !absent.is_empty() {
                let events = present.iter().map(|&(_, id)| id.0);
                out.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        format!(
                            "collective instance #{i}: rank(s) {} never entered it \
                             while the other ranks did",
                            fmt_rank_set(&absent)
                        ),
                    )
                    .with_events(events)
                    .with_suggestion(
                        "every rank must call the same collectives the same number of times",
                    ),
                );
                return; // later instances are misaligned by construction
            }
            let kinds: BTreeSet<String> = present
                .iter()
                .map(|&(_, id)| format!("{:?}", cx.store.record(id).kind))
                .collect();
            if kinds.len() > 1 {
                let detail: Vec<String> = present
                    .iter()
                    .map(|&(r, id)| format!("rank {r}: {:?}", cx.store.record(id).kind))
                    .collect();
                out.push(
                    Diagnostic::new(
                        self.id(),
                        self.severity(),
                        format!(
                            "collective instance #{i}: ranks entered different operations ({})",
                            detail.join("; ")
                        ),
                    )
                    .with_events(present.iter().map(|&(_, id)| id.0))
                    .with_suggestion("make all ranks call the same collective in the same order"),
                );
                return;
            }
        }
    }
}

/// TDL005: a wildcard receive that another send could have satisfied.
struct WildcardRace;

impl TraceRule for WildcardRace {
    fn id(&self) -> RuleId {
        WILDCARD_RACE
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "a wildcard receive raced: a different send could have matched it"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        for race in detect_races(cx.store, &cx.matching, &cx.hb) {
            let recv = cx.store.record(race.recv);
            let actual = cx.store.record(race.actual_send);
            let alt_srcs: BTreeSet<u32> = race
                .alternatives
                .iter()
                .filter_map(|&id| cx.store.record(id).msg.map(|m| m.src.0))
                .collect();
            let mut d = Diagnostic::new(
                self.id(),
                self.severity(),
                format!(
                    "wildcard receive on rank {} took the message from rank {}, but \
                     concurrent send(s) from rank(s) {} could also have matched \
                     (nondeterministic outcome)",
                    recv.rank.0,
                    actual.msg.map(|m| m.src.0).unwrap_or(u32::MAX),
                    fmt_rank_set(&alt_srcs)
                ),
            )
            .with_rank(recv.rank.0)
            .with_events(
                [race.recv.0, race.actual_send.0]
                    .into_iter()
                    .chain(race.alternatives.iter().map(|e| e.0)),
            )
            .with_suggestion("name the source rank explicitly, or make the order irrelevant");
            if let Some(loc) = cx.loc_of(race.recv) {
                d = d.with_loc(loc);
            }
            out.push(d);
        }
    }
}

/// TDL006: a cycle of ranks each blocked receiving from the next.
struct WaitCycle;

impl TraceRule for WaitCycle {
    fn id(&self) -> RuleId {
        WAIT_CYCLE
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "ranks are blocked in a circular wait (communication deadlock)"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        for cycle in detect_circular_waits(cx.store, &cx.matching) {
            let path: Vec<String> = cycle
                .ranks
                .iter()
                .chain(cycle.ranks.first())
                .map(|r| r.0.to_string())
                .collect();
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    format!(
                        "circular wait: rank(s) {} are each blocked receiving from the next",
                        path.join(" -> ")
                    ),
                )
                .with_events(cycle.posts.iter().map(|e| e.0))
                .with_suggestion("reorder the communication or break the cycle with a send"),
            );
        }
    }
}

/// TDL008: a dynamic match the static may-match relation says is
/// impossible. The relation over-approximates every schedule, so a match
/// outside it means the trace and the analyzed script disagree — a stale
/// script, a site-table mismatch, or an analysis bug. Only runs when the
/// caller supplied the script ([`crate::lint_trace_with_script`]) and the
/// analysis covered every reachable site.
struct AnalysisDivergence;

impl TraceRule for AnalysisDivergence {
    fn id(&self) -> RuleId {
        ANALYSIS_DIVERGENCE
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a dynamic message match falls outside the static may-match relation"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        let Some(a) = &cx.analysis else { return };
        if !a.graph.complete {
            return;
        }
        for m in &cx.matching.matched {
            let (Some(sloc), Some(rloc)) = (cx.loc_of(m.send), cx.loc_of(m.recv)) else {
                continue;
            };
            // Only sites the analysis labeled (same script file) are
            // comparable; runtime-internal sites are not its business.
            if sloc.file != a.graph.file || rloc.file != a.graph.file {
                continue;
            }
            let src = m.info.src.0 as usize;
            let dst = m.info.dst.0 as usize;
            if a.may_match_lines(src, sloc.line, dst, rloc.line) {
                continue;
            }
            let missing = a.graph.site_at(src, sloc.line).is_none()
                || a.graph.site_at(dst, rloc.line).is_none();
            let (why, fix) = if missing {
                (
                    "a site the static analysis never saw",
                    "the trace references script lines the analysis never reached \
                     — is the script the one that produced this trace?",
                )
            } else {
                (
                    "outside the static may-match relation",
                    "re-record the trace from the analyzed script; if it reproduces, \
                     this is an analysis soundness bug",
                )
            };
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    format!(
                        "message from rank {src} (line {}) to rank {dst} (line {}) \
                         tag {} matched at {why} — trace and script analysis disagree",
                        sloc.line, rloc.line, m.info.tag.0
                    ),
                )
                .with_rank(dst as u32)
                .with_events([m.send.0, m.recv.0])
                .with_loc(rloc)
                .with_suggestion(fix),
            );
        }
    }
}

/// TDL007: events recorded after a process already ended.
struct EventAfterEnd;

impl TraceRule for EventAfterEnd {
    fn id(&self) -> RuleId {
        EVENT_AFTER_END
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a process recorded events after its ProcEnd (e.g. probe after finalize)"
    }
    fn check(&self, cx: &TraceCx<'_>, out: &mut Vec<Diagnostic>) {
        for r in 0..cx.store.n_ranks() {
            let lane = cx.store.by_rank(Rank(r as u32));
            let Some(end_pos) = lane
                .iter()
                .position(|&id| cx.store.record(id).kind == EventKind::ProcEnd)
            else {
                continue;
            };
            for &id in &lane[end_pos + 1..] {
                let rec = cx.store.record(id);
                let what = match rec.kind {
                    EventKind::Probe => "probe after process end (probe after finalize)",
                    EventKind::ProcEnd => "duplicate ProcEnd",
                    _ => "event after process end",
                };
                let mut d = Diagnostic::new(
                    self.id(),
                    self.severity(),
                    format!("rank {r}: {what} ({:?})", rec.kind),
                )
                .with_rank(r as u32)
                .with_events([id.0]);
                if let Some(loc) = cx.loc_of(id) {
                    d = d.with_loc(loc);
                }
                out.push(d);
            }
        }
    }
}
