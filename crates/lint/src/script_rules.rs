//! Pre-execution rules over workload scripts (`SDL...`).
//!
//! The script DSL is simple enough that an abstract interpreter can walk
//! each rank's program with constant propagation: `let`-bound values and
//! loop indices are tracked exactly, values read from messages become
//! "unknown", and both branches of an undecidable `if` are explored. The
//! result is a per-rank sequence of abstract communication operations that
//! the rules inspect — so tag typos, out-of-range ranks, and guaranteed
//! deadlocks are reported before the engine ever runs.

use crate::diag::{Diagnostic, Loc, RuleId, Severity};
use crate::engine::{ScriptCx, ScriptRule};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tracedbg_workloads::script::{Cond, Expr, Script, Stmt, StmtKind};

pub const UNDEFINED_CALL: RuleId = RuleId("SDL101");
pub const RANK_OUT_OF_BOUNDS: RuleId = RuleId("SDL102");
pub const GUARANTEED_DEADLOCK: RuleId = RuleId("SDL103");
pub const TAG_NEVER_SENT: RuleId = RuleId("SDL104");
pub const SELF_MESSAGE: RuleId = RuleId("SDL105");
pub const MISSING_MAIN: RuleId = RuleId("SDL106");
pub const STATIC_DEADLOCK: RuleId = RuleId("SDL107");
pub const UNMATCHED_SITE: RuleId = RuleId("SDL108");
pub const RACING_WILDCARD: RuleId = RuleId("SDL109");

/// All registered script rules.
pub fn all() -> Vec<Box<dyn ScriptRule>> {
    vec![
        Box::new(MissingMain),
        Box::new(UndefinedCall),
        Box::new(RankOutOfBounds),
        Box::new(GuaranteedDeadlock),
        Box::new(TagNeverSent),
        Box::new(SelfMessage),
        Box::new(StaticDeadlock),
        Box::new(UnmatchedSite),
        Box::new(RacingWildcard),
    ]
}

// ------------------------------------------------- abstract interpretation

/// Source specification of an abstract receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SrcSpec {
    /// `recv from any` — matches any sender.
    Wildcard,
    Known(i64),
    /// Depends on a value the interpreter cannot track.
    Unknown,
}

#[derive(Clone, Debug)]
enum AbsOpKind {
    Send { dst: Option<i64>, tag: i32 },
    Recv { src: SrcSpec, tag: Option<i32> },
    Barrier,
}

#[derive(Clone, Debug)]
struct AbsOp {
    line: u32,
    func: String,
    kind: AbsOpKind,
}

/// Abstract execution result for one `nprocs` configuration.
struct Summary {
    per_rank: Vec<Vec<AbsOp>>,
    /// True when every value was tracked exactly: no unknown branches,
    /// no truncated loops, no unresolved calls. Deadlock detection only
    /// trusts exact summaries.
    exact: bool,
}

type Env = HashMap<String, Option<i64>>;

const STEP_CAP: usize = 100_000;
const LOOP_CAP: i64 = 4096;
const DEPTH_CAP: usize = 32;

struct Walker<'a> {
    script: &'a Script,
    ops: Vec<AbsOp>,
    exact: bool,
    steps: usize,
}

fn eval(env: &Env, e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(n) => Some(*n),
        Expr::Var(name) => env.get(name).copied().flatten(),
        Expr::Add(a, b) => Some(eval(env, a)?.wrapping_add(eval(env, b)?)),
        Expr::Sub(a, b) => Some(eval(env, a)?.wrapping_sub(eval(env, b)?)),
        Expr::Mul(a, b) => Some(eval(env, a)?.wrapping_mul(eval(env, b)?)),
        Expr::Mod(a, b) => {
            let (a, b) = (eval(env, a)?, eval(env, b)?);
            (b != 0).then(|| a.rem_euclid(b))
        }
    }
}

fn eval_cond(env: &Env, c: &Cond) -> Option<bool> {
    let (a, b) = match c {
        Cond::Eq(a, b) | Cond::Ne(a, b) | Cond::Lt(a, b) => (eval(env, a)?, eval(env, b)?),
    };
    Some(match c {
        Cond::Eq(..) => a == b,
        Cond::Ne(..) => a != b,
        Cond::Lt(..) => a < b,
    })
}

/// Join two environments after exploring both sides of an undecidable
/// branch: variables that disagree become unknown.
fn merge_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, &va) in a {
        let vb = b.get(k).copied().flatten();
        out.insert(k.clone(), if va == vb { va } else { None });
    }
    for (k, _) in b.iter() {
        out.entry(k.clone()).or_insert(None);
    }
    out
}

impl<'a> Walker<'a> {
    fn walk(&mut self, func: &str, stmts: &[Stmt], env: &mut Env, depth: usize) {
        for s in stmts {
            self.steps += 1;
            if self.steps > STEP_CAP {
                self.exact = false;
                return;
            }
            match &s.kind {
                StmtKind::Let { var, value } => {
                    let v = eval(env, value);
                    env.insert(var.clone(), v);
                }
                StmtKind::Compute { .. } | StmtKind::Trace { .. } => {}
                StmtKind::Send { dst, tag, .. } => {
                    self.ops.push(AbsOp {
                        line: s.line,
                        func: func.to_string(),
                        kind: AbsOpKind::Send {
                            dst: eval(env, dst),
                            tag: *tag,
                        },
                    });
                }
                StmtKind::Recv { src, tag, var } => {
                    let spec = match src {
                        None => SrcSpec::Wildcard,
                        Some(e) => match eval(env, e) {
                            Some(v) => SrcSpec::Known(v),
                            None => SrcSpec::Unknown,
                        },
                    };
                    self.ops.push(AbsOp {
                        line: s.line,
                        func: func.to_string(),
                        kind: AbsOpKind::Recv {
                            src: spec,
                            tag: *tag,
                        },
                    });
                    // The received payload is data-dependent.
                    env.insert(var.clone(), None);
                }
                StmtKind::Call { func: callee } => {
                    if depth >= DEPTH_CAP {
                        self.exact = false;
                        continue;
                    }
                    if let Some(body) = self.script.functions.get(callee) {
                        self.walk(callee, body, env, depth + 1);
                    }
                    // Undefined callee: SDL101 reports it; the runtime
                    // would abort here, so nothing else to model.
                }
                StmtKind::Loop {
                    var,
                    from,
                    to,
                    body,
                } => {
                    match (eval(env, from), eval(env, to)) {
                        (Some(lo), Some(hi)) if hi - lo <= LOOP_CAP => {
                            for i in lo..hi {
                                env.insert(var.clone(), Some(i));
                                self.walk(func, body, env, depth);
                                if self.steps > STEP_CAP {
                                    return;
                                }
                            }
                        }
                        _ => {
                            // Unknown or oversized bounds: explore the body
                            // once with an unknown index so send/recv sites
                            // are still seen, but give up on exactness.
                            self.exact = false;
                            env.insert(var.clone(), None);
                            self.walk(func, body, env, depth);
                        }
                    }
                }
                StmtKind::If { cond, then, els } => match eval_cond(env, cond) {
                    Some(true) => self.walk(func, then, env, depth),
                    Some(false) => self.walk(func, els, env, depth),
                    None => {
                        self.exact = false;
                        let mut then_env = env.clone();
                        let mut els_env = env.clone();
                        self.walk(func, then, &mut then_env, depth);
                        self.walk(func, els, &mut els_env, depth);
                        *env = merge_env(&then_env, &els_env);
                    }
                },
                StmtKind::Barrier => {
                    self.ops.push(AbsOp {
                        line: s.line,
                        func: func.to_string(),
                        kind: AbsOpKind::Barrier,
                    });
                }
            }
        }
    }
}

fn summarize(script: &Script, nprocs: usize) -> Summary {
    let mut per_rank = Vec::with_capacity(nprocs);
    let mut exact = true;
    for rank in 0..nprocs {
        let mut w = Walker {
            script,
            ops: Vec::new(),
            exact: true,
            steps: 0,
        };
        let mut env = Env::new();
        env.insert("rank".to_string(), Some(rank as i64));
        env.insert("nprocs".to_string(), Some(nprocs as i64));
        if let Some(main) = script.functions.get("main") {
            w.walk("main", main, &mut env, 0);
        }
        exact &= w.exact;
        per_rank.push(w.ops);
    }
    Summary { per_rank, exact }
}

fn loc(cx: &ScriptCx<'_>, op: &AbsOp) -> Loc {
    Loc {
        file: cx.file.to_string(),
        line: op.line,
        func: op.func.clone(),
    }
}

// ------------------------------------------------------------------- rules

/// SDL106: the script never defines `main`.
struct MissingMain;

impl ScriptRule for MissingMain {
    fn id(&self) -> RuleId {
        MISSING_MAIN
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the script defines no `main` function, so no rank runs anything"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        if !cx.script.functions.contains_key("main") {
            out.push(
                Diagnostic::new(self.id(), self.severity(), "no `main` function defined")
                    .with_suggestion("add `fn main` — it is the entry point for every rank"),
            );
        }
    }
}

fn for_each_stmt<'s>(script: &'s Script, mut f: impl FnMut(&'s str, &'s Stmt)) {
    fn rec<'s>(func: &'s str, stmts: &'s [Stmt], f: &mut impl FnMut(&'s str, &'s Stmt)) {
        for s in stmts {
            f(func, s);
            match &s.kind {
                StmtKind::Loop { body, .. } => rec(func, body, f),
                StmtKind::If { then, els, .. } => {
                    rec(func, then, f);
                    rec(func, els, f);
                }
                _ => {}
            }
        }
    }
    for (name, body) in &script.functions {
        rec(name, body, &mut f);
    }
}

/// SDL101: `call f` where no function `f` exists. The parser accepts it;
/// the engine only fails at runtime, on the rank that reaches the call.
struct UndefinedCall;

impl ScriptRule for UndefinedCall {
    fn id(&self) -> RuleId {
        UNDEFINED_CALL
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a `call` names a function the script never defines"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let mut seen: BTreeSet<(u32, &str)> = BTreeSet::new();
        for_each_stmt(cx.script, |func, s| {
            if let StmtKind::Call { func: callee } = &s.kind {
                if !cx.script.functions.contains_key(callee) && seen.insert((s.line, callee)) {
                    let known: Vec<&str> = cx.script.functions.keys().map(String::as_str).collect();
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            self.severity(),
                            format!("call to undefined function `{callee}`"),
                        )
                        .with_loc(Loc {
                            file: cx.file.to_string(),
                            line: s.line,
                            func: func.to_string(),
                        })
                        .with_suggestion(format!("defined functions: {}", known.join(", "))),
                    );
                }
            }
        });
    }
}

/// SDL102: a send destination or receive source that provably falls
/// outside `0..nprocs` on some rank.
struct RankOutOfBounds;

impl ScriptRule for RankOutOfBounds {
    fn id(&self) -> RuleId {
        RANK_OUT_OF_BOUNDS
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a send/receive names a rank outside 0..nprocs"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let summary = summarize(cx.script, cx.nprocs);
        let n = cx.nprocs as i64;
        // Dedupe by (line, offending value); the same line trips on
        // every rank that executes it.
        let mut seen: BTreeSet<(u32, i64)> = BTreeSet::new();
        for (rank, ops) in summary.per_rank.iter().enumerate() {
            for op in ops {
                let (value, what) = match op.kind {
                    AbsOpKind::Send { dst: Some(d), .. } if d < 0 || d >= n => (d, "send to"),
                    AbsOpKind::Recv {
                        src: SrcSpec::Known(s),
                        ..
                    } if s < 0 || s >= n => (s, "receive from"),
                    _ => continue,
                };
                if seen.insert((op.line, value)) {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            self.severity(),
                            format!(
                                "rank {rank} would {what} rank {value}, but only ranks \
                                 0..{n} exist",
                            ),
                        )
                        .with_rank(rank as u32)
                        .with_loc(loc(cx, op))
                        .with_suggestion("clamp the expression or fix the rank arithmetic"),
                    );
                }
            }
        }
    }
}

/// SDL103: every rank provably blocks — the script cannot complete for
/// this `nprocs` no matter how the engine schedules it.
///
/// Sends are modeled as buffered (the engine's semantics), so the
/// guaranteed deadlocks are receive cycles, receives with no matching
/// send left, and barriers some rank never reaches. Only exact summaries
/// (no unknown values, no wildcard receives) are simulated, so a report
/// is never a false alarm.
struct GuaranteedDeadlock;

impl GuaranteedDeadlock {
    fn simulate(per_rank: &[Vec<AbsOp>]) -> Option<Vec<(usize, AbsOp)>> {
        let nprocs = per_rank.len();
        let mut pos = vec![0usize; nprocs];
        let mut mail: BTreeMap<(i64, usize, i32), usize> = BTreeMap::new();
        loop {
            // A barrier completes only when every rank is at one.
            if (0..nprocs).all(|r| {
                matches!(
                    per_rank[r].get(pos[r]).map(|op| &op.kind),
                    Some(AbsOpKind::Barrier)
                )
            }) {
                for p in &mut pos {
                    *p += 1;
                }
                continue;
            }
            let mut progressed = false;
            for r in 0..nprocs {
                let Some(op) = per_rank[r].get(pos[r]) else {
                    continue;
                };
                match op.kind {
                    AbsOpKind::Send { dst: Some(d), tag } => {
                        if (0..nprocs as i64).contains(&d) {
                            *mail.entry((r as i64, d as usize, tag)).or_insert(0) += 1;
                        }
                        // Out-of-range destination: the message vanishes
                        // (SDL102 already reported the real problem).
                        pos[r] += 1;
                        progressed = true;
                    }
                    AbsOpKind::Recv {
                        src: SrcSpec::Known(s),
                        tag: Some(t),
                    } => {
                        if let Some(count) = mail.get_mut(&(s, r, t)) {
                            if *count > 0 {
                                *count -= 1;
                                pos[r] += 1;
                                progressed = true;
                            }
                        }
                    }
                    AbsOpKind::Recv {
                        src: SrcSpec::Known(s),
                        tag: None,
                    } => {
                        let key = mail
                            .iter()
                            .find(|(&(src, dst, _), &c)| src == s && dst == r && c > 0)
                            .map(|(&k, _)| k);
                        if let Some(k) = key {
                            *mail.get_mut(&k).unwrap() -= 1;
                            pos[r] += 1;
                            progressed = true;
                        }
                    }
                    // Wildcard/unknown receives never reach the simulator
                    // (the rule bails out below), sends with unknown
                    // destinations likewise.
                    _ => {}
                }
            }
            if !progressed {
                if (0..nprocs).all(|r| pos[r] >= per_rank[r].len()) {
                    return None; // everyone finished
                }
                return Some(
                    (0..nprocs)
                        .filter_map(|r| per_rank[r].get(pos[r]).map(|op| (r, op.clone())))
                        .collect(),
                );
            }
        }
    }
}

impl ScriptRule for GuaranteedDeadlock {
    fn id(&self) -> RuleId {
        GUARANTEED_DEADLOCK
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "the script deadlocks for this nprocs under every schedule"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let summary = summarize(cx.script, cx.nprocs);
        if !summary.exact {
            return;
        }
        let analyzable = summary.per_rank.iter().flatten().all(|op| {
            !matches!(
                op.kind,
                AbsOpKind::Send { dst: None, .. }
                    | AbsOpKind::Recv {
                        src: SrcSpec::Wildcard | SrcSpec::Unknown,
                        ..
                    }
            )
        });
        if !analyzable {
            return;
        }
        let Some(blocked) = Self::simulate(&summary.per_rank) else {
            return;
        };
        let detail: Vec<String> = blocked
            .iter()
            .map(|(r, op)| {
                let what = match &op.kind {
                    AbsOpKind::Recv {
                        src: SrcSpec::Known(s),
                        tag,
                    } => match tag {
                        Some(t) => format!("receiving from rank {s} tag {t}"),
                        None => format!("receiving from rank {s}"),
                    },
                    AbsOpKind::Barrier => "waiting at a barrier".to_string(),
                    _ => "blocked".to_string(),
                };
                format!("rank {r} {what} (line {})", op.line)
            })
            .collect();
        let first = &blocked[0];
        out.push(
            Diagnostic::new(
                self.id(),
                self.severity(),
                format!(
                    "guaranteed deadlock with {} processes: {}",
                    cx.nprocs,
                    detail.join("; ")
                ),
            )
            .with_rank(first.0 as u32)
            .with_loc(loc(cx, &first.1))
            .with_suggestion("no schedule can complete this pattern; fix the blocked operations"),
        );
    }
}

/// SDL104: a tag asymmetry — receives wait for a tag no send carries, or
/// sends carry a tag no receive accepts.
struct TagNeverSent;

impl ScriptRule for TagNeverSent {
    fn id(&self) -> RuleId {
        TAG_NEVER_SENT
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "a tag appears only on sends or only on receives (likely typo)"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let summary = summarize(cx.script, cx.nprocs);
        let ops: Vec<&AbsOp> = summary.per_rank.iter().flatten().collect();
        let mut send_tags: BTreeMap<i32, &AbsOp> = BTreeMap::new();
        let mut recv_tags: BTreeMap<i32, &AbsOp> = BTreeMap::new();
        let mut any_tag_recv = false;
        for op in &ops {
            match op.kind {
                AbsOpKind::Send { tag, .. } => {
                    send_tags.entry(tag).or_insert(op);
                }
                AbsOpKind::Recv { tag: Some(t), .. } => {
                    recv_tags.entry(t).or_insert(op);
                }
                AbsOpKind::Recv { tag: None, .. } => any_tag_recv = true,
                AbsOpKind::Barrier => {}
            }
        }
        let nearest = |tags: &BTreeMap<i32, &AbsOp>, t: i32| {
            tags.keys()
                .min_by_key(|&&k| (k - t).unsigned_abs())
                .copied()
        };
        if !send_tags.is_empty() {
            for (&t, op) in &recv_tags {
                if !send_tags.contains_key(&t) {
                    let mut d = Diagnostic::new(
                        self.id(),
                        self.severity(),
                        format!("receives wait for tag {t}, but no send uses that tag"),
                    )
                    .with_loc(loc(cx, op));
                    if let Some(n) = nearest(&send_tags, t) {
                        d = d.with_suggestion(format!("sends use tag {n} — did you mean {n}?"));
                    }
                    out.push(d);
                }
            }
        }
        // An any-tag receive can absorb every tag; and with no receives at
        // all, "tag asymmetry" is not the right story to tell.
        if !any_tag_recv && !recv_tags.is_empty() {
            for (&t, op) in &send_tags {
                if !recv_tags.contains_key(&t) {
                    let mut d = Diagnostic::new(
                        self.id(),
                        self.severity(),
                        format!("messages with tag {t} are sent, but no receive accepts it"),
                    )
                    .with_loc(loc(cx, op));
                    if let Some(n) = nearest(&recv_tags, t) {
                        d = d.with_suggestion(format!("receives use tag {n} — did you mean {n}?"));
                    }
                    out.push(d);
                }
            }
        }
    }
}

// Rules SDL107-SDL109 consume the whole-program static analysis from
// `tracedbg-analysis` (may-match relation over the communication graph)
// instead of the local walker above, so they see through wildcard receives
// and loop-carried peer expressions the simulator must give up on.

fn analysis_loc(cx: &ScriptCx<'_>, site: &tracedbg_analysis::CommSite) -> Loc {
    Loc {
        file: cx.file.to_string(),
        line: site.line,
        func: site.func.clone(),
    }
}

/// SDL107: the may-match wait-for graph proves a set of ranks deadlocked
/// at startup — every rank in the set must receive first, and every
/// possible sender for those receives is itself in the set.
struct StaticDeadlock;

impl ScriptRule for StaticDeadlock {
    fn id(&self) -> RuleId {
        STATIC_DEADLOCK
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn description(&self) -> &'static str {
        "a set of ranks provably deadlocks: each begins with a receive only the others could feed"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let a = tracedbg_analysis::analyze(cx.script, cx.nprocs, cx.file);
        let blocked = a.deadlocked_ranks();
        if blocked.is_empty() {
            return;
        }
        let first = blocked[0];
        let set: Vec<String> = blocked.iter().map(|r| r.to_string()).collect();
        let mut d = Diagnostic::new(
            self.id(),
            self.severity(),
            format!(
                "static deadlock with {} processes: rank(s) {} each begin with a \
                 receive that only another blocked rank (or nobody) could satisfy",
                cx.nprocs,
                set.join(", ")
            ),
        )
        .with_rank(first as u32)
        .with_suggestion("break the wait cycle: some rank in the set must send first");
        if let Some(&line) = a.graph.entry[first].lines.first() {
            if let Some(i) = a.graph.site_at(first, line) {
                d = d.with_loc(analysis_loc(cx, &a.graph.sites[i]));
            }
        }
        out.push(d);
    }
}

/// SDL108: a send or receive site with zero partners in the may-match
/// relation — provably never matched under any schedule.
struct UnmatchedSite;

impl ScriptRule for UnmatchedSite {
    fn id(&self) -> RuleId {
        UNMATCHED_SITE
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "a send/receive site has no possible partner in the may-match relation"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let a = tracedbg_analysis::analyze(cx.script, cx.nprocs, cx.file);
        // A partial walk may simply not have seen the partner site; only a
        // complete graph makes "no partner" a sound claim.
        if !a.graph.complete {
            return;
        }
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for (i, site) in a.graph.sites.iter().enumerate() {
            if matches!(site.op, tracedbg_analysis::SiteOp::Barrier) {
                continue;
            }
            if a.may_match.partners[i] > 0 || !seen_lines.insert(site.line) {
                continue;
            }
            let what = match &site.op {
                tracedbg_analysis::SiteOp::Send { dst, tag } => format!(
                    "send to rank(s) {} with tag {tag} can never be received",
                    dst.render()
                ),
                tracedbg_analysis::SiteOp::Recv { src, tag, .. } => {
                    let t = match tag {
                        Some(t) => format!(" with tag {t}"),
                        None => String::new(),
                    };
                    format!(
                        "receive from rank(s) {}{t} can never be satisfied",
                        src.render()
                    )
                }
                tracedbg_analysis::SiteOp::Barrier => continue,
            };
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    format!("rank {}: {what} (no may-match partner)", site.rank),
                )
                .with_rank(site.rank as u32)
                .with_loc(analysis_loc(cx, site))
                .with_suggestion("check the peer expression and tag against the other side"),
            );
        }
    }
}

/// SDL109: a wildcard receive that two or more ranks may race to satisfy —
/// the message order (and any `_src`-dependent control flow) is schedule-
/// dependent.
struct RacingWildcard;

impl ScriptRule for RacingWildcard {
    fn id(&self) -> RuleId {
        RACING_WILDCARD
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "a wildcard receive has two or more statically racing senders"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let a = tracedbg_analysis::analyze(cx.script, cx.nprocs, cx.file);
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for (i, site) in a.graph.sites.iter().enumerate() {
            let tracedbg_analysis::SiteOp::Recv { wildcard: true, .. } = site.op else {
                continue;
            };
            let senders = a.senders_of(i);
            if senders.len() < 2 || !seen_lines.insert(site.line) {
                continue;
            }
            let list: Vec<String> = senders.iter().map(|r| r.to_string()).collect();
            out.push(
                Diagnostic::new(
                    self.id(),
                    self.severity(),
                    format!(
                        "wildcard receive on rank {} races: rank(s) {} may all \
                         satisfy it, so the arrival order is schedule-dependent",
                        site.rank,
                        list.join(", ")
                    ),
                )
                .with_rank(site.rank as u32)
                .with_loc(analysis_loc(cx, site))
                .with_suggestion(
                    "name the source rank explicitly, or make the handling order-insensitive",
                ),
            );
        }
    }
}

/// SDL105: a rank sending a message to itself.
struct SelfMessage;

impl ScriptRule for SelfMessage {
    fn id(&self) -> RuleId {
        SELF_MESSAGE
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn description(&self) -> &'static str {
        "a rank sends a message to itself"
    }
    fn check(&self, cx: &ScriptCx<'_>, out: &mut Vec<Diagnostic>) {
        let summary = summarize(cx.script, cx.nprocs);
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for (rank, ops) in summary.per_rank.iter().enumerate() {
            for op in ops {
                if let AbsOpKind::Send { dst: Some(d), .. } = op.kind {
                    if d == rank as i64 && seen_lines.insert(op.line) {
                        out.push(
                            Diagnostic::new(
                                self.id(),
                                self.severity(),
                                format!("rank {rank} sends a message to itself"),
                            )
                            .with_rank(rank as u32)
                            .with_loc(loc(cx, op))
                            .with_suggestion(
                                "self-messages usually indicate off-by-one rank arithmetic",
                            ),
                        );
                    }
                }
            }
        }
    }
}
