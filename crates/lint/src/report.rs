//! Rendering diagnostics for humans and for tools.

use crate::diag::{Diagnostic, Severity};
use std::fmt::Write as _;

/// True when any diagnostic is an error (drives the CLI exit code).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// One-line totals, e.g. `2 errors, 1 warning`.
pub fn summary_line(diags: &[Diagnostic]) -> String {
    let count = |sev: Severity| diags.iter().filter(|d| d.severity == sev).count();
    let (e, w, i) = (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
    );
    if e + w + i == 0 {
        return "clean: no diagnostics".to_string();
    }
    let plural = |n: usize, word: &str| {
        if n == 1 {
            format!("1 {word}")
        } else {
            format!("{n} {word}s")
        }
    };
    let mut parts = Vec::new();
    if e > 0 {
        parts.push(plural(e, "error"));
    }
    if w > 0 {
        parts.push(plural(w, "warning"));
    }
    if i > 0 {
        parts.push(plural(i, "info"));
    }
    parts.join(", ")
}

/// Multi-line human-readable report with suggestions and a summary.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
        if !d.events.is_empty() {
            let ids: Vec<String> = d.events.iter().map(|e| format!("#{e}")).collect();
            let _ = writeln!(out, "    events: {}", ids.join(", "));
        }
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "    help: {s}");
        }
    }
    let _ = writeln!(out, "{}", summary_line(diags));
    out
}

/// JSON array of diagnostics (`tracedbg lint --json`).
pub fn render_json(diags: &[Diagnostic]) -> String {
    serde_json::to_string(&diags.to_vec()).expect("diagnostics always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, RuleId, Severity};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(RuleId("TDL001"), Severity::Error, "lost message")
                .with_rank(1)
                .with_events([4u32])
                .with_suggestion("add a receive"),
            Diagnostic::new(RuleId("TDL005"), Severity::Warning, "race"),
        ]
    }

    #[test]
    fn human_report_mentions_everything() {
        let s = render_human(&sample());
        assert!(s.contains("TDL001"));
        assert!(s.contains("help: add a receive"));
        assert!(s.contains("1 error, 1 warning"));
    }

    #[test]
    fn json_is_an_array_with_rules() {
        let s = render_json(&sample());
        assert!(s.starts_with('['));
        assert!(s.contains("\"rule\":\"TDL001\""));
        assert!(s.contains("\"severity\":\"Warning\""));
    }

    #[test]
    fn clean_summary() {
        assert_eq!(summary_line(&[]), "clean: no diagnostics");
        assert!(!has_errors(&[]));
    }
}
