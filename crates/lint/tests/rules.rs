//! One triggering fixture per lint rule ID, for both front ends, plus
//! configuration filtering.

use tracedbg_lint::{lint_script, lint_trace, Diagnostic, LintConfig, Severity};
use tracedbg_trace::{CollKind, EventKind, MsgInfo, Rank, SiteTable, Tag, TraceRecord, TraceStore};
use tracedbg_workloads::script;

fn has(diags: &[Diagnostic], rule: &str) -> bool {
    diags.iter().any(|d| d.rule.0 == rule)
}

fn find<'a>(diags: &'a [Diagnostic], rule: &str) -> &'a Diagnostic {
    diags
        .iter()
        .find(|d| d.rule.0 == rule)
        .unwrap_or_else(|| panic!("expected a {rule} diagnostic, got {diags:?}"))
}

fn msg(src: u32, dst: u32, tag: i32, seq: u64) -> MsgInfo {
    MsgInfo {
        src: Rank(src),
        dst: Rank(dst),
        tag: Tag(tag),
        bytes: 8,
        seq,
    }
}

fn lint(recs: Vec<TraceRecord>, n_ranks: usize) -> Vec<Diagnostic> {
    let store = TraceStore::build(recs, SiteTable::new(), n_ranks);
    lint_trace(&store, &LintConfig::default())
}

fn lint_src(src: &str, nprocs: usize) -> Vec<Diagnostic> {
    let parsed = script::parse(src).expect("fixture script parses");
    lint_script(&parsed, nprocs, "fixture.script", &LintConfig::default())
}

// ------------------------------------------------------- trace front end

#[test]
fn tdl001_unreceived_send() {
    let recs = vec![TraceRecord::basic(0u32, EventKind::Send, 1, 0)
        .with_span(0, 2)
        .with_msg(msg(0, 1, 5, 0))];
    let diags = lint(recs, 2);
    let d = find(&diags, "TDL001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rank, Some(0));
    assert!(d.message.contains("tag 5"));
}

#[test]
fn tdl002_blocked_receive() {
    let recs = vec![TraceRecord::basic(0u32, EventKind::RecvPost, 1, 0).with_args(1, 5)];
    let diags = lint(recs, 2);
    let d = find(&diags, "TDL002");
    assert_eq!(d.rank, Some(0));
    assert!(d.message.contains("never completed"));
}

#[test]
fn tdl003_impossible_receive_tag_mismatch() {
    // Rank 1 sends tag 6; rank 0 waits forever for tag 5 from rank 1.
    let recs = vec![
        TraceRecord::basic(1u32, EventKind::Send, 1, 0)
            .with_span(0, 2)
            .with_msg(msg(1, 0, 6, 0)),
        TraceRecord::basic(0u32, EventKind::RecvPost, 1, 3).with_args(1, 5),
    ];
    let diags = lint(recs, 2);
    let d = find(&diags, "TDL003");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("tag 5"));
    assert!(d.suggestion.as_deref().unwrap().contains("tag 6"));
}

#[test]
fn tdl004_collective_kind_mismatch() {
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::Collective(CollKind::Barrier), 1, 0),
        TraceRecord::basic(1u32, EventKind::Collective(CollKind::Bcast), 1, 0),
    ];
    let diags = lint(recs, 2);
    let d = find(&diags, "TDL004");
    assert!(d.message.contains("different operations"));
}

#[test]
fn tdl004_collective_count_mismatch() {
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::Collective(CollKind::Barrier), 1, 0),
        TraceRecord::basic(1u32, EventKind::Collective(CollKind::Barrier), 1, 0),
        TraceRecord::basic(0u32, EventKind::Collective(CollKind::Barrier), 2, 5),
    ];
    let diags = lint(recs, 2);
    let d = find(&diags, "TDL004");
    assert!(d.message.contains("never entered"));
}

#[test]
fn tdl005_wildcard_race() {
    // Two senders race to a wildcard receive on P0; the loser is drained
    // by a second wildcard so nothing is left unmatched.
    let recs = vec![
        TraceRecord::basic(1u32, EventKind::Send, 1, 0)
            .with_span(0, 2)
            .with_msg(msg(1, 0, 5, 0)),
        TraceRecord::basic(2u32, EventKind::Send, 1, 1)
            .with_span(1, 3)
            .with_msg(msg(2, 0, 5, 0)),
        TraceRecord::basic(0u32, EventKind::RecvPost, 1, 4).with_args(-1, 5),
        TraceRecord::basic(0u32, EventKind::RecvDone, 2, 4)
            .with_span(4, 10)
            .with_msg(msg(1, 0, 5, 0)),
        TraceRecord::basic(0u32, EventKind::RecvPost, 3, 10).with_args(-1, 5),
        TraceRecord::basic(0u32, EventKind::RecvDone, 4, 10)
            .with_span(10, 12)
            .with_msg(msg(2, 0, 5, 0)),
    ];
    let diags = lint(recs, 3);
    let d = find(&diags, "TDL005");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("nondeterministic"));
    assert!(!has(&diags, "TDL001"), "both messages were received");
}

#[test]
fn tdl006_wait_cycle() {
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::RecvPost, 1, 0).with_args(1, -1),
        TraceRecord::basic(1u32, EventKind::RecvPost, 1, 0).with_args(0, -1),
    ];
    let diags = lint(recs, 2);
    let d = find(&diags, "TDL006");
    assert!(d.message.contains("circular wait"));
    // The blocked posts themselves are also reported individually.
    assert!(has(&diags, "TDL002"));
}

#[test]
fn tdl007_event_after_end() {
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::ProcStart, 1, 0),
        TraceRecord::basic(0u32, EventKind::ProcEnd, 2, 5),
        TraceRecord::basic(0u32, EventKind::Probe, 3, 6),
    ];
    let diags = lint(recs, 1);
    let d = find(&diags, "TDL007");
    assert!(d.message.contains("probe after finalize"));
}

#[test]
fn clean_trace_has_no_diagnostics() {
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::ProcStart, 1, 0),
        TraceRecord::basic(1u32, EventKind::ProcStart, 1, 0),
        TraceRecord::basic(0u32, EventKind::Send, 2, 1)
            .with_span(1, 2)
            .with_msg(msg(0, 1, 5, 0)),
        TraceRecord::basic(1u32, EventKind::RecvPost, 2, 1).with_args(0, 5),
        TraceRecord::basic(1u32, EventKind::RecvDone, 3, 2)
            .with_span(2, 3)
            .with_msg(msg(0, 1, 5, 0)),
        TraceRecord::basic(0u32, EventKind::ProcEnd, 3, 4),
        TraceRecord::basic(1u32, EventKind::ProcEnd, 4, 4),
    ];
    assert!(lint(recs, 2).is_empty());
}

// ------------------------------------------------------ script front end

#[test]
fn sdl101_undefined_call() {
    let diags = lint_src("fn main\n  call helper\nend\n", 2);
    let d = find(&diags, "SDL101");
    assert!(d.message.contains("`helper`"));
    assert_eq!(d.loc.as_ref().unwrap().line, 2);
}

#[test]
fn sdl102_rank_out_of_bounds() {
    let diags = lint_src(
        "fn main\n  send nprocs tag 1 rank\n  recv from 0 tag 1 into x\nend\n",
        4,
    );
    let d = find(&diags, "SDL102");
    assert!(d.message.contains("rank 4"));
    assert!(d.message.contains("0..4"));
}

#[test]
fn sdl103_guaranteed_deadlock() {
    // Every rank receives from its left neighbour before sending: the
    // classic head-to-head cycle with no send in flight.
    let src = "\
fn main
  recv from ( ( rank + 1 ) % nprocs ) tag 1 into x
  send ( ( rank + 1 ) % nprocs ) tag 1 rank
end
";
    let diags = lint_src(src, 3);
    let d = find(&diags, "SDL103");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("guaranteed deadlock"));
}

#[test]
fn sdl103_not_reported_for_buffered_ring() {
    // Send first, then receive: buffered sends make this complete.
    let src = "\
fn main
  send ( ( rank + 1 ) % nprocs ) tag 1 rank
  recv from ( ( rank + nprocs - 1 ) % nprocs ) tag 1 into x
end
";
    let diags = lint_src(src, 3);
    assert!(!has(&diags, "SDL103"), "buffered ring completes: {diags:?}");
}

#[test]
fn sdl103_not_reported_when_wildcards_present() {
    // A wildcard receive makes the schedule nondeterministic; the rule
    // must stay silent rather than guess.
    let src = "\
fn main
  recv from any tag 1 into x
end
";
    let diags = lint_src(src, 2);
    assert!(!has(&diags, "SDL103"));
}

#[test]
fn sdl104_tag_typo() {
    let src = "\
fn main
  if rank == 0
    send 1 tag 10 rank
  else
    recv from 0 tag 11 into x
  end
end
";
    let diags = lint_src(src, 2);
    // Both sides of the asymmetry are reported: the orphan send (tag 10)
    // and the orphan receive (tag 11), each suggesting the other's tag.
    let sdl104: Vec<_> = diags.iter().filter(|d| d.rule.0 == "SDL104").collect();
    assert_eq!(sdl104.len(), 2, "{diags:?}");
    assert!(sdl104
        .iter()
        .any(|d| d.message.contains("tag 11") && d.suggestion.as_deref().unwrap().contains("10")));
}

#[test]
fn sdl104_silent_when_any_tag_recv_absorbs() {
    let src = "\
fn main
  if rank == 0
    send 1 tag 10 rank
  else
    recv from 0 into x
  end
end
";
    let diags = lint_src(src, 2);
    assert!(!has(&diags, "SDL104"), "any-tag receive absorbs: {diags:?}");
}

#[test]
fn sdl105_self_message() {
    let diags = lint_src(
        "fn main\n  send rank tag 1 rank\n  recv from any tag 1 into x\nend\n",
        2,
    );
    let d = find(&diags, "SDL105");
    assert!(d.message.contains("itself"));
}

#[test]
fn sdl106_missing_main() {
    // `script::parse` refuses a source without `fn main`, so this guards
    // programmatically-built scripts (and future parser relaxations).
    let empty = script::Script {
        functions: Default::default(),
    };
    let diags = lint_script(&empty, 2, "empty.script", &LintConfig::default());
    let d = find(&diags, "SDL106");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn clean_script_has_no_errors() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scripts/pingpong.script"
    ))
    .expect("pingpong example script exists");
    for nprocs in [2, 4, 7] {
        let diags = lint_src(&src, nprocs);
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(errors.is_empty(), "pingpong at {nprocs} procs: {errors:?}");
        // Pingpong's reply collection uses a deliberate wildcard receive;
        // with >= 2 workers SDL109 correctly flags the arrival race, and
        // nothing else should fire.
        for d in &diags {
            assert_eq!(d.rule.as_str(), "SDL109", "unexpected: {d:?}");
        }
        let want_racy = nprocs > 2;
        assert_eq!(
            diags.iter().any(|d| d.rule.as_str() == "SDL109"),
            want_racy,
            "SDL109 at {nprocs} procs"
        );
    }
}

// ---------------------------------------------------------- configuration

#[test]
fn config_disable_suppresses_rule() {
    let src = "fn main\n  call helper\nend\n";
    let parsed = script::parse(src).unwrap();
    let cfg = LintConfig::from_spec("-SDL101");
    let diags = lint_script(&parsed, 2, "f.script", &cfg);
    assert!(!has(&diags, "SDL101"));
}

#[test]
fn config_only_restricts_to_listed_rules() {
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::RecvPost, 1, 0).with_args(1, -1),
        TraceRecord::basic(1u32, EventKind::RecvPost, 1, 0).with_args(0, -1),
    ];
    let store = TraceStore::build(recs, SiteTable::new(), 2);
    let cfg = LintConfig::from_spec("TDL006");
    let diags = lint_trace(&store, &cfg);
    assert!(has(&diags, "TDL006"));
    assert!(
        !has(&diags, "TDL002"),
        "TDL002 not in allow-list: {diags:?}"
    );
}

// ------------------------------------------- static-analysis rules (SDL107+)

#[test]
fn sdl107_static_deadlock_through_wildcards() {
    // Every rank begins with a wildcard receive; the only sends come
    // after. SDL103's exact simulator must bail (wildcards), but the
    // may-match wait-for fixpoint proves the whole set blocked.
    let src = "\
fn main
  recv from any tag 1 into x
  send ( ( rank + 1 ) % nprocs ) tag 1 rank
end
";
    let diags = lint_src(src, 3);
    let d = find(&diags, "SDL107");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("static deadlock"));
    assert!(!has(&diags, "SDL103"), "the simulator bails on wildcards");
}

#[test]
fn sdl107_silent_when_a_rank_sends_first() {
    // Ring with a kick-off: rank 0 sends before receiving, so the
    // wait-for set never closes.
    let src = "\
fn main
  let nxt = ( rank + 1 ) % nprocs
  let prv = ( rank + nprocs - 1 ) % nprocs
  if rank == 0
    send nxt tag 1 rank
    recv from prv tag 1 into x
  else
    recv from prv tag 1 into x
    send nxt tag 1 rank
  end
end
";
    for nprocs in [2, 3, 5] {
        let diags = lint_src(src, nprocs);
        assert!(!has(&diags, "SDL107"), "ring at {nprocs}: {diags:?}");
        assert!(!has(&diags, "SDL108"), "every site pairs: {diags:?}");
    }
}

#[test]
fn sdl108_unmatched_send_site() {
    let src = "\
fn main
  if rank == 0
    send 1 tag 1 rank
    send 1 tag 9 rank
  end
  if rank == 1
    recv from 0 tag 1 into x
  end
end
";
    let diags = lint_src(src, 2);
    let sdl108: Vec<_> = diags.iter().filter(|d| d.rule.0 == "SDL108").collect();
    assert_eq!(
        sdl108.len(),
        1,
        "only the tag-9 send is orphaned: {diags:?}"
    );
    assert_eq!(sdl108[0].severity, Severity::Warning);
    assert!(sdl108[0].message.contains("never be received"));
    assert_eq!(sdl108[0].loc.as_ref().unwrap().line, 4);
}

#[test]
fn sdl108_unmatched_recv_site() {
    let src = "\
fn main
  if rank == 0
    send 1 tag 1 rank
  end
  if rank == 1
    recv from 0 tag 1 into x
    recv from 0 tag 2 into y
  end
end
";
    let diags = lint_src(src, 2);
    let d = find(&diags, "SDL108");
    assert!(d.message.contains("never be satisfied"));
    assert_eq!(d.loc.as_ref().unwrap().line, 7);
}

#[test]
fn sdl109_racing_wildcard_needs_two_senders() {
    let src = "\
fn main
  if rank == 0
    recv from any tag 1 into x
  else
    send 0 tag 1 rank
  end
end
";
    // One worker: a single possible sender, nothing races.
    assert!(!has(&lint_src(src, 2), "SDL109"));
    // Two workers: the arrival order is schedule-dependent.
    let diags = lint_src(src, 3);
    let d = find(&diags, "SDL109");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("rank(s) 1, 2"));
}

#[test]
fn tdl008_match_outside_may_match() {
    use tracedbg_lint::lint_trace_with_script;
    // The trace says rank 0's line-3 send matched rank 1's line-6 recv —
    // but the analyzed script routes that send to rank 2. Divergence.
    let src = "\
fn main
  if rank == 0
    send 2 tag 5 rank
  end
  if rank == 1
    recv from 0 tag 5 into x
  end
  if rank == 2
    recv from 0 tag 5 into y
  end
end
";
    let parsed = script::parse(src).unwrap();
    let sites = SiteTable::new();
    let s_send = sites.site("fixture.script", 3, "main");
    let s_recv = sites.site("fixture.script", 6, "main");
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::Send, 1, 0)
            .with_span(0, 1)
            .with_msg(msg(0, 1, 5, 0))
            .with_site(s_send),
        TraceRecord::basic(1u32, EventKind::RecvPost, 1, 1)
            .with_args(0, 5)
            .with_site(s_recv),
        TraceRecord::basic(1u32, EventKind::RecvDone, 2, 2)
            .with_span(2, 3)
            .with_msg(msg(0, 1, 5, 0))
            .with_site(s_recv),
    ];
    let store = TraceStore::build(recs, sites, 3);
    let diags =
        lint_trace_with_script(&store, &parsed, 3, "fixture.script", &LintConfig::default());
    let d = find(&diags, "TDL008");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("outside the static may-match relation"));
    assert_eq!(d.events, vec![0, 2]);
}

#[test]
fn tdl008_silent_when_trace_agrees() {
    use tracedbg_lint::lint_trace_with_script;
    let src = "\
fn main
  if rank == 0
    send 1 tag 5 rank
  end
  if rank == 1
    recv from 0 tag 5 into x
  end
end
";
    let parsed = script::parse(src).unwrap();
    let sites = SiteTable::new();
    let s_send = sites.site("fixture.script", 3, "main");
    let s_recv = sites.site("fixture.script", 6, "main");
    let recs = vec![
        TraceRecord::basic(0u32, EventKind::Send, 1, 0)
            .with_span(0, 1)
            .with_msg(msg(0, 1, 5, 0))
            .with_site(s_send),
        TraceRecord::basic(1u32, EventKind::RecvPost, 1, 1)
            .with_args(0, 5)
            .with_site(s_recv),
        TraceRecord::basic(1u32, EventKind::RecvDone, 2, 2)
            .with_span(2, 3)
            .with_msg(msg(0, 1, 5, 0))
            .with_site(s_recv),
    ];
    let store = TraceStore::build(recs, sites, 2);
    let diags =
        lint_trace_with_script(&store, &parsed, 2, "fixture.script", &LintConfig::default());
    assert!(!has(&diags, "TDL008"), "{diags:?}");
    // Plain lint_trace has no analysis, so TDL008 never fires either.
    assert!(!has(&lint(Vec::new(), 2), "TDL008"));
}

#[test]
fn catalog_lists_new_rules_with_docs_urls() {
    let catalog = tracedbg_lint::rule_catalog();
    for id in ["SDL107", "SDL108", "SDL109", "TDL008"] {
        let info = catalog
            .iter()
            .find(|r| r.id.as_str() == id)
            .unwrap_or_else(|| panic!("{id} missing from catalog"));
        assert!(!info.description.is_empty());
        assert_eq!(
            info.id.docs_url(),
            format!("https://tracedbg.dev/rules/{id}")
        );
    }
    // IDs are unique and sorted — stable for `--rules` listings.
    let ids: Vec<&str> = catalog.iter().map(|r| r.id.as_str()).collect();
    let mut sorted = ids.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(ids, sorted);
}

#[test]
fn json_report_carries_docs_url() {
    let src = "fn main\n  call helper\nend\n";
    let parsed = script::parse(src).unwrap();
    let diags = lint_script(&parsed, 2, "f.script", &LintConfig::default());
    let json = tracedbg_lint::report::render_json(&diags);
    assert!(json.contains("https://tracedbg.dev/rules/SDL101"), "{json}");
}

#[test]
fn diagnostics_sort_errors_first() {
    // TDL003 (warning) and TDL002 (error) both fire here.
    let recs = vec![
        TraceRecord::basic(1u32, EventKind::Send, 1, 0)
            .with_span(0, 2)
            .with_msg(msg(1, 0, 6, 0)),
        TraceRecord::basic(0u32, EventKind::RecvPost, 1, 3).with_args(1, 5),
    ];
    let diags = lint(recs, 2);
    assert!(diags.len() >= 2);
    for pair in diags.windows(2) {
        assert!(pair[0].severity <= pair[1].severity);
    }
}
