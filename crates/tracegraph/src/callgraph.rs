//! Dynamic call graphs — the per-process projection of the trace graph.
//!
//! "Projection of the trace graph onto a particular process (that is
//! removing all nodes belonging to other processes and channels and their
//! incident arcs) gives us a dynamic call graph of the process." (§3.2)
//!
//! Figure 9 renders one of these: "Multiple arcs show multiple function
//! calls. The number of calls per arc is adjustable." — the adjustable
//! grouping is [`CallGraph::arcs_grouped`].

use crate::graph::{ArcKind, NodeId, TraceGraph, TraceNode};
use tracedbg_trace::{EventId, Rank};

/// One caller→callee arc view with multiplicity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallArcView {
    pub caller: String,
    pub callee: String,
    pub calls: u64,
    /// Trace images of the first folded call.
    pub first_event: EventId,
}

/// The dynamic call graph of one process.
#[derive(Clone, Debug)]
pub struct CallGraph {
    pub rank: Rank,
    /// Function names (index = local node id).
    pub functions: Vec<String>,
    /// (caller ix, callee ix, calls, first event).
    arcs: Vec<(usize, usize, u64, EventId)>,
}

impl CallGraph {
    /// Project the trace graph onto `rank`.
    pub fn project(graph: &TraceGraph, rank: Rank) -> Self {
        let nodes = graph.function_nodes_of(rank);
        let mut functions = Vec::new();
        let mut local: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        for id in &nodes {
            if let TraceNode::Function { func, .. } = graph.node(*id) {
                local.insert(*id, functions.len());
                functions.push(func.clone());
            }
        }
        let mut arcs = Vec::new();
        for id in &nodes {
            for arc in graph.arcs_from(*id) {
                if arc.kind != ArcKind::Call {
                    continue;
                }
                if let (Some(&a), Some(&b)) = (local.get(id), local.get(&arc.to)) {
                    arcs.push((a, b, arc.multiplicity, arc.first_event));
                }
            }
        }
        CallGraph {
            rank,
            functions,
            arcs,
        }
    }

    /// All arcs at stored resolution (one view per stored arc; a graph
    /// built without dissemination yields one arc per call).
    pub fn arcs(&self) -> Vec<CallArcView> {
        self.arcs
            .iter()
            .map(|&(a, b, m, e)| CallArcView {
                caller: self.functions[a].clone(),
                callee: self.functions[b].clone(),
                calls: m,
                first_event: e,
            })
            .collect()
    }

    /// Arcs grouped so each caller→callee pair appears at most
    /// `max_arcs_per_pair` times ("the number of calls per arc is
    /// adjustable"). With 1 the graph shows one arc per pair carrying the
    /// total call count.
    pub fn arcs_grouped(&self, max_arcs_per_pair: usize) -> Vec<CallArcView> {
        assert!(max_arcs_per_pair >= 1);
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(usize, usize), Vec<(u64, EventId)>> = BTreeMap::new();
        for &(a, b, m, e) in &self.arcs {
            groups.entry((a, b)).or_default().push((m, e));
        }
        let mut out = Vec::new();
        for ((a, b), items) in groups {
            let chunk = items.len().div_ceil(max_arcs_per_pair);
            for c in items.chunks(chunk) {
                out.push(CallArcView {
                    caller: self.functions[a].clone(),
                    callee: self.functions[b].clone(),
                    calls: c.iter().map(|(m, _)| m).sum(),
                    first_event: c[0].1,
                });
            }
        }
        out
    }

    /// Total primitive calls in the graph.
    pub fn total_calls(&self) -> u64 {
        self.arcs.iter().map(|&(_, _, m, _)| m).sum()
    }

    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, SiteTable, TraceRecord, TraceStore};

    /// main calls f 3x and g 1x; f calls g 3x. Two ranks, second empty.
    fn store() -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 1, "f");
        let g = sites.site("a.c", 2, "g");
        let mut recs = Vec::new();
        let mut marker = 0u64;
        let mut push = |kind, site, recs: &mut Vec<TraceRecord>| {
            marker += 1;
            recs.push(TraceRecord::basic(0u32, kind, marker, marker * 10).with_site(site));
        };
        for _ in 0..3 {
            push(EventKind::FnEnter, f, &mut recs); // main->f
            push(EventKind::FnEnter, g, &mut recs); // f->g
            push(EventKind::FnExit, g, &mut recs);
            push(EventKind::FnExit, f, &mut recs);
        }
        push(EventKind::FnEnter, g, &mut recs); // main->g
        push(EventKind::FnExit, g, &mut recs);
        TraceStore::build(recs, sites, 2)
    }

    #[test]
    fn projection_counts_calls() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let cg = CallGraph::project(&tg, Rank(0));
        assert_eq!(cg.total_calls(), 7);
        assert_eq!(cg.n_functions(), 3); // main, f, g
        let arcs = cg.arcs();
        assert_eq!(arcs.len(), 7, "full resolution: one arc per call");
    }

    #[test]
    fn grouping_collapses_pairs() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let cg = CallGraph::project(&tg, Rank(0));
        let grouped = cg.arcs_grouped(1);
        // pairs: main->f, main->g, f->g
        assert_eq!(grouped.len(), 3);
        let mf = grouped
            .iter()
            .find(|a| a.caller == "main" && a.callee == "f")
            .unwrap();
        assert_eq!(mf.calls, 3);
        let fg = grouped
            .iter()
            .find(|a| a.caller == "f" && a.callee == "g")
            .unwrap();
        assert_eq!(fg.calls, 3);
        // group totals preserve the primitive count
        let total: u64 = grouped.iter().map(|a| a.calls).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn grouping_with_larger_budget_keeps_more_arcs() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let cg = CallGraph::project(&tg, Rank(0));
        let g2 = cg.arcs_grouped(2);
        assert!(g2.len() > cg.arcs_grouped(1).len());
        assert!(g2.len() <= cg.arcs().len());
        let total: u64 = g2.iter().map(|a| a.calls).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn empty_rank_projection() {
        let s = store();
        let tg = TraceGraph::build(&s);
        let cg = CallGraph::project(&tg, Rank(1));
        assert_eq!(cg.total_calls(), 0);
        // rank 1 had no events at all — not even a main node
        assert!(cg.n_functions() <= 1);
    }
}
