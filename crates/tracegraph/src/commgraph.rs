//! The communication graph (Figure 4).
//!
//! "Each node corresponds to one or two messages. The arcs describe
//! causality of messages."
//!
//! Nodes are matched messages; an arc joins message *a* to message *b*
//! when some process participates in *a* and then, next among its
//! communication events, participates in *b* — the immediate program-order
//! causality between messages. Chains of these arcs (plus the messages
//! themselves) generate the full happens-before relation on communication
//! events.

use crate::matching::{MatchedMessage, MessageMatching};
use std::collections::HashMap;
use tracedbg_trace::{EventId, EventKind, Rank, TraceStore};

/// Index of a node (matched message) in the communication graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CommNodeId(pub u32);

impl CommNodeId {
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// The communication graph.
pub struct CommGraph {
    messages: Vec<MatchedMessage>,
    /// Arcs (from, to), deduplicated, in discovery order.
    arcs: Vec<(CommNodeId, CommNodeId)>,
    succ: Vec<Vec<CommNodeId>>,
    pred: Vec<Vec<CommNodeId>>,
}

impl CommGraph {
    /// Build from a store and its matching.
    pub fn build(store: &TraceStore, matching: &MessageMatching) -> Self {
        let n = matching.matched.len();
        let mut by_event: HashMap<EventId, CommNodeId> = HashMap::new();
        for (i, m) in matching.matched.iter().enumerate() {
            by_event.insert(m.send, CommNodeId(i as u32));
            by_event.insert(m.recv, CommNodeId(i as u32));
        }
        let mut arcs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for r in 0..store.n_ranks() {
            let mut prev: Option<CommNodeId> = None;
            for &id in store.by_rank(Rank(r as u32)) {
                let rec = store.record(id);
                if !matches!(rec.kind, EventKind::Send | EventKind::RecvDone) {
                    continue;
                }
                let Some(&node) = by_event.get(&id) else {
                    continue; // unmatched send
                };
                if let Some(p) = prev {
                    if p != node && seen.insert((p, node)) {
                        arcs.push((p, node));
                        succ[p.ix()].push(node);
                        pred[node.ix()].push(p);
                    }
                }
                prev = Some(node);
            }
        }
        CommGraph {
            messages: matching.matched.clone(),
            arcs,
            succ,
            pred,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.messages.len()
    }

    pub fn n_arcs(&self) -> usize {
        self.arcs.len()
    }

    pub fn message(&self, id: CommNodeId) -> &MatchedMessage {
        &self.messages[id.ix()]
    }

    pub fn arcs(&self) -> &[(CommNodeId, CommNodeId)] {
        &self.arcs
    }

    pub fn successors(&self, id: CommNodeId) -> &[CommNodeId] {
        &self.succ[id.ix()]
    }

    pub fn predecessors(&self, id: CommNodeId) -> &[CommNodeId] {
        &self.pred[id.ix()]
    }

    /// Nodes with no predecessors (the initial messages).
    pub fn roots(&self) -> Vec<CommNodeId> {
        (0..self.messages.len() as u32)
            .map(CommNodeId)
            .filter(|id| self.pred[id.ix()].is_empty())
            .collect()
    }

    /// Human-readable node label: `P0->P7 tag11 #4`.
    pub fn label(&self, id: CommNodeId) -> String {
        let m = &self.messages[id.ix()].info;
        format!("P{}->P{} tag{} #{}", m.src, m.dst, m.tag, m.seq)
    }

    /// Ids in topological-friendly order (by send event id — sends are in
    /// canonical trace order, which respects causality).
    pub fn ids(&self) -> impl Iterator<Item = CommNodeId> {
        (0..self.messages.len() as u32).map(CommNodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{MsgInfo, SiteTable, Tag, TraceRecord};

    /// P0 sends to P1, P1 then sends to P2 — message 0 causes message 1.
    fn chain_store() -> TraceStore {
        let m01 = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let m12 = MsgInfo {
            src: Rank(1),
            dst: Rank(2),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0)
                .with_span(0, 1)
                .with_msg(m01),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 2)
                .with_span(2, 3)
                .with_msg(m01),
            TraceRecord::basic(1u32, EventKind::Send, 2, 4)
                .with_span(4, 5)
                .with_msg(m12),
            TraceRecord::basic(2u32, EventKind::RecvDone, 1, 6)
                .with_span(6, 7)
                .with_msg(m12),
        ];
        TraceStore::build(recs, SiteTable::new(), 3)
    }

    #[test]
    fn chain_produces_one_arc() {
        let store = chain_store();
        let mm = MessageMatching::build(&store);
        let g = CommGraph::build(&store, &mm);
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.n_arcs(), 1);
        let (a, b) = g.arcs()[0];
        assert_eq!(g.message(a).info.dst, Rank(1));
        assert_eq!(g.message(b).info.src, Rank(1));
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.predecessors(b), &[a]);
    }

    #[test]
    fn label_format() {
        let store = chain_store();
        let mm = MessageMatching::build(&store);
        let g = CommGraph::build(&store, &mm);
        let labels: Vec<String> = g.ids().map(|i| g.label(i)).collect();
        assert!(labels.contains(&"P0->P1 tag1 #0".to_string()), "{labels:?}");
    }

    #[test]
    fn independent_messages_have_no_arcs() {
        let m01 = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let m23 = MsgInfo {
            src: Rank(2),
            dst: Rank(3),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0).with_msg(m01),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 2).with_msg(m01),
            TraceRecord::basic(2u32, EventKind::Send, 1, 0).with_msg(m23),
            TraceRecord::basic(3u32, EventKind::RecvDone, 1, 2).with_msg(m23),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 4);
        let mm = MessageMatching::build(&store);
        let g = CommGraph::build(&store, &mm);
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.n_arcs(), 0);
        assert_eq!(g.roots().len(), 2);
    }
}
