//! Intertwined message detection (§4.4).
//!
//! "At this point, information about intertwined messages is also
//! available to the user." — the MPI standard's discussion of order
//! ([13, p.31]) allows messages on the same channel with *different* tags
//! to be received out of send order (tag-selective receives skip over
//! earlier messages). Such inversions are legal but often surprising, so
//! the debugger surfaces them.

use crate::matching::MessageMatching;
use tracedbg_trace::{EventId, Rank, TraceStore};

/// Two messages on one channel received in the opposite of send order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Intertwining {
    pub src: Rank,
    pub dst: Rank,
    /// The earlier-sent message (received later).
    pub first_sent: EventId,
    /// The later-sent message (received earlier).
    pub overtaker: EventId,
}

/// Find all intertwined pairs: same (src, dst), send order and receive
/// order inverted. With the runtime's non-overtaking matching this can
/// only happen across different tags.
pub fn find_intertwined(store: &TraceStore, matching: &MessageMatching) -> Vec<Intertwining> {
    use std::collections::HashMap;
    /// (send seq, recv completion marker, send event) per channel.
    type ChannelMsgs = Vec<(u64, u64, EventId)>;
    let mut per_channel: HashMap<(Rank, Rank), ChannelMsgs> = HashMap::new();
    for m in &matching.matched {
        let recv_marker = store.record(m.recv).marker;
        per_channel
            .entry((m.info.src, m.info.dst))
            .or_default()
            .push((m.info.seq, recv_marker, m.send));
    }
    let mut out = Vec::new();
    for ((src, dst), mut msgs) in per_channel {
        msgs.sort_by_key(|(seq, _, _)| *seq);
        for i in 0..msgs.len() {
            for j in i + 1..msgs.len() {
                // j was sent after i; intertwined if received before i.
                if msgs[j].1 < msgs[i].1 {
                    out.push(Intertwining {
                        src,
                        dst,
                        first_sent: msgs[i].2,
                        overtaker: msgs[j].2,
                    });
                }
            }
        }
    }
    out.sort_by_key(|i| (i.src, i.dst, i.first_sent));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{EventKind, MsgInfo, SiteTable, Tag, TraceRecord};

    fn msg(tag: i32, seq: u64) -> MsgInfo {
        MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(tag),
            bytes: 8,
            seq,
        }
    }

    #[test]
    fn tag_selective_receive_intertwines() {
        // P0 sends tag 5 (seq 0) then tag 6 (seq 1); P1 receives tag 6
        // first.
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0)
                .with_span(0, 1)
                .with_msg(msg(5, 0)),
            TraceRecord::basic(0u32, EventKind::Send, 2, 1)
                .with_span(1, 2)
                .with_msg(msg(6, 1)),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 3)
                .with_span(3, 4)
                .with_msg(msg(6, 1)),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 4)
                .with_span(4, 5)
                .with_msg(msg(5, 0)),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        let tw = find_intertwined(&store, &mm);
        assert_eq!(tw.len(), 1);
        assert_eq!(tw[0].src, Rank(0));
        assert_eq!(store.record(tw[0].overtaker).msg.unwrap().tag, Tag(6));
    }

    #[test]
    fn in_order_channel_is_clean() {
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0).with_msg(msg(5, 0)),
            TraceRecord::basic(0u32, EventKind::Send, 2, 1).with_msg(msg(5, 1)),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 3).with_msg(msg(5, 0)),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 4).with_msg(msg(5, 1)),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        assert!(find_intertwined(&store, &mm).is_empty());
    }

    #[test]
    fn separate_channels_do_not_interfere() {
        let m01 = msg(5, 0);
        let m21 = MsgInfo {
            src: Rank(2),
            dst: Rank(1),
            tag: Tag(5),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0).with_msg(m01),
            TraceRecord::basic(2u32, EventKind::Send, 1, 1).with_msg(m21),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 3).with_msg(m21),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 4).with_msg(m01),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 3);
        let mm = MessageMatching::build(&store);
        assert!(find_intertwined(&store, &mm).is_empty());
    }
}
