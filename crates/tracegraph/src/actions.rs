//! The action graph (§4.4).
//!
//! "The first level of analysis is done at the level of the call graph.
//! For every function, the calls made while the function is active are
//! classified into actions and the call graph is transformed into an
//! actions graph. The action graph represents history with less resolution
//! than the time-space diagram and makes it more understandable."
//!
//! For each function (per process) we classify the events executed while
//! the function is the innermost active frame into [`ActionKind`]s and
//! fold consecutive repetitions of the same action into one action with a
//! count — e.g. `MatrSend`'s body becomes `send ×14` instead of fourteen
//! separate arcs.

use std::collections::BTreeMap;
use std::fmt;
use tracedbg_trace::{EventKind, Rank, TraceStore};

/// What a function instance did, at action resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ActionKind {
    /// Called another function.
    Call(String),
    /// Sent a message to a rank.
    SendTo(Rank),
    /// Received a message from a rank.
    RecvFrom(Rank),
    /// Local computation.
    Compute,
    /// Entered a collective.
    Collective,
    /// Recorded a probe.
    Probe,
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Call(name) => write!(f, "call {name}"),
            ActionKind::SendTo(r) => write!(f, "send->{r:?}"),
            ActionKind::RecvFrom(r) => write!(f, "recv<-{r:?}"),
            ActionKind::Compute => write!(f, "compute"),
            ActionKind::Collective => write!(f, "collective"),
            ActionKind::Probe => write!(f, "probe"),
        }
    }
}

/// A folded run of identical actions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Action {
    pub kind: ActionKind,
    pub count: u64,
}

/// Actions per (rank, function).
pub struct ActionGraph {
    /// Key: (rank, function name) → folded action sequence.
    actions: BTreeMap<(u32, String), Vec<Action>>,
}

impl ActionGraph {
    /// Build the action classification for a whole trace.
    pub fn build(store: &TraceStore) -> Self {
        let mut actions: BTreeMap<(u32, String), Vec<Action>> = BTreeMap::new();
        for r in 0..store.n_ranks() {
            let rank = Rank(r as u32);
            let mut stack: Vec<String> = vec!["main".into()];
            for &id in store.by_rank(rank) {
                let rec = store.record(id);
                let current = stack.last().unwrap().clone();
                let kind = match rec.kind {
                    EventKind::FnEnter => {
                        let callee = store.sites().func_name(rec.site);
                        let k = ActionKind::Call(callee.clone());
                        Self::push(&mut actions, rank, &current, k);
                        stack.push(callee);
                        continue;
                    }
                    EventKind::FnExit => {
                        if stack.len() > 1 {
                            stack.pop();
                        }
                        continue;
                    }
                    EventKind::Send => rec.msg.map(|m| ActionKind::SendTo(m.dst)),
                    EventKind::RecvDone => rec.msg.map(|m| ActionKind::RecvFrom(m.src)),
                    EventKind::Compute => Some(ActionKind::Compute),
                    EventKind::Collective(_) => Some(ActionKind::Collective),
                    EventKind::Probe => Some(ActionKind::Probe),
                    _ => None,
                };
                if let Some(k) = kind {
                    Self::push(&mut actions, rank, &current, k);
                }
            }
        }
        ActionGraph { actions }
    }

    fn push(
        actions: &mut BTreeMap<(u32, String), Vec<Action>>,
        rank: Rank,
        func: &str,
        kind: ActionKind,
    ) {
        let seq = actions.entry((rank.0, func.to_string())).or_default();
        if let Some(last) = seq.last_mut() {
            if last.kind == kind {
                last.count += 1;
                return;
            }
        }
        seq.push(Action { kind, count: 1 });
    }

    /// Action sequence of a function on a rank.
    pub fn of(&self, rank: Rank, func: &str) -> &[Action] {
        self.actions
            .get(&(rank.0, func.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All (rank, function) keys in display order.
    pub fn keys(&self) -> Vec<(Rank, String)> {
        self.actions
            .keys()
            .map(|(r, f)| (Rank(*r), f.clone()))
            .collect()
    }

    /// Render the whole action graph as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((r, f), seq) in &self.actions {
            out.push_str(&format!("P{r} {f}:\n"));
            for a in seq {
                if a.count > 1 {
                    out.push_str(&format!("  {} x{}\n", a.kind, a.count));
                } else {
                    out.push_str(&format!("  {}\n", a.kind));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{MsgInfo, SiteTable, Tag, TraceRecord};

    fn store() -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 1, "distribute");
        let mut recs = Vec::new();
        let mut marker = 0u64;
        let mut push = |rec: TraceRecord, recs: &mut Vec<TraceRecord>| {
            marker += 1;
            let mut r = rec;
            r.marker = marker;
            r.t_start = marker * 10;
            r.t_end = marker * 10 + 1;
            recs.push(r);
        };
        push(
            TraceRecord::basic(0u32, EventKind::FnEnter, 0, 0).with_site(f),
            &mut recs,
        );
        for d in 1..=3u32 {
            for _ in 0..2 {
                push(
                    TraceRecord::basic(0u32, EventKind::Send, 0, 0).with_msg(MsgInfo {
                        src: Rank(0),
                        dst: Rank(d),
                        tag: Tag(1),
                        bytes: 8,
                        seq: 0,
                    }),
                    &mut recs,
                );
            }
        }
        push(
            TraceRecord::basic(0u32, EventKind::Compute, 0, 0),
            &mut recs,
        );
        push(
            TraceRecord::basic(0u32, EventKind::FnExit, 0, 0).with_site(f),
            &mut recs,
        );
        TraceStore::build(recs, sites, 4)
    }

    #[test]
    fn consecutive_sends_fold() {
        let s = store();
        let ag = ActionGraph::build(&s);
        let acts = ag.of(Rank(0), "distribute");
        // 2 sends to each of P1..P3 fold pairwise, then compute
        assert_eq!(acts.len(), 4, "{acts:?}");
        assert_eq!(
            acts[0],
            Action {
                kind: ActionKind::SendTo(Rank(1)),
                count: 2
            }
        );
        assert_eq!(acts[3].kind, ActionKind::Compute);
    }

    #[test]
    fn main_records_the_call() {
        let s = store();
        let ag = ActionGraph::build(&s);
        let acts = ag.of(Rank(0), "main");
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].kind, ActionKind::Call("distribute".into()));
    }

    #[test]
    fn render_contains_counts() {
        let s = store();
        let ag = ActionGraph::build(&s);
        let txt = ag.render();
        assert!(txt.contains("send->P1 x2"), "{txt}");
        assert!(txt.contains("P0 distribute:"), "{txt}");
    }

    #[test]
    fn unknown_function_is_empty() {
        let s = store();
        let ag = ActionGraph::build(&s);
        assert!(ag.of(Rank(0), "nope").is_empty());
        assert!(ag.of(Rank(2), "distribute").is_empty());
    }

    #[test]
    fn keys_are_sorted() {
        let s = store();
        let ag = ActionGraph::build(&s);
        let keys = ag.keys();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].1, "distribute");
    }
}
