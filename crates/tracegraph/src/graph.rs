//! The trace graph (§3.2) with the dissemination size bound (§4.3).
//!
//! Vertices: one node per (process, function) plus one node per channel
//! (unordered pair of processes). Arcs: a call arc per function call and a
//! message arc per send/receive, each tied back to its trace event ("each
//! arc has an image in the execution trace").
//!
//! "The number of nodes of the trace graph is bounded by the number of
//! program functions times the number of processors plus the square of the
//! number of processors." The arc count, however, grows with execution
//! length, so §4.3 bounds it with *dissemination*: "if the number of arcs
//! incident to a node exceeds a limit, we merge every other arc with the
//! previous one. ... If the user wants to zoom in on a particular event,
//! the required arcs are reconstructed by rescanning the appropriate
//! portion of the trace file." — see [`TraceGraph::expand_node`].

use std::collections::HashMap;
use tracedbg_trace::{ChannelId, EventId, EventKind, Rank, TraceStore};

/// Index of a node in the trace graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

/// A trace graph vertex.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TraceNode {
    /// A function executing on one process.
    Function { rank: Rank, func: String },
    /// A communication channel between two processes.
    Channel(ChannelId),
}

impl TraceNode {
    pub fn label(&self) -> String {
        match self {
            TraceNode::Function { rank, func } => format!("{func}@{rank}"),
            TraceNode::Channel(c) => format!("ch({},{})", c.lo, c.hi),
        }
    }
}

/// Arc classification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArcKind {
    /// Caller function → callee function (same rank).
    Call,
    /// Sending function → channel.
    MsgSend,
    /// Channel → receiving function.
    MsgRecv,
}

/// One (possibly merged) arc.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceArc {
    pub from: NodeId,
    pub to: NodeId,
    pub kind: ArcKind,
    /// How many primitive arcs this arc stands for (>1 after merging).
    pub multiplicity: u64,
    /// Trace image: the first and last primitive event folded in.
    pub first_event: EventId,
    pub last_event: EventId,
}

/// The trace graph.
pub struct TraceGraph {
    nodes: Vec<TraceNode>,
    index: HashMap<TraceNode, NodeId>,
    /// Outgoing arcs per node.
    out: Vec<Vec<TraceArc>>,
    /// Dissemination limit (max outgoing arcs kept per node); `None` = keep
    /// everything.
    limit: Option<usize>,
    /// Count of primitive arcs folded away by dissemination.
    merged_away: u64,
}

impl TraceGraph {
    /// Build the full-resolution trace graph.
    pub fn build(store: &TraceStore) -> Self {
        Self::build_with_limit(store, None)
    }

    /// Build with a dissemination limit on per-node outgoing arcs.
    pub fn build_with_limit(store: &TraceStore, limit: Option<usize>) -> Self {
        let mut g = TraceGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            out: Vec::new(),
            limit,
            merged_away: 0,
        };
        for r in 0..store.n_ranks() {
            let rank = Rank(r as u32);
            let root = g.intern(TraceNode::Function {
                rank,
                func: "main".into(),
            });
            let mut stack: Vec<NodeId> = vec![root];
            for &id in store.by_rank(rank) {
                let rec = store.record(id);
                match rec.kind {
                    EventKind::FnEnter => {
                        let func = store.sites().func_name(rec.site);
                        let node = g.intern(TraceNode::Function { rank, func });
                        let top = *stack.last().unwrap();
                        g.add_arc(top, node, ArcKind::Call, id);
                        stack.push(node);
                    }
                    EventKind::FnExit if stack.len() > 1 => {
                        stack.pop();
                    }
                    EventKind::Send => {
                        let m = rec.msg.expect("send without msg");
                        let ch = g.intern(TraceNode::Channel(ChannelId::between(m.src, m.dst)));
                        let top = *stack.last().unwrap();
                        g.add_arc(top, ch, ArcKind::MsgSend, id);
                    }
                    EventKind::RecvDone => {
                        let m = rec.msg.expect("recv without msg");
                        let ch = g.intern(TraceNode::Channel(ChannelId::between(m.src, m.dst)));
                        let top = *stack.last().unwrap();
                        g.add_arc(ch, top, ArcKind::MsgRecv, id);
                    }
                    _ => {}
                }
            }
        }
        g
    }

    fn intern(&mut self, node: TraceNode) -> NodeId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        self.out.push(Vec::new());
        id
    }

    fn add_arc(&mut self, from: NodeId, to: NodeId, kind: ArcKind, event: EventId) {
        self.out[from.ix()].push(TraceArc {
            from,
            to,
            kind,
            multiplicity: 1,
            first_event: event,
            last_event: event,
        });
        if let Some(limit) = self.limit {
            if self.out[from.ix()].len() > limit {
                self.disseminate(from);
            }
        }
    }

    /// Merge every other arc with the previous one when the two agree on
    /// (to, kind) — the homogeneous-burst case the technique targets.
    fn disseminate(&mut self, node: NodeId) {
        let arcs = std::mem::take(&mut self.out[node.ix()]);
        let mut merged: Vec<TraceArc> = Vec::with_capacity(arcs.len() / 2 + 1);
        let mut it = arcs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) if b.to == a.to && b.kind == a.kind => {
                    self.merged_away += 1;
                    merged.push(TraceArc {
                        multiplicity: a.multiplicity + b.multiplicity,
                        last_event: b.last_event,
                        ..a
                    });
                }
                Some(b) => {
                    merged.push(a);
                    merged.push(b);
                }
                None => merged.push(a),
            }
        }
        self.out[node.ix()] = merged;
    }

    /// Rebuild a node's outgoing arcs at full resolution by rescanning the
    /// trace (the zoom-in path of §4.3).
    pub fn expand_node(&self, store: &TraceStore, node: NodeId) -> Vec<TraceArc> {
        let full = TraceGraph::build(store);
        match full.find(&self.nodes[node.ix()]) {
            Some(n) => full.out[n.ix()].clone(),
            None => Vec::new(),
        }
    }

    pub fn find(&self, node: &TraceNode) -> Option<NodeId> {
        self.index.get(node).copied()
    }

    pub fn node(&self, id: NodeId) -> &TraceNode {
        &self.nodes[id.ix()]
    }

    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn arcs_from(&self, id: NodeId) -> &[TraceArc] {
        &self.out[id.ix()]
    }

    /// Total arcs currently stored.
    pub fn n_arcs(&self) -> usize {
        self.out.iter().map(|v| v.len()).sum()
    }

    /// Total primitive arcs represented (stored arcs weighted by
    /// multiplicity).
    pub fn n_primitive_arcs(&self) -> u64 {
        self.out.iter().flatten().map(|a| a.multiplicity).sum()
    }

    /// Primitive arcs folded away by dissemination so far.
    pub fn merged_away(&self) -> u64 {
        self.merged_away
    }

    /// All arcs, for exporters.
    pub fn all_arcs(&self) -> impl Iterator<Item = &TraceArc> {
        self.out.iter().flatten()
    }

    /// Function nodes of one rank (projection support).
    pub fn function_nodes_of(&self, rank: Rank) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, TraceNode::Function { rank: r, .. } if *r == rank))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{MsgInfo, SiteTable, Tag, TraceRecord};

    /// One rank calling f twice from main, sending once from f.
    fn sample_store() -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 10, "f");
        let mut recs = Vec::new();
        let mut marker = 0;
        let mut t = 0;
        let mut push = |kind, site, msg: Option<MsgInfo>, recs: &mut Vec<TraceRecord>| {
            marker += 1;
            t += 10;
            let mut r = TraceRecord::basic(0u32, kind, marker, t).with_site(site);
            if let Some(m) = msg {
                r = r.with_msg(m);
            }
            recs.push(r);
        };
        let m = MsgInfo {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        push(EventKind::FnEnter, f, None, &mut recs);
        push(EventKind::Send, f, Some(m), &mut recs);
        push(EventKind::FnExit, f, None, &mut recs);
        push(EventKind::FnEnter, f, None, &mut recs);
        push(EventKind::FnExit, f, None, &mut recs);
        TraceStore::build(recs, sites, 2)
    }

    #[test]
    fn nodes_and_arcs() {
        let store = sample_store();
        let g = TraceGraph::build(&store);
        // main@0, f@0, ch(0,1)  (rank 1 contributes main@1)
        assert_eq!(g.n_nodes(), 4);
        let main0 = g
            .find(&TraceNode::Function {
                rank: Rank(0),
                func: "main".into(),
            })
            .unwrap();
        let arcs = g.arcs_from(main0);
        assert_eq!(arcs.len(), 2, "two calls to f");
        assert!(arcs.iter().all(|a| a.kind == ArcKind::Call));
        let f0 = g
            .find(&TraceNode::Function {
                rank: Rank(0),
                func: "f".into(),
            })
            .unwrap();
        let fa = g.arcs_from(f0);
        assert_eq!(fa.len(), 1);
        assert_eq!(fa[0].kind, ArcKind::MsgSend);
        assert!(matches!(g.node(fa[0].to), TraceNode::Channel(_)));
    }

    #[test]
    fn node_bound_holds() {
        let store = sample_store();
        let g = TraceGraph::build(&store);
        let n_funcs = 2; // main, f
        let n_procs = store.n_ranks();
        assert!(g.n_nodes() <= n_funcs * n_procs + n_procs * n_procs);
    }

    fn burst_store(calls: usize) -> TraceStore {
        let sites = SiteTable::new();
        let f = sites.site("a.c", 10, "f");
        let mut recs = Vec::new();
        for i in 0..calls {
            let m = 2 * i as u64 + 1;
            recs.push(TraceRecord::basic(0u32, EventKind::FnEnter, m, m * 10).with_site(f));
            recs.push(TraceRecord::basic(0u32, EventKind::FnExit, m + 1, m * 10 + 5).with_site(f));
        }
        TraceStore::build(recs, sites, 1)
    }

    #[test]
    fn dissemination_bounds_arcs() {
        let store = burst_store(1000);
        let g = TraceGraph::build_with_limit(&store, Some(16));
        let main0 = g
            .find(&TraceNode::Function {
                rank: Rank(0),
                func: "main".into(),
            })
            .unwrap();
        assert!(
            g.arcs_from(main0).len() <= 16,
            "arc count {} exceeds limit",
            g.arcs_from(main0).len()
        );
        // but every primitive call is still represented
        assert_eq!(g.n_primitive_arcs(), 1000);
        assert!(g.merged_away() > 0);
    }

    #[test]
    fn expand_reconstructs_full_resolution() {
        let store = burst_store(64);
        let g = TraceGraph::build_with_limit(&store, Some(8));
        let main0 = g
            .find(&TraceNode::Function {
                rank: Rank(0),
                func: "main".into(),
            })
            .unwrap();
        assert!(g.arcs_from(main0).len() <= 8);
        let full = g.expand_node(&store, main0);
        assert_eq!(full.len(), 64);
        assert!(full.iter().all(|a| a.multiplicity == 1));
    }

    #[test]
    fn unlimited_graph_keeps_every_arc() {
        let store = burst_store(100);
        let g = TraceGraph::build(&store);
        assert_eq!(g.n_arcs(), 100);
        assert_eq!(g.merged_away(), 0);
    }

    #[test]
    fn recv_arc_direction() {
        let sites = SiteTable::new();
        let m = MsgInfo {
            src: Rank(1),
            dst: Rank(0),
            tag: Tag(1),
            bytes: 8,
            seq: 0,
        };
        let recs = vec![TraceRecord::basic(0u32, EventKind::RecvDone, 1, 10).with_msg(m)];
        let store = TraceStore::build(recs, sites, 2);
        let g = TraceGraph::build(&store);
        let ch = g
            .find(&TraceNode::Channel(ChannelId::between(Rank(0), Rank(1))))
            .unwrap();
        let arcs = g.arcs_from(ch);
        assert_eq!(arcs.len(), 1);
        assert_eq!(arcs[0].kind, ArcKind::MsgRecv);
        assert_eq!(g.node(arcs[0].to).label(), "main@0");
    }
}
