//! Graph abstractions of the execution history (§3.2, §4.3, §4.4).
//!
//! "The *trace graph* of the execution is a graph whose vertex set consists
//! of a node for each function in the program and a node for each
//! communication channel (one channel per pair of processes). ...
//! Projection of the trace graph onto a particular process gives us a
//! dynamic call graph of the process. A simple transformation of the trace
//! graph gives us a communication graph."
//!
//! This crate consumes a [`TraceStore`](tracedbg_trace::TraceStore) and
//! produces:
//!
//! * [`MessageMatching`] — send records paired with receive records using
//!   the non-overtaking channel sequence, plus the unmatched ledger the
//!   debugger reports (§4.4);
//! * [`TraceGraph`] — the function/channel graph with call and message
//!   arcs, bounded in size by the *dissemination* technique (§4.3);
//! * [`CallGraph`] — the per-process dynamic call graph projection;
//! * [`CommGraph`] — the communication graph of matched messages with
//!   causality arcs (Figure 4);
//! * [`ActionGraph`] — the coarser action classification of §4.4.

pub mod actions;
pub mod callgraph;
pub mod commgraph;
pub mod graph;
pub mod intertwined;
pub mod matching;
pub mod profile;

pub use actions::{Action, ActionGraph, ActionKind};
pub use callgraph::{CallArcView, CallGraph};
pub use commgraph::{CommGraph, CommNodeId};
pub use graph::{ArcKind, NodeId, TraceArc, TraceGraph, TraceNode};
pub use intertwined::{find_intertwined, Intertwining};
pub use matching::{MatchedMessage, MessageMatching, UnmatchedRecv, UnmatchedSend};
pub use profile::{FuncProfile, Profile};
