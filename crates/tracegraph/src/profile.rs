//! Per-function time profiles from the trace.
//!
//! AIMS was first a performance tool; the trace records carry start/end
//! times, so the same history the debugger replays also yields a profile:
//! per (process, function) call counts, inclusive time (enter→exit) and
//! exclusive time (inclusive minus time spent in instrumented callees).

use std::collections::BTreeMap;
use std::fmt;
use tracedbg_trace::{EventKind, Rank, TraceStore};

/// Profile entry for one (rank, function).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncProfile {
    pub calls: u64,
    /// Total simulated ns between enter and exit.
    pub inclusive_ns: u64,
    /// Inclusive minus instrumented-callee inclusive time.
    pub exclusive_ns: u64,
}

/// The whole profile: keyed by (rank, function name).
pub struct Profile {
    entries: BTreeMap<(u32, String), FuncProfile>,
}

impl Profile {
    /// Compute the profile by walking each rank's enter/exit events. An
    /// unmatched enter (process blocked or stopped inside the function)
    /// is closed at the rank's last event time.
    pub fn compute(store: &TraceStore) -> Self {
        let mut entries: BTreeMap<(u32, String), FuncProfile> = BTreeMap::new();
        for r in 0..store.n_ranks() {
            let rank = Rank(r as u32);
            let lane = store.by_rank(rank);
            let last_t = lane.last().map(|id| store.record(*id).t_end).unwrap_or(0);
            // Stack of (func, enter time, child inclusive accumulator).
            let mut stack: Vec<(String, u64, u64)> = Vec::new();
            for &id in lane {
                let rec = store.record(id);
                match rec.kind {
                    EventKind::FnEnter => {
                        let func = store.sites().func_name(rec.site);
                        stack.push((func, rec.t_start, 0));
                    }
                    EventKind::FnExit => {
                        if let Some((func, t_enter, child)) = stack.pop() {
                            let inclusive = rec.t_end.saturating_sub(t_enter);
                            let e = entries.entry((r as u32, func)).or_default();
                            e.calls += 1;
                            e.inclusive_ns += inclusive;
                            e.exclusive_ns += inclusive.saturating_sub(child);
                            if let Some(parent) = stack.last_mut() {
                                parent.2 += inclusive;
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Close functions still open at the end of the trace.
            while let Some((func, t_enter, child)) = stack.pop() {
                let inclusive = last_t.saturating_sub(t_enter);
                let e = entries.entry((r as u32, func)).or_default();
                e.calls += 1;
                e.inclusive_ns += inclusive;
                e.exclusive_ns += inclusive.saturating_sub(child);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += inclusive;
                }
            }
        }
        Profile { entries }
    }

    pub fn get(&self, rank: Rank, func: &str) -> Option<&FuncProfile> {
        self.entries.get(&(rank.0, func.to_string()))
    }

    /// Entries aggregated over all ranks, heaviest inclusive time first.
    pub fn by_function(&self) -> Vec<(String, FuncProfile)> {
        let mut agg: BTreeMap<String, FuncProfile> = BTreeMap::new();
        for ((_, f), p) in &self.entries {
            let e = agg.entry(f.clone()).or_default();
            e.calls += p.calls;
            e.inclusive_ns += p.inclusive_ns;
            e.exclusive_ns += p.exclusive_ns;
        }
        let mut v: Vec<_> = agg.into_iter().collect();
        v.sort_by_key(|(_, p)| std::cmp::Reverse(p.inclusive_ns));
        v
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>8} {:>14} {:>14}",
            "function", "calls", "inclusive(ns)", "exclusive(ns)"
        )?;
        for (name, p) in self.by_function() {
            writeln!(
                f,
                "{:<24} {:>8} {:>14} {:>14}",
                name, p.calls, p.inclusive_ns, p.exclusive_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{SiteTable, TraceRecord};

    /// main { f { compute 100 } compute 50 }
    fn store() -> TraceStore {
        let sites = SiteTable::new();
        let m = sites.site("a.c", 1, "main");
        let f = sites.site("a.c", 5, "f");
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::FnEnter, 1, 0).with_site(m),
            TraceRecord::basic(0u32, EventKind::FnEnter, 2, 0).with_site(f),
            TraceRecord::basic(0u32, EventKind::Compute, 3, 0).with_span(0, 100),
            TraceRecord::basic(0u32, EventKind::FnExit, 4, 100)
                .with_span(100, 100)
                .with_site(f),
            TraceRecord::basic(0u32, EventKind::Compute, 5, 100).with_span(100, 150),
            TraceRecord::basic(0u32, EventKind::FnExit, 6, 150)
                .with_span(150, 150)
                .with_site(m),
        ];
        TraceStore::build(recs, sites, 1)
    }

    #[test]
    fn inclusive_and_exclusive() {
        let p = Profile::compute(&store());
        let main = p.get(Rank(0), "main").unwrap();
        assert_eq!(main.calls, 1);
        assert_eq!(main.inclusive_ns, 150);
        assert_eq!(main.exclusive_ns, 50, "main minus f's 100");
        let f = p.get(Rank(0), "f").unwrap();
        assert_eq!(f.inclusive_ns, 100);
        assert_eq!(f.exclusive_ns, 100);
    }

    #[test]
    fn open_function_closed_at_trace_end() {
        let sites = SiteTable::new();
        let m = sites.site("a.c", 1, "stuck");
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::FnEnter, 1, 0).with_site(m),
            TraceRecord::basic(0u32, EventKind::Compute, 2, 0).with_span(0, 40),
        ];
        let store = TraceStore::build(recs, sites, 1);
        let p = Profile::compute(&store);
        let stuck = p.get(Rank(0), "stuck").unwrap();
        assert_eq!(stuck.calls, 1);
        assert_eq!(stuck.inclusive_ns, 40);
    }

    #[test]
    fn aggregation_sorts_by_inclusive() {
        let p = Profile::compute(&store());
        let agg = p.by_function();
        assert_eq!(agg[0].0, "main");
        assert_eq!(agg[1].0, "f");
        let text = format!("{p}");
        assert!(text.contains("inclusive"), "{text}");
    }

    #[test]
    fn empty_trace_empty_profile() {
        let store = TraceStore::build(vec![], SiteTable::new(), 2);
        assert!(Profile::compute(&store).is_empty());
    }
}
