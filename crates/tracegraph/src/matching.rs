//! Send/receive matching and the unmatched ledger.
//!
//! "The message 'non-overtaking' property specified in the MPI standard
//! allows a unique matching of send arcs with receive arcs incident to the
//! same channel and having the same message tag." (§3.2)
//!
//! In this trace format the runtime stamps each message with its per-
//! `(src, dst)` sequence number, so the unique key `(src, dst, seq)` pairs
//! a `Send` record with its `RecvDone` record directly. The ledger of
//! sends that were never received and receives that never completed is
//! exactly what §4.4's history analysis reports ("the user is informed
//! about the unmatched send/receives") and what Figure 6 visualizes as the
//! missed message.

use std::collections::HashMap;
use tracedbg_trace::{EventId, EventKind, MsgInfo, Rank, TraceStore};

/// A send paired with its receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchedMessage {
    pub send: EventId,
    pub recv: EventId,
    pub info: MsgInfo,
}

/// A send whose message was never received.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnmatchedSend {
    pub send: EventId,
    pub info: MsgInfo,
}

/// A posted receive that never completed (blocked at end of trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnmatchedRecv {
    pub post: EventId,
    pub rank: Rank,
    /// Requested source (`-1` encoded as `None` = wildcard).
    pub src: Option<Rank>,
}

/// Complete matching of a trace.
#[derive(Clone, Debug, Default)]
pub struct MessageMatching {
    pub matched: Vec<MatchedMessage>,
    pub unmatched_sends: Vec<UnmatchedSend>,
    pub unmatched_recvs: Vec<UnmatchedRecv>,
    /// recv event id -> index into `matched`.
    by_recv: HashMap<EventId, usize>,
    /// send event id -> index into `matched`.
    by_send: HashMap<EventId, usize>,
}

impl MessageMatching {
    /// Match all sends and receives of a trace.
    pub fn build(store: &TraceStore) -> Self {
        let mut sends: HashMap<(Rank, Rank, u64), EventId> = HashMap::new();
        let mut out = MessageMatching::default();
        for id in store.ids() {
            let rec = store.record(id);
            if rec.kind == EventKind::Send {
                let m = rec.msg.expect("send record without msg info");
                sends.insert((m.src, m.dst, m.seq), id);
            }
        }
        // Pair receives; count completed receives per post by walking each
        // rank's lane (RecvPost followed by its RecvDone in program order).
        for id in store.ids() {
            let rec = store.record(id);
            if rec.kind != EventKind::RecvDone {
                continue;
            }
            let m = rec.msg.expect("recv record without msg info");
            if let Some(send_id) = sends.remove(&(m.src, m.dst, m.seq)) {
                let ix = out.matched.len();
                out.matched.push(MatchedMessage {
                    send: send_id,
                    recv: id,
                    info: m,
                });
                out.by_recv.insert(id, ix);
                out.by_send.insert(send_id, ix);
            }
        }
        // Remaining sends are unmatched.
        let mut rest: Vec<UnmatchedSend> = sends
            .into_values()
            .map(|send_id| UnmatchedSend {
                send: send_id,
                info: store.record(send_id).msg.unwrap(),
            })
            .collect();
        rest.sort_by_key(|u| u.send);
        out.unmatched_sends = rest;
        // Receive posts not followed by a completion on the same rank: a
        // post is completed iff the next Recv* event after it in that
        // rank's lane is a RecvDone.
        for r in 0..store.n_ranks() {
            let lane = store.by_rank(Rank(r as u32));
            let mut pending_post: Option<EventId> = None;
            for &id in lane {
                let rec = store.record(id);
                match rec.kind {
                    EventKind::RecvPost => {
                        if let Some(post) = pending_post.take() {
                            out.push_unmatched_recv(store, post);
                        }
                        pending_post = Some(id);
                    }
                    EventKind::RecvDone => {
                        pending_post = None;
                    }
                    _ => {}
                }
            }
            if let Some(post) = pending_post {
                out.push_unmatched_recv(store, post);
            }
        }
        out
    }

    fn push_unmatched_recv(&mut self, store: &TraceStore, post: EventId) {
        let rec = store.record(post);
        let src = if rec.args[0] < 0 {
            None
        } else {
            Some(Rank(rec.args[0] as u32))
        };
        self.unmatched_recvs.push(UnmatchedRecv {
            post,
            rank: rec.rank,
            src,
        });
    }

    /// The match containing this receive event, if any.
    pub fn match_of_recv(&self, recv: EventId) -> Option<&MatchedMessage> {
        self.by_recv.get(&recv).map(|&i| &self.matched[i])
    }

    /// The match containing this send event, if any.
    pub fn match_of_send(&self, send: EventId) -> Option<&MatchedMessage> {
        self.by_send.get(&send).map(|&i| &self.matched[i])
    }

    /// Is the trace fully matched (no lost messages, no blocked receives)?
    pub fn is_clean(&self) -> bool {
        self.unmatched_sends.is_empty() && self.unmatched_recvs.is_empty()
    }

    /// Messages delivered into each rank (Figure 6's "processes 1-6 each
    /// receive 2 messages and process 7 only receives 1" query).
    pub fn received_counts(&self, n_ranks: usize, store: &TraceStore) -> Vec<usize> {
        let mut counts = vec![0usize; n_ranks];
        for m in &self.matched {
            counts[store.record(m.recv).rank.ix()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{SiteTable, Tag, TraceRecord};

    fn msg(src: u32, dst: u32, tag: i32, seq: u64) -> MsgInfo {
        MsgInfo {
            src: Rank(src),
            dst: Rank(dst),
            tag: Tag(tag),
            bytes: 8,
            seq,
        }
    }

    fn send(rank: u32, marker: u64, t: u64, m: MsgInfo) -> TraceRecord {
        TraceRecord::basic(rank, EventKind::Send, marker, t)
            .with_span(t, t + 1)
            .with_msg(m)
    }

    fn recv_post(rank: u32, marker: u64, t: u64, src: i64) -> TraceRecord {
        TraceRecord::basic(rank, EventKind::RecvPost, marker, t).with_args(src, -1)
    }

    fn recv_done(rank: u32, marker: u64, t: u64, m: MsgInfo) -> TraceRecord {
        TraceRecord::basic(rank, EventKind::RecvDone, marker, t)
            .with_span(t, t + 1)
            .with_msg(m)
    }

    #[test]
    fn clean_trace_matches_fully() {
        let recs = vec![
            send(0, 1, 0, msg(0, 1, 5, 0)),
            recv_post(1, 1, 2, 0),
            recv_done(1, 2, 2, msg(0, 1, 5, 0)),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        assert!(mm.is_clean());
        assert_eq!(mm.matched.len(), 1);
        assert_eq!(mm.received_counts(2, &store), vec![0, 1]);
    }

    #[test]
    fn lost_message_is_unmatched_send() {
        let recs = vec![send(0, 1, 0, msg(0, 1, 5, 0))];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        assert_eq!(mm.unmatched_sends.len(), 1);
        assert_eq!(mm.unmatched_sends[0].info.dst, Rank(1));
        assert!(!mm.is_clean());
    }

    #[test]
    fn blocked_recv_is_unmatched() {
        let recs = vec![recv_post(0, 1, 0, 7)];
        let store = TraceStore::build(recs, SiteTable::new(), 8);
        let mm = MessageMatching::build(&store);
        assert_eq!(mm.unmatched_recvs.len(), 1);
        assert_eq!(mm.unmatched_recvs[0].rank, Rank(0));
        assert_eq!(mm.unmatched_recvs[0].src, Some(Rank(7)));
    }

    #[test]
    fn wildcard_post_reported_as_wildcard() {
        let recs = vec![recv_post(2, 1, 0, -1)];
        let store = TraceStore::build(recs, SiteTable::new(), 3);
        let mm = MessageMatching::build(&store);
        assert_eq!(mm.unmatched_recvs[0].src, None);
    }

    #[test]
    fn lookup_by_send_and_recv() {
        let recs = vec![
            send(0, 1, 0, msg(0, 1, 5, 0)),
            recv_post(1, 1, 2, 0),
            recv_done(1, 2, 2, msg(0, 1, 5, 0)),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        let m = mm.matched[0];
        assert_eq!(mm.match_of_send(m.send), Some(&mm.matched[0]));
        assert_eq!(mm.match_of_recv(m.recv), Some(&mm.matched[0]));
        assert_eq!(mm.match_of_recv(m.send), None);
    }

    #[test]
    fn completed_recv_between_two_posts() {
        // post, done, post (blocked) — only the second post is unmatched.
        let recs = vec![
            send(0, 1, 0, msg(0, 1, 5, 0)),
            recv_post(1, 1, 2, 0),
            recv_done(1, 2, 3, msg(0, 1, 5, 0)),
            recv_post(1, 3, 4, 0),
        ];
        let store = TraceStore::build(recs, SiteTable::new(), 2);
        let mm = MessageMatching::build(&store);
        assert_eq!(mm.matched.len(), 1);
        assert_eq!(mm.unmatched_recvs.len(), 1);
        assert_eq!(store.record(mm.unmatched_recvs[0].post).marker, 3);
    }
}
