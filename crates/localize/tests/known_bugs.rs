//! Localization accuracy on the planted-bug corpus: for every workload in
//! `tracedbg_workloads::planted`, the rank carrying the planted bug must
//! surface in the top two suspects (and for the pipeline, at the very
//! top) — the ground truth pinning DESIGN.md §13's scoring model.

use tracedbg_explore::ProgramSource;
use tracedbg_localize::{localize, LocalizeConfig, LocalizeReport, VERDICT_LOCALIZED};
use tracedbg_mpsim::Rank;
use tracedbg_trace::schedule::{Decision, Fault, ScheduleArtifact};
use tracedbg_workloads::planted::{
    planted_orphan_factory, planted_pipeline_factory, planted_wildcard_factory, PlantedConfig,
};

fn top2(report: &LocalizeReport) -> Vec<u32> {
    report.suspects.iter().take(2).map(|s| s.rank).collect()
}

fn check(report: &LocalizeReport, bug_rank: u32, failure_class: &str) {
    assert_eq!(report.verdict, VERDICT_LOCALIZED, "{}", report.to_json());
    assert!(
        report.failure.starts_with(failure_class),
        "expected a {failure_class}, got {}",
        report.failure
    );
    assert!(report.passing_runs >= 1);
    assert!(report.digest_ok(), "sealed digest must verify");
    assert!(
        top2(report).contains(&bug_rank),
        "planted rank {bug_rank} not in top-2 of {}",
        report.to_json()
    );
    let d = report.divergence.as_ref().expect("divergence frontier");
    assert!(!d.markers.is_empty(), "stopline markers present");
}

#[test]
fn wildcard_race_puts_the_planted_rank_in_the_top_two() {
    tracedbg_mpsim::set_quiet_panics(true);
    let cfg = PlantedConfig::default();
    let mut a = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
    // The failing interleaving: the planted rank reports first.
    a.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let src: ProgramSource = Box::new(planted_wildcard_factory(cfg));
    let r = localize(&src, &a, &LocalizeConfig::default());
    check(&r, cfg.bug_rank, "panic");
    // The race's signature: the planted rank's report channel to the
    // master was received out of reference order.
    assert!(
        r.channels
            .iter()
            .any(|c| c.src == cfg.bug_rank && c.dst == 0 && c.reordered > 0),
        "wildcard race channel not flagged: {}",
        r.to_json()
    );
}

#[test]
fn orphaned_receive_puts_the_planted_rank_in_the_top_two() {
    tracedbg_mpsim::set_quiet_panics(true);
    let cfg = PlantedConfig::default();
    let mut a = ScheduleArtifact::new("planted-orphan", cfg.nprocs, 0);
    a.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let src: ProgramSource = Box::new(planted_orphan_factory(cfg));
    let r = localize(&src, &a, &LocalizeConfig::default());
    check(&r, cfg.bug_rank, "deadlock");
}

#[test]
fn delayed_merge_token_makes_the_planted_stage_the_top_suspect() {
    tracedbg_mpsim::set_quiet_panics(true);
    let cfg = PlantedConfig::default();
    let mut a = ScheduleArtifact::new("planted-pipeline", cfg.nprocs, 0);
    // The failing recipe is a pure fault plan: no scripted decisions, the
    // delay alone reorders the planted stage's wildcard merge.
    a.faults = vec![Fault::Delay {
        src: Rank(0),
        dst: Rank(cfg.bug_rank),
        nth: 1,
        extra_ns: cfg.work * 2,
    }];
    let src: ProgramSource = Box::new(planted_pipeline_factory(cfg));
    let r = localize(&src, &a, &LocalizeConfig::default());
    check(&r, cfg.bug_rank, "panic");
    assert_eq!(
        r.top_suspect(),
        Some(cfg.bug_rank),
        "the merge stage must rank first: {}",
        r.to_json()
    );
    // Both producer channels into the merge stage show the reorder.
    assert!(
        r.channels
            .iter()
            .any(|c| c.dst == cfg.bug_rank && c.reordered > 0),
        "merge-input channels not flagged: {}",
        r.to_json()
    );
    // The divergence frontier is deep inside the run (not turn 0) and
    // names the merge rank among the implicated ranks.
    let d = r.divergence.as_ref().unwrap();
    assert!(d.index > 0);
    assert!(d.ranks.contains(&cfg.bug_rank));
    assert!(d.markers.iter().any(|&m| m > 0), "non-trivial stopline");
}

#[test]
fn localization_scales_past_the_default_process_count() {
    tracedbg_mpsim::set_quiet_panics(true);
    let cfg = PlantedConfig {
        nprocs: 6,
        bug_rank: 4,
        ..Default::default()
    };
    let mut a = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
    a.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let src: ProgramSource = Box::new(planted_wildcard_factory(cfg));
    let r = localize(&src, &a, &LocalizeConfig::default());
    check(&r, cfg.bug_rank, "panic");
}
