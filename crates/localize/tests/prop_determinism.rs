//! Properties of `localize` under arbitrary reference seeds:
//!
//! 1. The sealed [`LocalizeReport`] is **byte-identical** between
//!    `jobs = 1` and `jobs = 4` — worker count and scheduling jitter must
//!    never leak into the findings (the report has no `jobs` field, and
//!    its digest pins everything else).
//! 2. Localizing an artifact whose replay *passes* yields the `clean`
//!    verdict with no suspects and no divergence — passing-vs-passing
//!    comparisons never invent differences.

use proptest::prelude::*;
use tracedbg_localize::{localize, LocalizeConfig, VERDICT_CLEAN};
use tracedbg_mpsim::Rank;
use tracedbg_trace::schedule::{Decision, Fault, ScheduleArtifact};
use tracedbg_workloads::planted::{
    planted_pipeline_factory, planted_wildcard_factory, PlantedConfig,
};

fn wildcard_artifact(cfg: &PlantedConfig) -> ScheduleArtifact {
    let mut a = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
    a.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    a
}

fn pipeline_artifact(cfg: &PlantedConfig) -> ScheduleArtifact {
    let mut a = ScheduleArtifact::new("planted-pipeline", cfg.nprocs, 0);
    a.faults = vec![Fault::Delay {
        src: Rank(0),
        dst: Rank(cfg.bug_rank),
        nth: 1,
        extra_ns: cfg.work * 2,
    }];
    a
}

/// Run the same localization with `jobs = 1` and `jobs = 4` and demand
/// byte-identical JSON.
fn check_jobs_invariance(src: &tracedbg_explore::ProgramSource, a: &ScheduleArtifact, seed: u64) {
    tracedbg_mpsim::set_quiet_panics(true);
    let serial = localize(
        src,
        a,
        &LocalizeConfig {
            runs: 4,
            seed,
            jobs: 1,
        },
    );
    let parallel = localize(
        src,
        a,
        &LocalizeConfig {
            runs: 4,
            seed,
            jobs: 4,
        },
    );
    prop_assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "seed {}: report must not depend on job count",
        seed
    );
    prop_assert!(serial.digest_ok());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn wildcard_reports_are_byte_identical_across_jobs(seed in 0u64..1_000_000) {
        let cfg = PlantedConfig::default();
        let src: tracedbg_explore::ProgramSource =
            Box::new(planted_wildcard_factory(cfg));
        check_jobs_invariance(&src, &wildcard_artifact(&cfg), seed);
    }

    #[test]
    fn pipeline_reports_are_byte_identical_across_jobs(seed in 0u64..1_000_000) {
        let cfg = PlantedConfig::default();
        let src: tracedbg_explore::ProgramSource =
            Box::new(planted_pipeline_factory(cfg));
        check_jobs_invariance(&src, &pipeline_artifact(&cfg), seed);
    }

    #[test]
    fn passing_artifacts_localize_to_clean(seed in 0u64..1_000_000) {
        tracedbg_mpsim::set_quiet_panics(true);
        let cfg = PlantedConfig::default();
        // No scripted decisions, no faults: the baseline schedule
        // completes, so there is nothing to localize.
        let a = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
        let src: tracedbg_explore::ProgramSource =
            Box::new(planted_wildcard_factory(cfg));
        let r = localize(&src, &a, &LocalizeConfig { runs: 4, seed, jobs: 2 });
        prop_assert_eq!(&r.verdict, VERDICT_CLEAN);
        prop_assert!(r.suspects.is_empty(), "clean runs have no suspects");
        prop_assert!(r.divergence.is_none());
        prop_assert!(r.channels.is_empty());
        prop_assert!(r.digest_ok());
    }
}
