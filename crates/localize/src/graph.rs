//! Event-graph differencing between a failing and a passing trace.
//!
//! Works over [`TraceSource`], so either side can be the in-memory
//! [`TraceStore`] of a fresh run or an on-disk store directory — the
//! differ only consumes the per-rank [`CommEdge`] projection. Three
//! signals come out, per rank and per channel:
//!
//! * **missing** — edge keys `(dir, peer, tag)` the passing trace has
//!   more of than the failing trace (communication that never happened);
//! * **extra** — keys the failing trace has more of (communication that
//!   should not have happened);
//! * **reordered** — aligned positions where both traces communicated,
//!   but over different keys, net of missing/extra — the signature of a
//!   wildcard receive matching a different sender.
//!
//! [`TraceStore`]: tracedbg_trace::TraceStore

use std::collections::BTreeMap;
use tracedbg_trace::{CommEdge, EdgeDir, Rank, SourceError, TraceSource};

/// Edge-diff counts for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankDiff {
    pub missing: u64,
    pub extra: u64,
    pub reordered: u64,
}

impl RankDiff {
    /// The per-rank graph score: structural differences (missing/extra
    /// edges) weigh triple, reorderings single.
    pub fn score(&self) -> u64 {
        3 * (self.missing + self.extra) + self.reordered
    }
}

/// Edge-diff counts for one directed channel `(src, dst, tag)`.
pub type ChannelKey = (u32, u32, i32);

fn key_counts(edges: &[CommEdge]) -> BTreeMap<(EdgeDir, Rank, i32), u64> {
    let mut m = BTreeMap::new();
    for e in edges {
        *m.entry((e.dir, e.peer, e.tag.0)).or_insert(0u64) += 1;
    }
    m
}

/// Diff one rank's edge sequences. `missing`/`extra` come from the key
/// multisets; `reordered` is the number of aligned positions whose keys
/// differ, minus the positions explained by missing/extra edges.
pub fn diff_rank(failing: &[CommEdge], passing: &[CommEdge]) -> RankDiff {
    let fail_counts = key_counts(failing);
    let pass_counts = key_counts(passing);
    let mut missing = 0u64;
    let mut extra = 0u64;
    for (k, &pc) in &pass_counts {
        let fc = fail_counts.get(k).copied().unwrap_or(0);
        missing += pc.saturating_sub(fc);
    }
    for (k, &fc) in &fail_counts {
        let pc = pass_counts.get(k).copied().unwrap_or(0);
        extra += fc.saturating_sub(pc);
    }
    let mismatched = failing
        .iter()
        .zip(passing.iter())
        .filter(|(f, p)| (f.dir, f.peer, f.tag) != (p.dir, p.peer, p.tag))
        .count() as u64;
    RankDiff {
        missing,
        extra,
        reordered: mismatched.saturating_sub(missing + extra),
    }
}

/// Per-rank diffs over every rank of the wider source.
pub fn diff_ranks<F, P>(failing: &F, passing: &P) -> Result<Vec<RankDiff>, SourceError>
where
    F: TraceSource + ?Sized,
    P: TraceSource + ?Sized,
{
    let n = failing.source_n_ranks().max(passing.source_n_ranks());
    let mut out = Vec::with_capacity(n);
    for r in 0..n as u32 {
        let fe = failing.comm_edges(Rank(r))?;
        let pe = passing.comm_edges(Rank(r))?;
        out.push(diff_rank(&fe, &pe));
    }
    Ok(out)
}

/// Channel-level diffs, keyed `(src, dst, tag)`, deterministic order.
///
/// Missing/extra counts come from each rank's **send** edges (one count
/// per channel, not double-counted from the receive side). Reorderings
/// come from each rank's **receive** edges: an aligned receive position
/// where the two traces matched different channels charges both channels
/// — that is where a wildcard race surfaces.
pub fn diff_channels<F, P>(
    failing: &F,
    passing: &P,
) -> Result<BTreeMap<ChannelKey, RankDiff>, SourceError>
where
    F: TraceSource + ?Sized,
    P: TraceSource + ?Sized,
{
    let n = failing.source_n_ranks().max(passing.source_n_ranks());
    let mut out: BTreeMap<ChannelKey, RankDiff> = BTreeMap::new();
    for r in 0..n as u32 {
        let fe = failing.comm_edges(Rank(r))?;
        let pe = passing.comm_edges(Rank(r))?;
        let sends = |edges: &[CommEdge]| {
            key_counts(edges)
                .into_iter()
                .filter(|((d, _, _), _)| *d == EdgeDir::Send)
                .collect::<BTreeMap<_, _>>()
        };
        let fs = sends(&fe);
        let ps = sends(&pe);
        for ((_, peer, tag), pc) in &ps {
            let fc = fs.get(&(EdgeDir::Send, *peer, *tag)).copied().unwrap_or(0);
            if *pc > fc {
                out.entry((r, peer.0, *tag)).or_default().missing += pc - fc;
            }
        }
        for ((_, peer, tag), fc) in &fs {
            let pc = ps.get(&(EdgeDir::Send, *peer, *tag)).copied().unwrap_or(0);
            if *fc > pc {
                out.entry((r, peer.0, *tag)).or_default().extra += fc - pc;
            }
        }
        let frecv: Vec<&CommEdge> = fe.iter().filter(|e| e.dir == EdgeDir::Recv).collect();
        let precv: Vec<&CommEdge> = pe.iter().filter(|e| e.dir == EdgeDir::Recv).collect();
        for (f, p) in frecv.iter().zip(precv.iter()) {
            if (f.peer, f.tag) != (p.peer, p.tag) {
                out.entry((f.peer.0, r, f.tag.0)).or_default().reordered += 1;
                out.entry((p.peer.0, r, p.tag.0)).or_default().reordered += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::Tag;

    fn edge(dir: EdgeDir, peer: u32, tag: i32, seq: u64) -> CommEdge {
        CommEdge {
            dir,
            peer: Rank(peer),
            tag: Tag(tag),
            bytes: 8,
            seq,
            marker: seq + 1,
        }
    }

    #[test]
    fn identical_sequences_diff_to_zero() {
        let e = vec![edge(EdgeDir::Send, 1, 7, 0), edge(EdgeDir::Recv, 2, 7, 0)];
        assert_eq!(diff_rank(&e, &e), RankDiff::default());
    }

    #[test]
    fn missing_and_extra_count_multiset_differences() {
        let fail = vec![edge(EdgeDir::Send, 1, 7, 0)];
        let pass = vec![edge(EdgeDir::Send, 1, 7, 0), edge(EdgeDir::Send, 2, 7, 1)];
        let d = diff_rank(&fail, &pass);
        assert_eq!(
            d,
            RankDiff {
                missing: 1,
                extra: 0,
                reordered: 0
            }
        );
        let d = diff_rank(&pass, &fail);
        assert_eq!(d.extra, 1);
        assert_eq!(d.score(), 3);
    }

    #[test]
    fn pure_reorder_is_not_charged_as_missing_or_extra() {
        // Same multiset, swapped order: the wildcard-race shape.
        let fail = vec![edge(EdgeDir::Recv, 2, 7, 0), edge(EdgeDir::Recv, 1, 7, 1)];
        let pass = vec![edge(EdgeDir::Recv, 1, 7, 0), edge(EdgeDir::Recv, 2, 7, 1)];
        let d = diff_rank(&fail, &pass);
        assert_eq!(
            d,
            RankDiff {
                missing: 0,
                extra: 0,
                reordered: 2
            }
        );
        assert_eq!(d.score(), 2);
    }

    #[test]
    fn mismatches_explained_by_missing_edges_are_not_reorders() {
        // Failing run stops one edge early; the shifted tail is a length
        // artifact, not a reorder.
        let fail = vec![edge(EdgeDir::Send, 1, 7, 0)];
        let pass = vec![edge(EdgeDir::Send, 1, 7, 0), edge(EdgeDir::Send, 3, 7, 1)];
        let d = diff_rank(&fail, &pass);
        assert_eq!(d.missing, 1);
        assert_eq!(d.reordered, 0);
    }
}
