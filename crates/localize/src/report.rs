//! The `LocalizeReport` JSON schema.
//!
//! Everything in the report derives from the executed event sequences of
//! the failing run and its passing reference set — never from wall-clock
//! time, worker identity, or job count. `tracedbg localize --jobs N` must
//! produce a byte-identical report for every `N`; the `digest` field
//! (FNV-1a over the report serialized with `digest` zeroed) makes that
//! contract checkable with a `grep`, exactly like `MetricsReport`'s
//! `event_digest`. The report deliberately has **no** `jobs` field.

use serde::{Deserialize, Serialize};
use tracedbg_obs::fnv1a64;

/// Schema version of [`LocalizeReport`]. v2 added the wait-state blame
/// component to [`Suspect`].
pub const LOCALIZE_VERSION: u32 = 2;

/// Report verdicts.
pub const VERDICT_LOCALIZED: &str = "localized";
pub const VERDICT_CLEAN: &str = "clean";
pub const VERDICT_NO_REFERENCE: &str = "no-reference";

/// Where the failing run first departs from its nearest passing neighbor
/// on the engine decision log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Decision index of the first difference (= length of the longest
    /// common decision prefix over the reference set).
    pub index: usize,
    /// The failing run's decision at `index`, rendered; `"(end of run)"`
    /// when the failing run is a strict prefix of the reference.
    pub chosen: String,
    /// The nearest passing run's decision at `index`, rendered;
    /// `"(end of run)"` when the reference is a strict prefix.
    pub expected: String,
    /// Ranks implicated by the diverging decisions.
    pub ranks: Vec<u32>,
    /// Per-rank execution markers at the divergence point — a replayable
    /// stopline: `tracedbg replay --schedule F --to-suspect report.json`
    /// runs the failing schedule up to exactly this frontier.
    pub markers: Vec<u64>,
}

/// One ranked suspect process. All scores are in milli-units, normalized
/// to 0..=1000 within their component across ranks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suspect {
    pub rank: u32,
    /// Combined score:
    /// `(5*divergence + 3*graph + 2*anomaly + 2*blame) / 12`.
    pub score: u64,
    /// First-divergence component: 1000 for ranks implicated by the
    /// diverging decision, 0 otherwise.
    pub divergence: u64,
    /// Event-graph component: normalized `3*(missing+extra) + reordered`
    /// communication edges vs the nearest passing trace.
    pub graph: u64,
    /// Telemetry component: normalized sum of per-counter MAD scores vs
    /// the passing reference sample.
    pub anomaly: u64,
    /// Wait-state component: normalized ns of other ranks' waiting this
    /// rank caused in the failing trace (profile's blame vector).
    pub blame: u64,
    /// Human-readable contribution notes, deterministic order.
    pub evidence: Vec<String>,
}

/// Aggregated communication-edge differences for one channel.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelDiff {
    pub src: u32,
    pub dst: u32,
    pub tag: i32,
    /// Edges the passing trace has that the failing trace lacks.
    pub missing: u64,
    /// Edges the failing trace has that the passing trace lacks.
    pub extra: u64,
    /// Aligned receive positions where this channel swapped places with
    /// another — the signature of a wildcard race.
    pub reordered: u64,
}

/// Output of `tracedbg localize`: ranked suspects with their evidence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LocalizeReport {
    pub version: u32,
    /// Workload spec from the artifact (e.g. `planted-wildcard`).
    pub workload: String,
    /// [`VERDICT_LOCALIZED`], [`VERDICT_CLEAN`], or
    /// [`VERDICT_NO_REFERENCE`].
    pub verdict: String,
    /// Outcome of replaying the artifact: `class: detail`.
    pub failure: String,
    /// Passing reference runs the comparison used (after dedup).
    pub passing_runs: usize,
    pub divergence: Option<Divergence>,
    /// Suspects, highest score first (ties break toward lower ranks).
    pub suspects: Vec<Suspect>,
    /// Channel-level diffs vs the nearest passing trace, most-changed
    /// first.
    pub channels: Vec<ChannelDiff>,
    /// FNV-1a 64 of the report serialized with this field zeroed.
    pub digest: u64,
}

impl LocalizeReport {
    /// An empty report skeleton; callers fill findings, then [`seal`].
    ///
    /// [`seal`]: LocalizeReport::seal
    pub fn new(workload: &str, verdict: &str, failure: String) -> Self {
        LocalizeReport {
            version: LOCALIZE_VERSION,
            workload: workload.to_string(),
            verdict: verdict.to_string(),
            failure,
            passing_runs: 0,
            divergence: None,
            suspects: Vec::new(),
            channels: Vec::new(),
            digest: 0,
        }
    }

    /// Compute and store `digest` over the rest of the report.
    pub fn seal(&mut self) {
        self.digest = 0;
        self.digest = fnv1a64(self.to_json().as_bytes());
    }

    /// Does `digest` match the rest of the report?
    pub fn digest_ok(&self) -> bool {
        let mut probe = self.clone();
        probe.seal();
        probe.digest == self.digest
    }

    /// The top suspect's rank, if any.
    pub fn top_suspect(&self) -> Option<u32> {
        self.suspects.first().map(|s| s.rank)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LocalizeReport serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        let r: LocalizeReport =
            serde_json::from_str(s).map_err(|e| format!("bad LocalizeReport: {e:?}"))?;
        if r.version != LOCALIZE_VERSION {
            return Err(format!(
                "LocalizeReport version {} unsupported (expected {})",
                r.version, LOCALIZE_VERSION
            ));
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LocalizeReport {
        let mut r = LocalizeReport::new("planted-wildcard", VERDICT_LOCALIZED, "panic: x".into());
        r.passing_runs = 3;
        r.divergence = Some(Divergence {
            index: 2,
            chosen: "turn P2".into(),
            expected: "turn P1".into(),
            ranks: vec![1, 2],
            markers: vec![4, 1, 1, 0],
        });
        r.suspects.push(Suspect {
            rank: 2,
            score: 900,
            divergence: 1000,
            graph: 800,
            anomaly: 700,
            blame: 1000,
            evidence: vec!["diverging decision names P2".into()],
        });
        r.channels.push(ChannelDiff {
            src: 2,
            dst: 0,
            tag: 40,
            missing: 0,
            extra: 0,
            reordered: 1,
        });
        r.seal();
        r
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let r = sample();
        let back = LocalizeReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert!(back.digest_ok());
    }

    #[test]
    fn digest_pins_the_findings() {
        let mut r = sample();
        assert!(r.digest_ok());
        r.suspects[0].score = 1;
        assert!(!r.digest_ok(), "tampered findings must break the digest");
        r.seal();
        assert!(r.digest_ok());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut r = sample();
        r.version = 99;
        let err = LocalizeReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn top_suspect_reads_the_head_of_the_ranking() {
        assert_eq!(sample().top_suspect(), Some(2));
        let empty = LocalizeReport::new("x", VERDICT_CLEAN, "completed".into());
        assert_eq!(empty.top_suspect(), None);
    }
}
