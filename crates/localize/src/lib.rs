//! tracedbg-localize — differential fault localization over exploration
//! artifacts.
//!
//! The paper's workflow ends where a failing interleaving is reproduced;
//! this crate answers the next question a debugging session asks: *which
//! process should I look at first?* Given a failing [`ScheduleArtifact`],
//! the localizer replays it, harvests a reference set of passing
//! schedules of the same workload, and ranks suspect processes by
//! combining four independent comparisons (DESIGN.md §13):
//!
//! 1. **First divergence** — the longest common prefix between the
//!    failing decision log and each passing run's log; the decision at
//!    the frontier names the ranks whose scheduling choice separated
//!    failure from success, and its marker vector is a replayable
//!    stopline (`tracedbg replay --to-suspect`).
//! 2. **Event-graph diff** — per-rank [`CommEdge`] sequences of the
//!    failing trace vs the *nearest* passing trace (the one with the
//!    longest common prefix): missing, extra, and reordered send/receive
//!    edges ([`graph`]).
//! 3. **Telemetry anomaly** — per-rank engine counters of the failing
//!    run scored against the passing sample by median-absolute-deviation
//!    ([`tracedbg_obs::mad_score`]).
//! 4. **Wait-state blame** — the failing trace's classified waits
//!    (late-sender, wait-at-collective, fault stalls) attributed to the
//!    rank that *caused* each one ([`tracedbg_profile::blame_vector`],
//!    DESIGN.md §15).
//!
//! Every output is a pure function of executed event sequences, so the
//! [`LocalizeReport`] is byte-identical across `--jobs` — the same
//! determinism contract (and digest idiom) as `MetricsReport`.
//!
//! [`CommEdge`]: tracedbg_trace::CommEdge

pub mod graph;
pub mod report;

use std::collections::BTreeSet;
use tracedbg_explore::{
    execute_metered, run_batch_traced, PrefixCache, ProgramSource, RunResult, RunTask,
};
use tracedbg_mpsim::{Engine, EngineConfig, FaultPlan, RecorderConfig, SchedPolicy};
use tracedbg_obs::{mad_score, median, EngineMetrics};
use tracedbg_trace::schedule::{Decision, ScheduleArtifact};
use tracedbg_trace::TraceSource;

pub use graph::{diff_channels, diff_rank, diff_ranks, ChannelKey, RankDiff};
pub use report::{
    ChannelDiff, Divergence, LocalizeReport, Suspect, LOCALIZE_VERSION, VERDICT_CLEAN,
    VERDICT_LOCALIZED, VERDICT_NO_REFERENCE,
};

/// Outcome class string for a clean run (re-exported for gating).
pub use tracedbg_explore::runner::CLASS_COMPLETED;

/// Component weights of the combined suspect score, in twelfths.
pub const WEIGHT_DIVERGENCE: u64 = 5;
pub const WEIGHT_GRAPH: u64 = 3;
pub const WEIGHT_ANOMALY: u64 = 2;
pub const WEIGHT_BLAME: u64 = 2;

/// How a localization is collected.
#[derive(Clone, Copy, Debug)]
pub struct LocalizeConfig {
    /// Passing reference schedules to attempt (the round-robin baseline
    /// plus `runs - 1` seeded random schedules).
    pub runs: usize,
    /// Seed for the reference schedules.
    pub seed: u64,
    /// Worker threads for the reference harvest. Never affects report
    /// bytes.
    pub jobs: usize,
}

impl Default for LocalizeConfig {
    fn default() -> Self {
        LocalizeConfig {
            runs: 8,
            seed: 0,
            jobs: 1,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn decision_ranks(d: &Decision) -> Vec<u32> {
    match d {
        Decision::Turn { rank } => vec![rank.0],
        Decision::Match { dst, src, .. } => {
            let mut v = vec![dst.0, src.0];
            v.sort_unstable();
            v.dedup();
            v
        }
    }
}

fn common_prefix(a: &[Decision], b: &[Decision]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Marker frontier of the failing schedule at decision depth `k`,
/// obtained by re-running the script with a snapshot armed at `k`.
fn divergence_markers(source: &ProgramSource, artifact: &ScheduleArtifact, k: usize) -> Vec<u64> {
    let mut engine = Engine::launch(
        EngineConfig {
            policy: SchedPolicy::Scripted(artifact.decisions.clone()),
            recorder: RecorderConfig::full(),
            faults: FaultPlan::new(artifact.faults.clone()),
            checkpoints: true,
            ..Default::default()
        },
        source(),
    );
    engine.set_snapshot_at(k);
    let _ = engine.run();
    engine
        .take_pending_snapshot()
        .map(|cp| cp.markers().counts().to_vec())
        .unwrap_or_default()
}

/// A named per-rank counter extractor over engine metrics.
type CounterGet = (&'static str, fn(&EngineMetrics, usize) -> u64);

/// Per-rank anomaly scores (summed milli-MADs) of the failing run's
/// counters against the passing sample, with evidence strings for
/// counters at least two MADs out.
fn anomaly_scores(
    failing: &EngineMetrics,
    passing: &[&EngineMetrics],
    nprocs: usize,
) -> (Vec<u64>, Vec<Vec<String>>) {
    const COUNTERS: [CounterGet; 5] = [
        ("blocked_turns", |m, r| {
            m.blocked_turns.get(r).copied().unwrap_or(0)
        }),
        ("queue_hwm", |m, r| m.queue_hwm.get(r).copied().unwrap_or(0)),
        ("msgs_sent", |m, r| m.msgs_sent.get(r).copied().unwrap_or(0)),
        ("recvs", |m, r| m.recvs.get(r).copied().unwrap_or(0)),
        ("bytes_sent", |m, r| {
            m.bytes_sent.get(r).copied().unwrap_or(0)
        }),
    ];
    let mut scores = vec![0u64; nprocs];
    let mut evidence = vec![Vec::new(); nprocs];
    for (name, get) in COUNTERS {
        for r in 0..nprocs {
            let sample: Vec<u64> = passing.iter().map(|m| get(m, r)).collect();
            let x = get(failing, r);
            let s = mad_score(x, &sample);
            scores[r] += s;
            if s >= 2000 {
                evidence[r].push(format!(
                    "{name} {x} vs passing median {} ({}.{:03} MADs out)",
                    median(&sample),
                    s / 1000,
                    s % 1000
                ));
            }
        }
    }
    (scores, evidence)
}

fn normalize(v: &mut [u64]) {
    let max = v.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return;
    }
    for x in v.iter_mut() {
        *x = *x * 1000 / max;
    }
}

/// Localize a failing artifact against fresh passing references.
///
/// `source` must instantiate the same workload the artifact was recorded
/// from. The report is deterministic in `(artifact, cfg.runs, cfg.seed)`
/// and byte-identical across `cfg.jobs`.
pub fn localize(
    source: &ProgramSource,
    artifact: &ScheduleArtifact,
    cfg: &LocalizeConfig,
) -> LocalizeReport {
    localize_with_trace(source, artifact, cfg, None)
}

/// [`localize`], with the failing run's trace supplied externally.
///
/// When `failing_trace` is given, the event-graph diff (component 2)
/// reads it through [`TraceSource`] instead of the replay's in-memory
/// store — so a `tracedbg ingest` store directory or a recorded `.trc`
/// file works without materializing anything. Divergence and anomaly
/// analysis still come from the replay, which also validates that the
/// artifact reproduces its failure.
pub fn localize_with_trace(
    source: &ProgramSource,
    artifact: &ScheduleArtifact,
    cfg: &LocalizeConfig,
    failing_trace: Option<&dyn TraceSource>,
) -> LocalizeReport {
    // 1. Reproduce the failure under the artifact's script + faults.
    let failing = execute_metered(
        source,
        SchedPolicy::Scripted(artifact.decisions.clone()),
        &artifact.faults,
        true,
    );
    let failure = format!("{}: {}", failing.class, failing.detail);
    if failing.class == CLASS_COMPLETED {
        let mut r = LocalizeReport::new(&artifact.workload, VERDICT_CLEAN, failure);
        r.seal();
        return r;
    }

    // 2. Harvest passing references: the deterministic baseline plus
    //    seeded random schedules, all fault-free. Results come back in
    //    task order regardless of jobs (the pool's determinism contract).
    let tasks: Vec<RunTask> = (0..cfg.runs.max(1))
        .map(|i| {
            let policy = if i == 0 {
                SchedPolicy::RoundRobin
            } else {
                SchedPolicy::Seeded(splitmix64(cfg.seed.wrapping_add(i as u64)))
            };
            let mut t = RunTask::plain(policy, Vec::new());
            t.metrics = true;
            t
        })
        .collect();
    let cache = PrefixCache::new();
    let (results, _) = run_batch_traced(source, &tasks, cfg.jobs.max(1), &cache);
    let mut passing: Vec<&RunResult> = Vec::new();
    let mut seen = BTreeSet::new();
    for res in &results {
        if res.class == CLASS_COMPLETED && seen.insert(res.digest) {
            passing.push(res);
        }
    }
    if passing.is_empty() {
        let mut r = LocalizeReport::new(&artifact.workload, VERDICT_NO_REFERENCE, failure);
        r.seal();
        return r;
    }

    let nprocs = artifact
        .procs
        .max(failing.store.n_ranks())
        .max(failing.metrics.as_ref().map_or(0, |m| m.nprocs()));

    // 3. First divergence: deepest common decision prefix; the first run
    //    reaching it is the nearest passing neighbor.
    let prefixes: Vec<usize> = passing
        .iter()
        .map(|p| common_prefix(&failing.decisions, &p.decisions))
        .collect();
    let k = prefixes.iter().copied().max().unwrap_or(0);
    let nearest = passing[prefixes.iter().position(|&p| p == k).unwrap()];
    let render = |log: &[Decision], i: usize| {
        log.get(i)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "(end of run)".to_string())
    };
    let mut div_ranks: BTreeSet<u32> = BTreeSet::new();
    for log in [&failing.decisions, &nearest.decisions] {
        if let Some(d) = log.get(k) {
            div_ranks.extend(decision_ranks(d));
        }
    }
    let divergence = Divergence {
        index: k,
        chosen: render(&failing.decisions, k),
        expected: render(&nearest.decisions, k),
        ranks: div_ranks.iter().copied().collect(),
        markers: divergence_markers(source, artifact, k),
    };
    let mut div_score = vec![0u64; nprocs];
    for &r in &div_ranks {
        if (r as usize) < nprocs {
            div_score[r as usize] = 1000;
        }
    }

    // 4. Event-graph diff vs the nearest passing trace.
    let failing_src: &dyn TraceSource = failing_trace.unwrap_or(&failing.store);
    let rank_diffs = diff_ranks(failing_src, &nearest.store).unwrap_or_default();
    let mut graph_score: Vec<u64> = (0..nprocs)
        .map(|r| rank_diffs.get(r).map_or(0, |d| d.score()))
        .collect();
    let graph_evidence: Vec<Option<String>> = (0..nprocs)
        .map(|r| {
            let d = rank_diffs.get(r).copied().unwrap_or_default();
            (d.score() > 0).then(|| {
                format!(
                    "comm edges vs nearest passing: {} missing, {} extra, {} reordered",
                    d.missing, d.extra, d.reordered
                )
            })
        })
        .collect();
    let channel_diffs = diff_channels(failing_src, &nearest.store).unwrap_or_default();

    // 5. Telemetry anomaly vs the passing sample.
    let passing_metrics: Vec<&EngineMetrics> = passing
        .iter()
        .filter_map(|p| p.metrics.as_deref())
        .collect();
    let (mut mad_scores, mad_evidence) = match failing.metrics.as_deref() {
        Some(fm) if !passing_metrics.is_empty() => anomaly_scores(fm, &passing_metrics, nprocs),
        _ => (vec![0; nprocs], vec![Vec::new(); nprocs]),
    };

    // 6. Wait-state blame: who *caused* the failing run's waiting. A
    //    pure function of the failing trace, so `--jobs` and input-plane
    //    byte-identity are preserved for free.
    let mut blame_ns = tracedbg_profile::blame_vector(&failing.store);
    blame_ns.resize(nprocs, 0);
    let mut blame_score = blame_ns.clone();

    // 7. Normalize components and combine.
    normalize(&mut graph_score);
    normalize(&mut mad_scores);
    normalize(&mut blame_score);
    let mut suspects: Vec<Suspect> = (0..nprocs)
        .map(|r| {
            let divergence = div_score[r];
            let graph = graph_score[r];
            let anomaly = mad_scores[r];
            let blame = blame_score[r];
            let mut evidence = Vec::new();
            if divergence > 0 {
                evidence.push(format!(
                    "first diverging decision (index {k}) involves rank {r}"
                ));
            }
            if let Some(e) = &graph_evidence[r] {
                evidence.push(e.clone());
            }
            evidence.extend(mad_evidence[r].iter().cloned());
            if blame > 0 {
                evidence.push(format!(
                    "wait-state blame: caused {}ns of other ranks' waiting",
                    blame_ns[r]
                ));
            }
            Suspect {
                rank: r as u32,
                score: (WEIGHT_DIVERGENCE * divergence
                    + WEIGHT_GRAPH * graph
                    + WEIGHT_ANOMALY * anomaly
                    + WEIGHT_BLAME * blame)
                    / 12,
                divergence,
                graph,
                anomaly,
                blame,
                evidence,
            }
        })
        .filter(|s| s.score > 0)
        .collect();
    suspects.sort_by(|a, b| b.score.cmp(&a.score).then(a.rank.cmp(&b.rank)));

    let mut channels: Vec<ChannelDiff> = channel_diffs
        .into_iter()
        .filter(|(_, d)| d.missing + d.extra + d.reordered > 0)
        .map(|((src, dst, tag), d)| ChannelDiff {
            src,
            dst,
            tag,
            missing: d.missing,
            extra: d.extra,
            reordered: d.reordered,
        })
        .collect();
    channels.sort_by(|a, b| {
        (b.missing + b.extra + b.reordered, a.src, a.dst, a.tag).cmp(&(
            a.missing + a.extra + a.reordered,
            b.src,
            b.dst,
            b.tag,
        ))
    });

    let mut report = LocalizeReport::new(&artifact.workload, VERDICT_LOCALIZED, failure);
    report.passing_runs = passing.len();
    report.divergence = Some(divergence);
    report.suspects = suspects;
    report.channels = channels;
    report.seal();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::Rank;

    #[test]
    fn decision_ranks_cover_both_shapes() {
        assert_eq!(decision_ranks(&Decision::Turn { rank: Rank(3) }), vec![3]);
        assert_eq!(
            decision_ranks(&Decision::Match {
                dst: Rank(0),
                src: Rank(2),
                seq: 1
            }),
            vec![0, 2]
        );
    }

    #[test]
    fn common_prefix_measures_agreement() {
        let a = [
            Decision::Turn { rank: Rank(0) },
            Decision::Turn { rank: Rank(1) },
        ];
        let b = [
            Decision::Turn { rank: Rank(0) },
            Decision::Turn { rank: Rank(2) },
        ];
        assert_eq!(common_prefix(&a, &b), 1);
        assert_eq!(common_prefix(&a, &a), 2);
        assert_eq!(common_prefix(&a, &[]), 0);
    }

    #[test]
    fn normalize_scales_to_milli_units() {
        let mut v = vec![0, 5, 10];
        normalize(&mut v);
        assert_eq!(v, vec![0, 500, 1000]);
        let mut z = vec![0, 0];
        normalize(&mut z);
        assert_eq!(z, vec![0, 0]);
    }
}
