//! `tracedbg` — command-line front end.
//!
//! ```text
//! tracedbg run <workload> [--trace out.trc] [--store dir] [--seed N] [--procs N]
//! tracedbg ingest <trace.trc | trace.tbin> --out <dir> [--segment-events N]
//! tracedbg query <dir> [--rank N | --tag T | --kind CODE | --window lo:hi]
//!                [--limit N] [--count] [--stats]
//! tracedbg view <trace.trc | store-dir> [--width N] [--svg out.svg] [--window lo:hi]
//! tracedbg analyze <trace.trc | script:path | sdl:name> [--procs N] [--json | --dot]
//! tracedbg report <trace.trc> -o report.html
//! tracedbg graph <trace.trc> --kind comm|call|trace [--format dot|vcg] [--rank N]
//! tracedbg debug <workload> [--seed N] [--procs N] [--checkpoint-every N] [-e CMD]...
//! tracedbg lint <trace.trc | script:path | sdl:name> [--procs N] [--json] [--rules SPEC]
//!               [--script SPEC]
//! tracedbg explore <workload> [--runs N] [--seed N] [--preemptions K] [--faults]
//!                  [--strategy random|systematic|both] [--dpor] [--jobs N] [--out DIR]
//!                  [--json] [--metrics [FILE]] [--progress]
//! tracedbg replay --schedule <file.sched.json> [--from-checkpoint] [--to-suspect REPORT]
//!                 [--to-critical-path REPORT] [--trace out.trc] [--json]
//! tracedbg localize (--schedule <file.sched.json> | <workload>) [--runs N] [--seed N]
//!                   [--jobs N] [--procs N] [--trace <trc|store-dir>] [--out FILE] [--json]
//! tracedbg profile (<workload> | <trace.trc|trace.tbin|store-dir> | --schedule FILE)
//!                  [--seed N] [--procs N] [--jobs N] [--out FILE] [--json]
//!                  [--perfetto FILE]
//! tracedbg stats <workload | trace.trc | store-dir> [--seed N] [--procs N]
//!                [--metrics [FILE]]
//! tracedbg bench [--quick] [--filter NAME] [--jobs N] [--out DIR]
//! tracedbg workloads
//! ```
//!
//! Workloads: `strassen`, `strassen-bug`, `lu`, `ring`, `pool`,
//! `racy-wildcard`, `racy-deadlock`, `fib:<n>`, `random:<transfers>`,
//! `script:<path>`, `sdl:<name>` (builtin scripts — `tracedbg workloads`
//! lists them; script-backed specs are the ones `analyze` and
//! `explore --dpor` can reason about statically).
//!
//! `debug` opens the p2d2-style command loop (`run`, `analyze`,
//! `stopline t <ns>`, `replay`, `step <rank>`, `probe <rank> <label>`,
//! `break <func|file:line>`, `watch <label> == <v>`, `undo`, ...); with
//! `-e` commands it runs non-interactively.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use tracedbg::prelude::*;
use tracedbg::profile::{perfetto_json, CriticalPath, ProfileInput, ProfileReport, WaitAnalysis};
use tracedbg::trace::file::{read_binary, write_binary};
use tracedbg::trace::file::{read_text, write_text, TraceFile};
use tracedbg::tracegraph::{ActionGraph, Profile};
use tracedbg::viz::{dot, vcg};
use tracedbg::viz::{render_wait_blame, ProfileSummary, WaitKindRow, WaitRankRow};
use tracedbg::viz::{ChannelRow, SuspectRow, SuspectSummary};
use tracedbg::workloads::{
    heat, lu, master_worker, planted, racy, random_comm, ring, script, scripts, strassen, wide,
};

struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--") && !v.starts_with("-e"))
                    .map(|v| (*v).clone());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else if a == "-e" {
                let cmd = it.next().cloned().unwrap_or_default();
                flags.push(("e".into(), Some(cmd)));
            } else {
                positional.push(a.clone());
            }
        }
        Opts { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Was the flag given at all (with or without a value)?
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flag(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn commands(&self) -> Vec<String> {
        self.flags
            .iter()
            .filter(|(n, _)| n == "e")
            .filter_map(|(_, v)| v.clone())
            .collect()
    }
}

fn workload_factory(
    name: &str,
    seed: u64,
    procs: usize,
) -> Result<(ProgramFactory, usize), String> {
    let f: (ProgramFactory, usize) = match name {
        "strassen" | "strassen-bug" => {
            let cfg = strassen::StrassenConfig {
                n: 32,
                nprocs: procs.max(2),
                variant: if name == "strassen-bug" {
                    strassen::Variant::JresBug
                } else {
                    strassen::Variant::Correct
                },
                seed,
                cutoff: 8,
            };
            let n = cfg.nprocs;
            (Box::new(strassen::factory(cfg)), n)
        }
        "lu" => {
            let cfg = lu::LuConfig {
                nprocs: procs.max(2),
                ..Default::default()
            };
            let n = cfg.nprocs;
            (Box::new(lu::factory(cfg)), n)
        }
        "ring" => {
            let cfg = ring::RingConfig {
                nprocs: procs.max(2),
                ..Default::default()
            };
            let n = cfg.nprocs;
            (Box::new(ring::factory(cfg)), n)
        }
        "heat" => {
            let cfg = heat::HeatConfig {
                nprocs: procs.max(2),
                ..Default::default()
            };
            let n = cfg.nprocs;
            (Box::new(heat::factory(cfg)), n)
        }
        "pool" => {
            let cfg = master_worker::PoolConfig {
                nprocs: procs.max(2),
                ..Default::default()
            };
            let n = cfg.nprocs;
            (Box::new(master_worker::factory(cfg)), n)
        }
        "planted-wildcard" | "planted-orphan" | "planted-pipeline" => {
            // The localization corpus: each workload carries a known
            // planted bug at `bug_rank` (see `workloads::planted`).
            let cfg = planted::PlantedConfig {
                nprocs: procs.clamp(4, 16),
                ..Default::default()
            };
            let n = cfg.nprocs;
            match name {
                "planted-wildcard" => (Box::new(planted::planted_wildcard_factory(cfg)), n),
                "planted-orphan" => (Box::new(planted::planted_orphan_factory(cfg)), n),
                _ => (Box::new(planted::planted_pipeline_factory(cfg)), n),
            }
        }
        "stencil" => {
            // --procs is the total rank count; the grid side is its
            // (floored) square root, so 1024 procs = the 32x32 grid.
            let p = (procs.max(4) as f64).sqrt().floor() as usize;
            let cfg = wide::StencilConfig {
                p: p.max(2),
                ..Default::default()
            };
            let n = cfg.p * cfg.p;
            (Box::new(wide::stencil_factory(cfg)), n)
        }
        "butterfly" => {
            let n = procs.max(2).next_power_of_two();
            let cfg = wide::ButterflyConfig { nprocs: n };
            (Box::new(wide::butterfly_factory(cfg)), n)
        }
        "racy-wildcard" | "racy-deadlock" => {
            let cfg = racy::RacyConfig {
                nprocs: procs.clamp(3, 16),
                ..Default::default()
            };
            let n = cfg.nprocs;
            if name == "racy-wildcard" {
                (Box::new(racy::wildcard_race_factory(cfg)), n)
            } else {
                (Box::new(racy::orphan_deadlock_factory(cfg)), n)
            }
        }
        other => {
            if let Some(n) = other.strip_prefix("fib:") {
                let n: u64 = n.parse().map_err(|_| format!("bad fib input {n:?}"))?;
                (
                    Box::new(move || vec![tracedbg::workloads::fib::program(n)]),
                    1,
                )
            } else if let Some(t) = other.strip_prefix("random:") {
                let t: usize = t.parse().map_err(|_| format!("bad transfer count {t:?}"))?;
                let nprocs = procs.max(2);
                let pat = random_comm::generate(seed, nprocs, t);
                (Box::new(move || random_comm::programs(&pat, seed)), nprocs)
            } else if other.starts_with("script:") || other.starts_with("sdl:") {
                let (parsed, file, nprocs) = script_workload(other, procs, false)?
                    .expect("prefixed specs always resolve to a script");
                (
                    Box::new(move || script::programs(&parsed, nprocs, &file)),
                    nprocs,
                )
            } else {
                return Err(format!(
                    "unknown workload {other:?} (try `tracedbg workloads`)"
                ));
            }
        }
    };
    Ok(f)
}

/// Resolve a script-backed workload spec — `script:<path>`, `sdl:<name>`,
/// or (with `allow_bare`) a bare builtin script name — to its parsed
/// script, the file label its trace sites carry, and the process count it
/// runs with. `Ok(None)` means the spec names a native workload instead.
fn script_workload(
    name: &str,
    procs: usize,
    allow_bare: bool,
) -> Result<Option<(script::Script, String, usize)>, String> {
    if let Some(path) = name.strip_prefix("script:") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let parsed = script::parse(&src).map_err(|e| e.to_string())?;
        return Ok(Some((parsed, path.to_string(), procs.max(2))));
    }
    let explicit = name.starts_with("sdl:");
    if !explicit && !allow_bare {
        return Ok(None);
    }
    let bare = name.strip_prefix("sdl:").unwrap_or(name);
    match scripts::builtin(bare) {
        Some(b) => Ok(Some((b.parse(), b.file(), procs.max(b.min_procs)))),
        None if explicit => Err(format!(
            "unknown builtin script {bare:?} (try `tracedbg workloads`)"
        )),
        None => Ok(None),
    }
}

/// Read a recorded trace from any of its on-disk forms: text (`.trc`),
/// binary (`.tbin`), or an indexed store directory (`tracedbg ingest`),
/// which is materialized through the [`TraceSource`] trait.
fn load_store(path: &str) -> Result<TraceStore, String> {
    if std::path::Path::new(path).is_dir() {
        let disk = DiskStore::open(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        return materialize(&disk).map_err(|e| e.to_string());
    }
    let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let tf = if path.ends_with(".tbin") {
        read_binary(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))?
    } else {
        read_text(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))?
    };
    Ok(tf.into_store())
}

/// Read a trace file (text or binary) without building the in-memory
/// index — `ingest` only needs the raw records.
fn load_trace_file(path: &str) -> Result<TraceFile, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".tbin") {
        read_binary(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
    } else {
        read_text(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let name = opts
        .positional
        .first()
        .ok_or("usage: tracedbg run <workload>")?;
    let seed = opts.num("seed", 42u64);
    let procs = opts.num("procs", 8usize);
    let (factory, _n) = workload_factory(name, seed, procs)?;
    let mut session = Session::launch(SessionConfig::default(), factory);
    // --store: stream records into an indexed on-disk store *while the
    // run executes* — the sink rides the monitor's flush path, nothing is
    // re-read from memory afterwards.
    let streaming = match opts.flag("store") {
        Some(dir) => {
            let w = StoreWriter::create(
                std::path::Path::new(dir),
                StoreOptions {
                    segment_events: opts.num("segment-events", 65536usize),
                },
            )
            .map_err(|e| e.to_string())?;
            let shared = SharedWriter::new(w);
            session.attach_trace_sink(Box::new(shared.clone()));
            Some((shared, dir.to_string()))
        }
        None => None,
    };
    let status = session.run();
    println!("outcome: {status:?}");
    let store = session.trace();
    if let Some((shared, dir)) = streaming {
        session.detach_trace_sink();
        let summary = shared
            .finish(store.sites(), store.n_ranks())
            .map_err(|e| e.to_string())?;
        println!(
            "store written to {dir} ({} events, {} segments, {} bytes)",
            summary.n_events, summary.n_segments, summary.bytes
        );
    }
    println!("{}", tracedbg::trace::TraceStats::compute(store.records()));
    let report = HistoryReport::analyze(&store);
    println!("{report}");
    if let Some(out) = opts.flag("trace") {
        let file = TraceFile::new(
            store.records().to_vec(),
            store.sites().clone(),
            store.n_ranks(),
        );
        let mut w = std::fs::File::create(out).map_err(|e| e.to_string())?;
        if out.ends_with(".tbin") {
            write_binary(&mut w, &file).map_err(|e| e.to_string())?;
        } else {
            write_text(&mut w, &file).map_err(|e| e.to_string())?;
        }
        println!("trace written to {out}");
    }
    Ok(())
}

fn cmd_view(opts: &Opts) -> Result<(), String> {
    let path = opts
        .positional
        .first()
        .ok_or("usage: tracedbg view <trace.trc>")?;
    let store = load_store(path)?;
    let matching = MessageMatching::build(&store);
    let mut model = TimelineModel::build(&store, &matching, false);
    if let Some(win) = opts.flag("window") {
        let (lo, hi) = win
            .split_once(':')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or("bad --window, expected lo:hi")?;
        model = model.window(lo, hi);
    }
    let width = opts.num("width", 120usize);
    println!("{}", render_ascii(&model, width));
    if let Some(svg_path) = opts.flag("svg") {
        std::fs::write(svg_path, render_svg(&model, 1100.0)).map_err(|e| e.to_string())?;
        println!("svg written to {svg_path}");
    }
    Ok(())
}

/// Human rendering of a static analysis: the communication graph with
/// lattice values, then the derived facts the other consumers use.
fn render_analysis(workload: &str, a: &tracedbg::analysis::Analysis) -> String {
    use tracedbg::analysis::SiteOp;
    let mut out = String::new();
    let g = &a.graph;
    out.push_str(&format!(
        "static analysis of {workload} ({} procs, graph {}, values {})\n",
        g.nprocs,
        if g.complete { "complete" } else { "partial" },
        if g.exact { "exact" } else { "approximate" },
    ));
    out.push_str("--- communication sites ---\n");
    for (i, s) in g.sites.iter().enumerate() {
        let desc = match &s.op {
            SiteOp::Send { dst, tag } => format!("send -> {{{}}} tag {tag}", dst.render()),
            SiteOp::Recv { src, tag, wildcard } => {
                let t = match tag {
                    Some(t) => format!(" tag {t}"),
                    None => " any tag".to_string(),
                };
                let w = if *wildcard { " (wildcard)" } else { "" };
                format!("recv <- {{{}}}{t}{w}", src.render())
            }
            SiteOp::Barrier => "barrier".to_string(),
        };
        out.push_str(&format!(
            "rank {} {}:{} ({})  {desc}  [{} partner(s)]\n",
            s.rank, g.file, s.line, s.func, a.may_match.partners[i]
        ));
    }
    out.push_str(&format!(
        "--- may-match: {} send/recv pair(s) ---\n",
        a.may_match.pairs.len()
    ));
    let indep = a.independence.pairs();
    out.push_str(&format!(
        "independent rank pairs: {}\n",
        if indep.is_empty() {
            "none".to_string()
        } else {
            indep
                .iter()
                .map(|(x, y)| format!("({x},{y})"))
                .collect::<Vec<_>>()
                .join(" ")
        }
    ));
    let dead = a.deadlocked_ranks();
    if dead.is_empty() {
        out.push_str("static deadlock: none\n");
    } else {
        let set: Vec<String> = dead.iter().map(|r| r.to_string()).collect();
        out.push_str(&format!("static deadlock: rank(s) {}\n", set.join(", ")));
    }
    out
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let path = opts.positional.first().ok_or(
        "usage: tracedbg analyze <trace.trc | script:path | sdl:name> \
         [--procs N] [--json | --dot]",
    )?;
    // Script-backed specs get the static analysis; anything else is a
    // recorded trace and gets the history analyzer.
    if let Some((parsed, file, nprocs)) = script_workload(path, opts.num("procs", 8usize), true)? {
        let a = tracedbg::analysis::analyze(&parsed, nprocs, &file);
        if opts.has("json") {
            println!("{}", a.to_json(path));
        } else if opts.has("dot") {
            println!("{}", a.to_dot(path));
        } else {
            print!("{}", render_analysis(path, &a));
        }
        return Ok(());
    }
    let store = load_store(path)?;
    let report = HistoryReport::analyze(&store);
    println!("{report}");
    println!();
    let actions = ActionGraph::build(&store);
    println!("--- action graph (§4.4) ---");
    print!("{}", actions.render());
    let profile = Profile::compute(&store);
    if !profile.is_empty() {
        println!("\n--- function profile (simulated time) ---");
        print!("{profile}");
    }
    Ok(())
}

fn cmd_report(opts: &Opts) -> Result<(), String> {
    let path = opts
        .positional
        .first()
        .ok_or("usage: tracedbg report <trace.trc> [--o out.html]")?;
    let store = load_store(path)?;
    let analysis = HistoryReport::analyze(&store).to_string();
    let html = tracedbg::viz::render_html_report(&store, &analysis, path);
    let out = opts.flag("o").unwrap_or("trace_report.html");
    std::fs::write(out, html).map_err(|e| e.to_string())?;
    println!("report written to {out}");
    Ok(())
}

fn cmd_graph(opts: &Opts) -> Result<(), String> {
    let path = opts
        .positional
        .first()
        .ok_or("usage: tracedbg graph <trace.trc> --kind comm|call|trace")?;
    let store = load_store(path)?;
    let kind = opts.flag("kind").unwrap_or("comm");
    let format = opts.flag("format").unwrap_or("dot");
    let out = match (kind, format) {
        ("comm", "dot") => {
            let mm = MessageMatching::build(&store);
            dot::comm_graph_dot(&CommGraph::build(&store, &mm))
        }
        ("comm", "vcg") => {
            let mm = MessageMatching::build(&store);
            vcg::comm_graph_vcg(&CommGraph::build(&store, &mm))
        }
        ("call", fmt) => {
            let rank = Rank(opts.num("rank", 0u32));
            let tg = TraceGraph::build(&store);
            let cg = CallGraph::project(&tg, rank);
            if fmt == "vcg" {
                vcg::call_graph_vcg(&cg, 4)
            } else {
                dot::call_graph_dot(&cg, 4)
            }
        }
        ("trace", fmt) => {
            let tg = TraceGraph::build(&store);
            if fmt == "vcg" {
                vcg::trace_graph_vcg(&tg)
            } else {
                dot::trace_graph_dot(&tg)
            }
        }
        (k, f) => return Err(format!("unknown kind/format {k}/{f}")),
    };
    println!("{out}");
    Ok(())
}

fn cmd_debug(opts: &Opts) -> Result<(), String> {
    let name = opts
        .positional
        .first()
        .ok_or("usage: tracedbg debug <workload>")?;
    let seed = opts.num("seed", 42u64);
    let procs = opts.num("procs", 8usize);
    let (factory, _) = workload_factory(name, seed, procs)?;
    let cfg = SessionConfig {
        // Checkpoint every Nth stop for O(delta) undo/replay; 0 disables
        // the cache and every replay re-executes from scratch.
        checkpoint_every: opts.num("checkpoint-every", 1usize),
        ..SessionConfig::default()
    };
    let session = Session::launch(cfg, factory);
    let mut ci = CommandInterface::new(session);
    let scripted = opts.commands();
    if !scripted.is_empty() {
        for cmd in scripted {
            println!("{}", ci.execute(&cmd));
        }
        return Ok(());
    }
    println!("tracedbg interactive debugger — 'help' for commands, 'quit' to exit");
    let stdin = std::io::stdin();
    loop {
        print!("(tracedbg) ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "quit" | "exit" | "q" => break,
            "help" => println!(
                "commands: run | continue | step [rank] | markers | where <rank> |\n\
                 probe <rank> <label> | stopline t <ns> | stopline markers <m...> |\n\
                 replay | undo | analyze | break <func|file:line> |\n\
                 watch <label> (change | == v | != v) | delete breaks | why <rank> |\n\
                 pending | view [width] | setdef <name> <spec> | sets |\n\
                 step <set-spec> | find <send to N|recv on N|tag T|fn F|probe L> |\n\
                 verify | restart | quit"
            ),
            cmd => println!("{}", ci.execute(cmd)),
        }
    }
    Ok(())
}

/// `tracedbg lint` — run the correctness checker over a recorded trace
/// (post-mortem front end) or a workload script (pre-execution front end).
/// Exits non-zero when any error-severity diagnostic is found.
fn cmd_lint(opts: &Opts) -> Result<ExitCode, String> {
    use tracedbg::lint::{self, report};

    let input = opts.positional.first().ok_or(
        "usage: tracedbg lint <trace.trc | trace.tbin | script:path | sdl:name> \
         [--procs N] [--json] [--rules SPEC] [--script SPEC]\n\
         SPEC: comma-separated rule IDs to run, or -ID entries to skip \
         (e.g. --rules TDL001,TDL005 or --rules -SDL105).\n\
         --script: the script the trace was recorded from, enabling the \
         analysis-divergence rule (TDL008).\n\
         `tracedbg lint rules` lists the catalog.",
    )?;
    if input == "rules" {
        for info in lint::rule_catalog() {
            println!(
                "{}  {:<7}  {:<6}  {:<70}  {}",
                info.id,
                info.severity.to_string(),
                info.front_end,
                info.description,
                info.id.docs_url()
            );
        }
        return Ok(ExitCode::SUCCESS);
    }
    let cfg = match opts.flag("rules") {
        Some(spec) => lint::LintConfig::from_spec(spec),
        None => lint::LintConfig::default(),
    };
    let diags = if let Some((parsed, file, nprocs)) =
        script_workload(input, opts.num("procs", 8usize), false)?
    {
        lint::lint_script(&parsed, nprocs, &file, &cfg)
    } else {
        let store = load_store(input)?;
        match opts.flag("script") {
            Some(spec) => {
                // Accept bare paths too: `--script foo.script` means
                // `--script script:foo.script`.
                let norm = if spec.starts_with("script:")
                    || spec.starts_with("sdl:")
                    || scripts::builtin(spec).is_some()
                {
                    spec.to_string()
                } else {
                    format!("script:{spec}")
                };
                let (parsed, file, _) = script_workload(&norm, store.n_ranks(), true)?
                    .expect("normalized spec always resolves");
                // The analysis must model exactly the traced execution:
                // its rank count, not the spec's default.
                lint::lint_trace_with_script(&store, &parsed, store.n_ranks(), &file, &cfg)
            }
            None => lint::lint_trace(&store, &cfg),
        }
    };
    if opts.has("json") {
        println!("{}", report::render_json(&diags));
    } else {
        print!("{}", report::render_human(&diags));
    }
    Ok(if report::has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `tracedbg explore` — search the schedule space (and optionally the
/// fault space) of a workload for deadlocks, panics, and lint violations.
/// Each finding is saved as a minimized `.sched.json` artifact that
/// `tracedbg replay --schedule` re-executes deterministically. Exits
/// non-zero when any violation was found, mirroring `lint`.
fn cmd_explore(opts: &Opts) -> Result<ExitCode, String> {
    let name = opts.positional.first().ok_or(
        "usage: tracedbg explore <workload> [--runs N] [--seed N] [--procs N] \
         [--preemptions K] [--faults] [--strategy random|systematic|both] \
         [--dpor] [--jobs N] [--out DIR] [--json] [--metrics [FILE]] [--progress]",
    )?;
    let seed = opts.num("seed", 42u64);
    let procs = opts.num("procs", 8usize);
    let runs = opts.num("runs", 64usize);
    let (factory, _n) = workload_factory(name, seed, procs)?;
    // --dpor: prove rank independence statically and let the systematic
    // search skip interleavings that only permute commuting decisions.
    // Only script-backed workloads have a source to analyze.
    let independence = if opts.has("dpor") {
        let (parsed, file, nprocs) = script_workload(name, procs, false)?.ok_or(
            "--dpor needs a script-backed workload (script:<path> or sdl:<name>) \
             so the static analysis has a source to prove independence from",
        )?;
        Some(tracedbg::analysis::analyze(&parsed, nprocs, &file).independence)
    } else {
        None
    };
    let cfg = ExploreConfig {
        workload: name.clone(),
        seed,
        runs,
        preemptions: opts.num("preemptions", 2usize),
        inject_faults: opts.has("faults"),
        strategy: opts.flag("strategy").unwrap_or("both").parse()?,
        // 0 = one worker per available core; findings are identical for
        // every job count at a fixed seed.
        jobs: opts.num("jobs", 0usize),
        metrics: opts.has("metrics"),
        progress: opts.has("progress"),
        independence,
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let (report, metrics) = Explorer::new(cfg, factory).explore_traced();
    let wall_ms = started.elapsed().as_millis() as u64;
    if opts.has("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    let out_dir = opts.flag("out").unwrap_or("target/explore");
    if let Some(m) = metrics {
        // Telemetry goes to its own file so the ExploreReport JSON above
        // stays byte-comparable across job counts.
        let metrics_path = match opts.flag("metrics") {
            Some(p) => p.to_string(),
            None => {
                std::fs::create_dir_all(out_dir)
                    .map_err(|e| format!("cannot create {out_dir}: {e}"))?;
                format!("{out_dir}/metrics.json")
            }
        };
        std::fs::write(&metrics_path, m.to_json())
            .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
        if !opts.has("json") {
            println!("metrics written to {metrics_path}");
        }
    }
    let found = !report.findings.is_empty();
    if found {
        std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
        // Stamped at write time only: the in-report JSON stays free of
        // wall-clock data, but every artifact on disk records where it
        // came from.
        let meta = ArtifactMeta {
            jobs: report.jobs as u64,
            runs: runs as u64,
            wall_ms,
            version: env!("CARGO_PKG_VERSION").to_string(),
        };
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        for (i, f) in report.findings.iter().enumerate() {
            let path = format!("{out_dir}/{safe}-{}-{i}.sched.json", f.class);
            let mut artifact = f.artifact.clone();
            artifact.meta = Some(meta.clone());
            std::fs::write(&path, artifact.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            if !opts.has("json") {
                println!("schedule written to {path}");
            }
        }
    }
    Ok(if found {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Convert a [`ProfileReport`] into the viz crate's renderer rows.
fn profile_view(r: &ProfileReport) -> (ProfileSummary, Vec<WaitRankRow>, Vec<WaitKindRow>) {
    let summary = ProfileSummary {
        workload: r.workload.clone(),
        procs: r.procs,
        events: r.events,
        makespan: r.makespan,
        critical_path_len: r.critical_path_len,
        busy_total: r.busy_total,
        wait_total: r.wait_total,
        flight_dropped: r.flight_dropped,
    };
    let ranks = r
        .ranks
        .iter()
        .map(|p| WaitRankRow {
            rank: p.rank,
            busy: p.busy,
            wait: p.wait,
            blamed: p.blamed,
            path: p.path,
        })
        .collect();
    let kinds = r
        .wait_kinds
        .iter()
        .map(|k| WaitKindRow {
            kind: k.kind.clone(),
            count: k.count,
            cost: k.cost,
        })
        .collect();
    (summary, ranks, kinds)
}

/// `tracedbg profile` — critical-path profiling and wait-state analysis
/// over any trace plane: a workload (run once under the full recorder
/// with telemetry on), a recorded `.trc`/`.tbin` file or ingested store
/// directory, or a failing explorer artifact (`--schedule`, replaying its
/// recorded decisions and faults). Prints the wait/blame table, writes
/// the sealed [`ProfileReport`] with `--out`, and with `--perfetto FILE`
/// exports a Chrome/Perfetto trace-event timeline (load it in
/// `ui.perfetto.dev` or `chrome://tracing`: one track per rank, wait
/// slices with their causing rank, message-flow arrows, and a dedicated
/// critical-path track). The report is a pure function of the trace, so
/// it is byte-identical for every `--jobs N` and every input plane that
/// delivers the same records.
fn cmd_profile(opts: &Opts) -> Result<(), String> {
    const USAGE: &str = "usage: tracedbg profile (<workload> | <trace.trc|trace.tbin|store-dir> \
         | --schedule <file.sched.json>) [--seed N] [--procs N] [--jobs N] [--out FILE] \
         [--json] [--perfetto FILE]";
    // Accepted for CLI symmetry with explore/localize; the report never
    // depends on it.
    let _jobs = opts.num("jobs", 1usize);
    let source: String;
    let workload: String;
    let procs: usize;
    let seed: u64;
    let flight_dropped: u64;
    let store: TraceStore;
    if let Some(path) = opts.flag("schedule") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let artifact = ScheduleArtifact::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        let (factory, _n) = workload_factory(&artifact.workload, artifact.seed, artifact.procs)?;
        // The artifact usually records a failure; its panics are expected.
        tracedbg::mpsim::set_quiet_panics(true);
        let mut session = Session::launch(
            SessionConfig {
                policy: SchedPolicy::Scripted(artifact.decisions.clone()),
                faults: tracedbg::mpsim::FaultPlan::new(artifact.faults.clone()),
                ..SessionConfig::default()
            },
            factory,
        );
        session.run();
        tracedbg::mpsim::set_quiet_panics(false);
        flight_dropped = session.engine().flight_dropped();
        store = session.trace();
        source = "schedule".into();
        workload = artifact.workload.clone();
        procs = artifact.procs;
        seed = artifact.seed;
    } else {
        let name = opts.positional.first().ok_or(USAGE)?;
        if std::path::Path::new(name).exists() {
            source = if std::path::Path::new(name).is_dir() {
                "store"
            } else {
                "trace"
            }
            .into();
            store = load_store(name)?;
            workload = name.clone();
            procs = store.n_ranks();
            seed = 0;
            flight_dropped = 0;
        } else {
            seed = opts.num("seed", 42u64);
            let procs_req = opts.num("procs", 8usize);
            let (factory, _n) = workload_factory(name, seed, procs_req)?;
            let mut engine = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::full(),
                    metrics: true,
                    ..Default::default()
                },
                factory(),
            );
            engine.run();
            flight_dropped = engine.flight_dropped();
            store = engine.trace_store();
            source = "workload".into();
            workload = name.clone();
            procs = store.n_ranks();
        }
    }
    let report = ProfileReport::build(
        &store,
        ProfileInput {
            source: &source,
            workload: &workload,
            procs,
            seed,
            flight_dropped,
        },
    );
    if opts.has("json") {
        println!("{}", report.to_json());
    } else {
        let (summary, ranks, kinds) = profile_view(&report);
        print!("{}", render_wait_blame(&summary, &ranks, &kinds));
        if !report.path_sites.is_empty() {
            println!("critical path by site:");
            for s in report.path_sites.iter().take(4) {
                println!(
                    "  {:>4}.{}% {}",
                    s.share_millis / 10,
                    s.share_millis % 10,
                    s.site
                );
            }
        }
    }
    if let Some(out) = opts.flag("out") {
        std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        if !opts.has("json") {
            println!("report written to {out}");
        }
    }
    if let Some(out) = opts.flag("perfetto") {
        let matching = MessageMatching::build(&store);
        let waits = WaitAnalysis::build(&store, &matching);
        let path = CriticalPath::build(&store, &matching);
        std::fs::write(out, perfetto_json(&store, &matching, &waits, &path))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        if !opts.has("json") {
            println!("perfetto trace written to {out}");
        }
    }
    Ok(())
}

/// `tracedbg stats` — run a workload once with engine telemetry on and
/// show the AIMS-statistics-style per-rank profile (message volume, wait
/// turns); `--metrics` additionally writes the machine-readable
/// [`MetricsReport`] JSON.
fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let name = opts.positional.first().ok_or(
        "usage: tracedbg stats <workload | trace.trc | store-dir> \
         [--seed N] [--procs N] [--metrics [FILE]]",
    )?;
    // Recorded-trace mode: stream the statistics off any trace plane
    // through `TraceSource` — a store directory is never materialized.
    if std::path::Path::new(name).exists() {
        let stats = if std::path::Path::new(name).is_dir() {
            let disk = DiskStore::open(std::path::Path::new(name)).map_err(|e| e.to_string())?;
            TraceStats::from_source(&disk).map_err(|e| e.to_string())?
        } else {
            TraceStats::from_source(&load_store(name)?).map_err(|e| e.to_string())?
        };
        print!("{stats}");
        return Ok(());
    }
    let seed = opts.num("seed", 42u64);
    let procs = opts.num("procs", 8usize);
    let (factory, _n) = workload_factory(name, seed, procs)?;
    let started = std::time::Instant::now();
    let mut engine = Engine::launch(
        EngineConfig {
            recorder: RecorderConfig::full(),
            metrics: true,
            ..Default::default()
        },
        factory(),
    );
    let outcome = engine.run();
    let wall_ms = started.elapsed().as_millis() as u64;
    println!("outcome: {outcome:?}");
    let snapshot_ns = engine.snapshot_ns();
    let m = engine
        .take_metrics()
        .expect("engine was launched with metrics on");
    print!("{}", render_rank_profile(&m));
    if opts.has("metrics") {
        let nprocs = m.nprocs() as u64;
        let report = MetricsReport::new(
            "stats",
            name,
            nprocs,
            seed,
            1,
            tracedbg::obs::EventMetrics {
                runs: 1,
                engine: m,
                explore: None,
            },
            tracedbg::obs::TimingMetrics {
                wall_ms: wall_ms.max(1),
                snapshot_ns,
                ..Default::default()
            },
        );
        let path = opts.flag("metrics").unwrap_or("metrics.json");
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

/// `tracedbg replay --schedule` — re-execute an explorer artifact. The
/// artifact names its workload; every scheduling decision and injected
/// fault comes from the file, so the outcome is reproducible run-to-run.
/// Exits zero iff the replay reproduced the artifact's recorded outcome.
fn cmd_replay(opts: &Opts) -> Result<ExitCode, String> {
    let path = opts
        .flag("schedule")
        .ok_or("usage: tracedbg replay --schedule <file.sched.json> [--trace out.trc] [--json]")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let artifact = ScheduleArtifact::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    let (factory, _n) = workload_factory(&artifact.workload, artifact.seed, artifact.procs)?;
    if let Some(report_path) = opts.flag("to-suspect") {
        return replay_to_suspect(&artifact, factory, report_path, opts);
    }
    if let Some(report_path) = opts.flag("to-critical-path") {
        return replay_to_critical_path(&artifact, factory, report_path, opts);
    }
    if opts.has("from-checkpoint") {
        // Checkpointed re-execution: snapshot mid-schedule, restore, and
        // check the continued run is byte-identical to the straight one —
        // the restore-determinism audit for a failure artifact.
        tracedbg::mpsim::set_quiet_panics(true);
        let ck = replay_schedule_from_checkpoint(&artifact, factory);
        tracedbg::mpsim::set_quiet_panics(false);
        if opts.has("json") {
            println!(
                "{{\"workload\":{},\"class\":{},\"restored_class\":{},\"snapshot_decisions\":{},\"reproduced\":{}}}",
                json_string(&artifact.workload),
                json_string(&ck.class),
                json_string(&ck.restored_class),
                ck.snapshot_decisions
                    .map_or("null".to_string(), |n| n.to_string()),
                ck.reproduced,
            );
        } else {
            println!("replaying {artifact} (from checkpoint)");
            println!("straight outcome: {} ({})", ck.class, ck.detail);
            match ck.snapshot_decisions {
                Some(n) => println!(
                    "restored outcome: {} (snapshot at {n} decision(s))",
                    ck.restored_class
                ),
                None => println!(
                    "restored outcome: {} (run ended before the snapshot point; \
                     compared against a straight re-execution)",
                    ck.restored_class
                ),
            }
            println!(
                "{}",
                if ck.reproduced {
                    "reproduced: restored run is byte-identical to the straight run"
                } else {
                    "did NOT reproduce: restored run diverged from the straight run"
                }
            );
        }
        return Ok(if ck.reproduced {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    // The replayed failure is the expected outcome; keep panic backtraces
    // of the simulated processes off stderr.
    tracedbg::mpsim::set_quiet_panics(true);
    let mut replay = replay_schedule(&artifact, factory);
    tracedbg::mpsim::set_quiet_panics(false);
    let expected = artifact.failure.as_deref().unwrap_or("completed");
    let reproduced = replay.class == expected && !replay.diverged;
    if opts.has("json") {
        println!(
            "{{\"workload\":{},\"class\":{},\"expected\":{},\"detail\":{},\"diverged\":{},\"reproduced\":{}}}",
            json_string(&artifact.workload),
            json_string(&replay.class),
            json_string(expected),
            json_string(&replay.detail),
            replay.diverged,
            reproduced,
        );
    } else {
        println!("replaying {artifact}");
        println!("outcome: {} ({})", replay.class, replay.detail);
        if replay.diverged {
            println!("WARNING: schedule diverged — this run does not reproduce the artifact");
        }
        println!(
            "{}",
            if reproduced {
                format!("reproduced recorded failure class '{expected}'")
            } else {
                format!("did NOT reproduce '{expected}'")
            }
        );
    }
    if let Some(out) = opts.flag("trace") {
        let store = replay.trace();
        let file = TraceFile::new(
            store.records().to_vec(),
            store.sites().clone(),
            store.n_ranks(),
        );
        let mut w = std::fs::File::create(out).map_err(|e| e.to_string())?;
        if out.ends_with(".tbin") {
            write_binary(&mut w, &file).map_err(|e| e.to_string())?;
        } else {
            write_text(&mut w, &file).map_err(|e| e.to_string())?;
        }
        if !opts.has("json") {
            println!("trace written to {out}");
        }
    }
    Ok(if reproduced {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `tracedbg replay --to-suspect` — re-execute a failing schedule and
/// stop every process at the divergence frontier a `tracedbg localize`
/// report recorded: the point where the failing run first left the
/// passing envelope. The failing execution runs once to record its match
/// log (pinning wildcard choices) and seed the checkpoint cache, then the
/// stopline replay jumps to the frontier and prints where each top
/// suspect is stopped.
fn replay_to_suspect(
    artifact: &ScheduleArtifact,
    factory: ProgramFactory,
    report_path: &str,
    opts: &Opts,
) -> Result<ExitCode, String> {
    let rjson = std::fs::read_to_string(report_path)
        .map_err(|e| format!("cannot read {report_path}: {e}"))?;
    let report = tracedbg::localize::LocalizeReport::from_json(&rjson)?;
    let d = report.divergence.as_ref().ok_or_else(|| {
        format!(
            "{report_path}: verdict {:?} has no divergence frontier to replay to",
            report.verdict
        )
    })?;
    let stopline = Stopline {
        markers: MarkerVector::from_counts(d.markers.clone()),
        origin: format!("localize divergence at decision {}", d.index),
    };
    tracedbg::mpsim::set_quiet_panics(true);
    let mut session = Session::launch(
        SessionConfig {
            policy: SchedPolicy::Scripted(artifact.decisions.clone()),
            faults: tracedbg::mpsim::FaultPlan::new(artifact.faults.clone()),
            ..SessionConfig::default()
        },
        factory,
    );
    session.run();
    let status = format!("{:?}", session.replay_to(&stopline));
    tracedbg::mpsim::set_quiet_panics(false);
    let markers = session.markers();
    let reached = markers.counts() == d.markers.as_slice();
    let join = |v: &[u64]| {
        v.iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    if opts.has("json") {
        println!(
            "{{\"origin\":{},\"target\":[{}],\"markers\":[{}],\"reached\":{},\"status\":{}}}",
            json_string(&stopline.origin),
            join(&d.markers),
            join(markers.counts()),
            reached,
            json_string(&status),
        );
    } else {
        println!("replaying {artifact}");
        println!("stopline: {} -> markers {:?}", stopline.origin, d.markers);
        println!("status: {status}");
        for s in report.suspects.iter().take(2) {
            println!("suspect P{} (score {}):", s.rank, s.score);
            for line in session.where_is(Rank(s.rank)) {
                println!("  {line}");
            }
        }
        println!(
            "{}",
            if reached {
                "stopped at the divergence frontier"
            } else {
                "did NOT reach the divergence frontier"
            }
        );
    }
    Ok(if reached {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `tracedbg replay --to-critical-path` — re-execute a failing schedule
/// and stop every process at the causal frontier of the critical path's
/// terminal event, as recorded by `tracedbg profile`. Every rank halts at
/// the last execution marker in the terminal's causal past, so the
/// stopped state shows exactly what the makespan-bounding chain was
/// waiting on.
fn replay_to_critical_path(
    artifact: &ScheduleArtifact,
    factory: ProgramFactory,
    report_path: &str,
    opts: &Opts,
) -> Result<ExitCode, String> {
    let rjson = std::fs::read_to_string(report_path)
        .map_err(|e| format!("cannot read {report_path}: {e}"))?;
    let report = ProfileReport::from_json(&rjson)?;
    if report.frontier_markers.is_empty() {
        return Err(format!(
            "{report_path}: profile of an empty trace has no critical-path frontier"
        ));
    }
    let stopline = Stopline {
        markers: MarkerVector::from_counts(report.frontier_markers.clone()),
        origin: format!(
            "critical-path terminal ({}ns path)",
            report.critical_path_len
        ),
    };
    tracedbg::mpsim::set_quiet_panics(true);
    let mut session = Session::launch(
        SessionConfig {
            policy: SchedPolicy::Scripted(artifact.decisions.clone()),
            faults: tracedbg::mpsim::FaultPlan::new(artifact.faults.clone()),
            ..SessionConfig::default()
        },
        factory,
    );
    session.run();
    let status = format!("{:?}", session.replay_to(&stopline));
    tracedbg::mpsim::set_quiet_panics(false);
    let markers = session.markers();
    let reached = markers.counts() == report.frontier_markers.as_slice();
    let join = |v: &[u64]| {
        v.iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    if opts.has("json") {
        println!(
            "{{\"origin\":{},\"target\":[{}],\"markers\":[{}],\"reached\":{},\"status\":{}}}",
            json_string(&stopline.origin),
            join(&report.frontier_markers),
            join(markers.counts()),
            reached,
            json_string(&status),
        );
    } else {
        println!("replaying {artifact}");
        println!(
            "stopline: {} -> markers {:?}",
            stopline.origin, report.frontier_markers
        );
        println!("status: {status}");
        if let Some(step) = report.path.last() {
            println!(
                "critical path ends at P{} marker {} ({})",
                step.rank, step.marker, step.site
            );
            for line in session.where_is(Rank(step.rank)) {
                println!("  {line}");
            }
        }
        println!(
            "{}",
            if reached {
                "stopped at the critical-path frontier"
            } else {
                "did NOT reach the critical-path frontier"
            }
        );
    }
    Ok(if reached {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Convert a [`tracedbg::localize::LocalizeReport`] into the viz crate's
/// renderer rows (viz stays a leaf crate and takes plain structs).
fn suspect_view(
    r: &tracedbg::localize::LocalizeReport,
) -> (SuspectSummary, Vec<SuspectRow>, Vec<ChannelRow>) {
    let summary = SuspectSummary {
        workload: r.workload.clone(),
        verdict: r.verdict.clone(),
        failure: r.failure.clone(),
        passing_runs: r.passing_runs,
        divergence: r
            .divergence
            .as_ref()
            .map(|d| (d.index, d.chosen.clone(), d.expected.clone())),
        markers: r
            .divergence
            .as_ref()
            .map(|d| d.markers.clone())
            .unwrap_or_default(),
    };
    let suspects = r
        .suspects
        .iter()
        .map(|s| SuspectRow {
            rank: s.rank,
            score: s.score,
            divergence: s.divergence,
            graph: s.graph,
            anomaly: s.anomaly,
            blame: s.blame,
            evidence: s.evidence.clone(),
        })
        .collect();
    let channels = r
        .channels
        .iter()
        .map(|c| ChannelRow {
            src: c.src,
            dst: c.dst,
            tag: c.tag,
            missing: c.missing,
            extra: c.extra,
            reordered: c.reordered,
        })
        .collect();
    (summary, suspects, channels)
}

/// `tracedbg localize` — differential fault localization: replay a
/// failing artifact (from `--schedule`, or the first finding of an
/// on-the-fly exploration of a workload), harvest passing reference
/// schedules, and rank suspect processes by decision-log divergence,
/// event-graph diff, and telemetry anomaly. `--trace` supplies the
/// failing trace from a recorded `.trc`/`.tbin` file or an ingested
/// store directory (read through `TraceSource`, never materialized).
/// Exits non-zero only when no passing reference could be found.
fn cmd_localize(opts: &Opts) -> Result<ExitCode, String> {
    const USAGE: &str = "usage: tracedbg localize (--schedule <file.sched.json> | <workload>) \
         [--runs N] [--seed N] [--jobs N] [--procs N] [--explore-runs N] \
         [--trace <trc|store-dir>] [--out FILE] [--json]";
    let artifact = if let Some(path) = opts.flag("schedule") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        ScheduleArtifact::from_json(&json).map_err(|e| format!("{path}: {e}"))?
    } else {
        // Workload mode: explore on the fly, localize the first finding.
        let name = opts.positional.first().ok_or(USAGE)?;
        let seed = opts.num("seed", 42u64);
        let procs = opts.num("procs", 8usize);
        let (factory, _n) = workload_factory(name, seed, procs)?;
        let cfg = ExploreConfig {
            workload: name.clone(),
            seed,
            runs: opts.num("explore-runs", 64usize),
            ..Default::default()
        };
        let report = Explorer::new(cfg, factory).explore();
        let finding = report.findings.first().ok_or_else(|| {
            format!("exploration found no failures in {name} — nothing to localize")
        })?;
        finding.artifact.clone()
    };
    let (factory, _n) = workload_factory(&artifact.workload, artifact.seed, artifact.procs)?;
    let lcfg = tracedbg::localize::LocalizeConfig {
        runs: opts.num("runs", 8usize),
        seed: opts.num("seed", 0u64),
        jobs: opts.num("jobs", 1usize),
    };
    // Resolve the failing-trace override up front so IO errors surface
    // before any simulated processes run.
    let failing_trace: Option<Box<dyn TraceSource>> = match opts.flag("trace") {
        Some(p) if std::path::Path::new(p).is_dir() => Some(Box::new(
            DiskStore::open(std::path::Path::new(p)).map_err(|e| e.to_string())?,
        )),
        Some(p) => Some(Box::new(load_store(p)?)),
        None => None,
    };
    tracedbg::mpsim::set_quiet_panics(true);
    let report = tracedbg::localize::localize_with_trace(
        &factory,
        &artifact,
        &lcfg,
        failing_trace.as_deref(),
    );
    tracedbg::mpsim::set_quiet_panics(false);
    if opts.has("json") {
        println!("{}", report.to_json());
    } else {
        let (summary, suspects, channels) = suspect_view(&report);
        print!("{}", render_suspects(&summary, &suspects, &channels));
    }
    if let Some(out) = opts.flag("out") {
        std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
        if !opts.has("json") {
            println!("report written to {out}");
        }
    }
    Ok(
        if report.verdict == tracedbg::localize::VERDICT_NO_REFERENCE {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        },
    )
}

/// `tracedbg ingest` — convert a recorded trace file into the indexed
/// on-disk store format `tracedbg query` (and every trace-consuming
/// command) reads.
fn cmd_ingest(opts: &Opts) -> Result<(), String> {
    let path = opts.positional.first().ok_or(
        "usage: tracedbg ingest <trace.trc | trace.tbin> --out <dir> [--segment-events N]",
    )?;
    let out = opts.flag("out").ok_or("ingest needs --out <dir>")?;
    let tf = load_trace_file(path)?;
    let started = std::time::Instant::now();
    let summary = tracedbg::store::ingest_records(
        &tf.records,
        &tf.sites,
        tf.n_ranks,
        std::path::Path::new(out),
        StoreOptions {
            segment_events: opts.num("segment-events", 65536usize),
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "ingested {path}: {} events, {} ranks -> {out} ({} segments, {} bytes) in {:.1} ms",
        summary.n_events,
        summary.n_ranks,
        summary.n_segments,
        summary.bytes,
        started.elapsed().as_secs_f64() * 1e3,
    );
    Ok(())
}

/// `tracedbg query` — indexed queries over an ingested store directory.
/// Events stream from the store's cursors; the trace is never
/// materialized, so multi-million-event stores answer in milliseconds.
fn cmd_query(opts: &Opts) -> Result<(), String> {
    const USAGE: &str = "usage: tracedbg query <dir> \
         [--rank N | --tag T | --kind CODE | --window lo:hi] \
         [--limit N] [--count] [--stats]";
    let dir = opts.positional.first().ok_or(USAGE)?;
    let disk = DiskStore::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    if opts.has("stats") {
        // Streaming one-pass statistics through the TraceSource trait.
        let stats = tracedbg::trace::TraceStats::from_source(&disk).map_err(|e| e.to_string())?;
        print!("{stats}");
        return Ok(());
    }
    let mut selectors = Vec::new();
    if let Some(r) = opts.flag("rank") {
        let r: u32 = r.parse().map_err(|_| format!("bad rank {r:?}"))?;
        selectors.push(Select::Rank(Rank(r)));
    }
    if let Some(t) = opts.flag("tag") {
        let t: i32 = t.parse().map_err(|_| format!("bad tag {t:?}"))?;
        selectors.push(Select::Tag(Tag(t)));
    }
    if let Some(code) = opts.flag("kind") {
        let kind = EventKind::all()
            .into_iter()
            .find(|k| k.code() == code)
            .ok_or_else(|| {
                let codes: Vec<&str> = EventKind::all().into_iter().map(|k| k.code()).collect();
                format!("unknown kind {code:?} (one of: {})", codes.join(" "))
            })?;
        selectors.push(Select::Kind(kind));
    }
    if let Some(win) = opts.flag("window") {
        let (lo, hi) = win
            .split_once(':')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or("bad --window, expected lo:hi")?;
        selectors.push(Select::TimeWindow(lo, hi));
    }
    if selectors.len() > 1 {
        return Err("give at most one of --rank/--tag/--kind/--window".into());
    }
    let sel = selectors.pop().unwrap_or(Select::All);
    let (t_lo, t_hi) = disk.time_bounds();
    println!(
        "{dir}: {} events, {} ranks, t=[{t_lo}, {t_hi}] — {sel}",
        disk.n_events(),
        disk.n_ranks(),
    );
    let limit = opts.num("limit", 20usize);
    let count_only = opts.has("count");
    let mut shown = 0usize;
    let mut total = 0usize;
    for rec in disk.select(sel).map_err(|e| e.to_string())? {
        let rec = rec.map_err(|e| e.to_string())?;
        total += 1;
        if !count_only && shown < limit {
            println!(
                "  {:?} marker {} at t={}: {}",
                rec.rank, rec.marker, rec.t_start, rec
            );
            shown += 1;
        }
    }
    if !count_only && total > shown {
        println!("  ... ({} more; raise --limit)", total - shown);
    }
    println!("{total} match(es)");
    Ok(())
}

/// `tracedbg bench` — the in-tree perf harness. Runs the fixed-iteration
/// suites from `tracedbg-bench` (trace parse, happens-before
/// construction, golden-trace replay, engine throughput, and explorer
/// runs/sec at jobs=1 vs jobs=N), prints a human table per suite, and
/// writes `BENCH_<suite>.json` files into `--out` (default the current
/// directory) for the perf trajectory.
fn cmd_bench(opts: &Opts) -> Result<(), String> {
    let suite_opts = tracedbg_bench::suites::SuiteOptions {
        quick: opts.has("quick"),
        filter: opts.flag("filter").map(|s| s.to_string()),
        // 0 = one worker per available core for the explore_jobsN point.
        jobs: opts.num("jobs", 0usize),
    };
    let out_dir = std::path::Path::new(opts.flag("out").unwrap_or("."));
    let suites = tracedbg_bench::suites::run_suites(&suite_opts);
    if suites.is_empty() {
        return Err(format!(
            "filter {:?} matched no benchmarks",
            suite_opts.filter.as_deref().unwrap_or("")
        ));
    }
    for s in &suites {
        print!(
            "{}",
            tracedbg_bench::measure::render_table(s.name, &s.records)
        );
        let path = tracedbg_bench::measure::write_suite(out_dir, s.name, &s.records)
            .map_err(|e| format!("cannot write BENCH_{}.json: {e}", s.name))?;
        println!("wrote {}\n", path.display());
    }
    Ok(())
}

/// Minimal JSON string encoder for the hand-rolled `replay --json` output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: tracedbg <run|ingest|query|view|analyze|report|graph|debug|lint|explore|localize|replay|profile|stats|bench|workloads> ...\n\
             see `tracedbg workloads` for available targets"
        );
        return ExitCode::FAILURE;
    };
    let opts = Opts::parse(&args[1..]);
    let result = match cmd.as_str() {
        "run" => cmd_run(&opts),
        "ingest" => cmd_ingest(&opts),
        "query" => cmd_query(&opts),
        "view" => cmd_view(&opts),
        "analyze" => cmd_analyze(&opts),
        "report" => cmd_report(&opts),
        "graph" => cmd_graph(&opts),
        "debug" => cmd_debug(&opts),
        "lint" => {
            return match cmd_lint(&opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "explore" => {
            return match cmd_explore(&opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "localize" => {
            return match cmd_localize(&opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "replay" => {
            return match cmd_replay(&opts) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "profile" => cmd_profile(&opts),
        "stats" => cmd_stats(&opts),
        "bench" => cmd_bench(&opts),
        "workloads" => {
            println!(
                "strassen       distributed Strassen multiply (8 procs, correct)\n\
                 strassen-bug   the paper's jres bug: deadlocks ranks 0 and 7\n\
                 lu             LU/SSOR wavefront pipeline\n\
                 ring           token ring\n\
                 pool           master/worker with wildcard receives\n\
                 heat           1-D heat diffusion: halo exchange + allreduce\n\
                 stencil        2-D halo exchange on a sqrt(procs) x sqrt(procs) grid\n\
                 butterfly      log2-stage allreduce over next_power_of_two(procs) ranks\n\
                 racy-wildcard  wildcard-receive race (explore finds the panic)\n\
                 racy-deadlock  orphaned receive (explore finds the deadlock)\n\
                 planted-wildcard  localization corpus: racy wildcard, bug planted at rank 2\n\
                 planted-orphan    localization corpus: orphaned receive at rank 2\n\
                 planted-pipeline  localization corpus: delay-sensitive merge stage at rank 2\n\
                 fib:<n>        recursive Fibonacci (Table 1 driver)\n\
                 random:<n>     seeded random transfer pattern\n\
                 script:<path>  interpreted mini-language program (SPMD)\n\
                 sdl:<name>     builtin script (statically analyzable):"
            );
            for b in scripts::builtins() {
                println!(
                    "   sdl:{:<18} {} (min {} procs)",
                    b.name, b.description, b.min_procs
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opts_parses_flags_values_and_positionals() {
        let o = Opts::parse(&args(&[
            "ring", "--seed", "7", "--json", "--procs", "4", "-e", "run",
        ]));
        assert_eq!(o.positional, vec!["ring"]);
        assert_eq!(o.flag("seed"), Some("7"));
        assert_eq!(o.num("procs", 0usize), 4);
        assert!(o.has("json"));
        assert_eq!(o.flag("json"), None, "bare flag carries no value");
        assert_eq!(o.commands(), vec!["run"]);
        assert!(!o.has("faults"));
        assert_eq!(o.num("runs", 64usize), 64, "missing flag falls back");
    }

    #[test]
    fn workload_factory_resolves_known_names() {
        for name in [
            "strassen",
            "strassen-bug",
            "lu",
            "ring",
            "heat",
            "pool",
            "stencil",
            "butterfly",
            "racy-wildcard",
            "racy-deadlock",
            "planted-wildcard",
            "planted-orphan",
            "planted-pipeline",
            "fib:6",
            "random:4",
            "sdl:ring",
            "sdl:pairs",
            "sdl:racy-wildcard",
            "sdl:racy-deadlock",
        ] {
            let (factory, n) = workload_factory(name, 1, 4).expect(name);
            assert_eq!(factory().len(), n, "{name}: factory/proc-count agree");
        }
        assert!(workload_factory("no-such-workload", 1, 4).is_err());
        assert!(workload_factory("fib:x", 1, 4).is_err());
        assert!(workload_factory("sdl:no-such-script", 1, 4).is_err());
    }

    #[test]
    fn sdl_workloads_clamp_to_min_procs() {
        let (_, n) = workload_factory("sdl:racy-wildcard", 1, 1).unwrap();
        assert_eq!(n, 3, "racy builtin needs a master and two workers");
        let (_, n) = workload_factory("sdl:ring", 1, 1).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn script_workload_resolves_bare_names_only_when_allowed() {
        // `ring` is a native workload; only `analyze` treats the bare
        // name as the builtin script.
        assert!(script_workload("ring", 4, false).unwrap().is_none());
        let (_, file, n) = script_workload("ring", 4, true).unwrap().unwrap();
        assert_eq!(file, "sdl:ring");
        assert_eq!(n, 4);
        let (_, file, n) = script_workload("sdl:pairs", 1, false).unwrap().unwrap();
        assert_eq!(file, "sdl:pairs");
        assert_eq!(n, 2, "clamped to the builtin's minimum");
    }

    #[test]
    fn racy_workloads_enforce_a_minimum_of_three_procs() {
        let (_, n) = workload_factory("racy-wildcard", 1, 1).unwrap();
        assert_eq!(n, 3);
        let (_, n) = workload_factory("racy-deadlock", 1, 12).unwrap();
        assert_eq!(n, 12);
    }

    #[test]
    fn json_string_escapes_control_and_quote_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny\u{1}"), "\"x\\ny\\u0001\"");
    }
}
