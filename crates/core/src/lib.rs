//! # tracedbg — trace-driven debugging of message passing programs
//!
//! A from-scratch Rust reproduction of Frumkin, Hood & Lopez,
//! *Trace-Driven Debugging of Message Passing Programs* (IPPS 1998): the
//! p2d2 debugger's trace-driven features — execution history collection,
//! time-space visualization, consistent **stoplines**, controlled
//! **replay**, parallel **undo**, and communication supervision — together
//! with every substrate they need, built on a deterministic message-
//! passing runtime.
//!
//! ## Quick start
//!
//! ```
//! use tracedbg::prelude::*;
//!
//! // A two-process program: P0 sends, P1 receives.
//! let factory: ProgramFactory = Box::new(|| {
//!     let p0: ProgramFn = Box::new(|ctx| {
//!         let site = ctx.site("demo.rs", 3, "main");
//!         ctx.send(Rank(1), Tag(7), Payload::from_i64(42), site);
//!     });
//!     let p1: ProgramFn = Box::new(|ctx| {
//!         let site = ctx.site("demo.rs", 7, "main");
//!         let m = ctx.recv_from(Rank(0), Tag(7), site);
//!         assert_eq!(m.payload.to_i64(), Some(42));
//!     });
//!     vec![p0.into(), p1.into()]
//! });
//!
//! // Debug it: run, inspect the history, replay to a stopline.
//! let mut session = Session::launch(SessionConfig::default(), factory);
//! assert!(session.run().is_completed());
//! let trace = session.trace();
//! assert_eq!(trace.n_ranks(), 2);
//! let stopline = Stopline::vertical(&trace, trace.time_bounds().1 / 2);
//! session.replay_to(&stopline);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`trace`] | `tracedbg-trace` | §2–§3: records, markers, trace files |
//! | [`instrument`] | `tracedbg-instrument` | §2: AIMS / UserMonitor / PMPI strategies |
//! | [`mpsim`] | `tracedbg-mpsim` | runtime substrate + §4.2 record/replay |
//! | [`tracegraph`] | `tracedbg-tracegraph` | §3.2, §4.3: trace/call/comm/action graphs |
//! | [`causality`] | `tracedbg-causality` | §4.1: happens-before, frontiers, races |
//! | [`lint`] | `tracedbg-lint` | §4.4: rule-based communication supervision |
//! | [`analysis`] | `tracedbg-analysis` | static may-match / independence analysis |
//! | [`debugger`] | `tracedbg-debugger` | §4: stoplines, replay, undo, analysis |
//! | [`explore`] | `tracedbg-explore` | schedule exploration + fault injection |
//! | [`localize`] | `tracedbg-localize` | differential fault localization |
//! | [`profile`] | `tracedbg-profile` | critical-path & wait-state profiling |
//! | [`viz`] | `tracedbg-viz` | §3.1: NTV/VK time-space diagrams, DOT/VCG |
//! | [`workloads`] | `tracedbg-workloads` | evaluation programs (Strassen, fib, LU) |

pub use tracedbg_analysis as analysis;
pub use tracedbg_causality as causality;
pub use tracedbg_debugger as debugger;
pub use tracedbg_explore as explore;
pub use tracedbg_instrument as instrument;
pub use tracedbg_lint as lint;
pub use tracedbg_localize as localize;
pub use tracedbg_mpsim as mpsim;
pub use tracedbg_obs as obs;
pub use tracedbg_profile as profile;
pub use tracedbg_store as store;
pub use tracedbg_trace as trace;
pub use tracedbg_tracegraph as tracegraph;
pub use tracedbg_viz as viz;
pub use tracedbg_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use tracedbg_causality::{Frontier, HbIndex};
    pub use tracedbg_debugger::{
        replay_schedule, replay_schedule_from_checkpoint, CheckpointReplay, CommandInterface,
        HistoryReport, ProgramFactory, ScheduleReplay, Session, SessionConfig, SessionStatus,
        Stopline,
    };
    pub use tracedbg_explore::{
        ExploreConfig, ExploreReport, Explorer, Strategy as ExploreStrategy,
    };
    pub use tracedbg_instrument::{RecorderConfig, Strategy};
    pub use tracedbg_lint::{lint_script, lint_trace, Diagnostic, LintConfig, Severity};
    pub use tracedbg_localize::{LocalizeConfig, LocalizeReport};
    pub use tracedbg_mpsim::{
        CostModel, Engine, EngineConfig, EngineMetrics, Payload, ProcessCtx, ProgramFn, RunOutcome,
        SchedPolicy,
    };
    pub use tracedbg_obs::{EventMetrics, MetricsReport, TimingMetrics};
    pub use tracedbg_profile::{
        perfetto_json, CriticalPath, ProfileInput, ProfileReport, WaitAnalysis,
    };
    pub use tracedbg_store::{DiskStore, SharedWriter, StoreOptions, StoreWriter};
    pub use tracedbg_trace::{
        materialize, ArtifactMeta, EventKind, EventQuery, Marker, MarkerVector, Rank,
        ScheduleArtifact, Select, Tag, TraceRecord, TraceSink, TraceSource, TraceStats, TraceStore,
    };
    pub use tracedbg_tracegraph::{CallGraph, CommGraph, MessageMatching, TraceGraph};
    pub use tracedbg_viz::{
        render_ascii, render_rank_profile, render_suspects, render_svg, render_wait_blame, NtvView,
        TimelineModel, VkView,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Rank(0);
        let _ = Tag(1);
        let _ = SessionConfig::default();
    }
}
