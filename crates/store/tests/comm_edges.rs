//! `TraceSource::comm_edges` equivalence: the disk store's rank cursor
//! must project exactly the edges the in-memory reference projects, for
//! every rank — the contract the localize graph differ leans on when one
//! side of the diff is a store directory.

use std::path::PathBuf;
use tracedbg_mpsim::{Engine, EngineConfig, Payload, ProgramFn, Rank, RecorderConfig, Tag};
use tracedbg_store::{ingest_store, DiskStore, StoreOptions};
use tracedbg_trace::{EdgeDir, TraceSource, TraceStore};

fn scratch_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tracedbg-comm-edges-{label}-{}",
        std::process::id()
    ))
}

/// A small fan-in with wildcard receives and two tags, so edges carry
/// distinct (dir, peer, tag) keys at every rank.
fn programs() -> Vec<ProgramFn> {
    const NPROCS: usize = 4;
    let p0: ProgramFn = Box::new(move |ctx| {
        let s = ctx.site("edges.rs", 1, "collector");
        for _ in 0..(NPROCS - 1) * 2 {
            let _ = ctx.recv_any(None, s);
        }
        for r in 1..NPROCS {
            ctx.send(Rank(r as u32), Tag(9), Payload::from_i64(0), s);
        }
    });
    let mut progs = vec![p0];
    for _ in 1..NPROCS {
        let worker: ProgramFn = Box::new(move |ctx| {
            let s = ctx.site("edges.rs", 2, "worker");
            for round in 0..2i64 {
                ctx.compute(50, s);
                ctx.send(
                    Rank(0),
                    Tag((round % 2) as i32),
                    Payload::from_i64(round),
                    s,
                );
            }
            let _ = ctx.recv_from(Rank(0), Tag(9), s);
        });
        progs.push(worker);
    }
    progs
}

fn reference() -> TraceStore {
    let mut e = Engine::launch(
        EngineConfig {
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        programs(),
    );
    let _ = e.run();
    e.trace_store()
}

#[test]
fn disk_store_comm_edges_match_the_reference() {
    let store = reference();
    let dir = scratch_dir("eq");
    let _ = std::fs::remove_dir_all(&dir);
    ingest_store(
        &store,
        &dir,
        StoreOptions {
            // Tiny segments force the cursor across segment boundaries.
            segment_events: 8,
        },
    )
    .expect("ingest");
    let disk = DiskStore::open(&dir).expect("open");
    assert!(store.n_ranks() >= 4);
    for r in 0..store.n_ranks() as u32 + 1 {
        let want = store.comm_edges(Rank(r)).expect("reference edges");
        let got = disk.comm_edges(Rank(r)).expect("disk edges");
        assert_eq!(got, want, "rank {r} edges diverged");
    }
    // Sanity on content, not just equivalence: rank 1 sends two tags to
    // rank 0 and completes one directed receive, in program order.
    let e1 = disk.comm_edges(Rank(1)).unwrap();
    let keys: Vec<_> = e1.iter().map(|e| e.key()).collect();
    assert_eq!(
        keys,
        vec![
            (EdgeDir::Send, Rank(0), Tag(0)),
            (EdgeDir::Send, Rank(0), Tag(1)),
            (EdgeDir::Recv, Rank(0), Tag(9)),
        ]
    );
    assert!(e1.windows(2).all(|w| w[0].marker < w[1].marker));
    let _ = std::fs::remove_dir_all(&dir);
}
