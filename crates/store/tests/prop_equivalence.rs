//! Query-equivalence battery: the on-disk store is a pure index, never a
//! filter. For arbitrary seeded workloads (with crash/hang/delay faults)
//! and arbitrary segment sizes, every store query — `events`, `by_rank`,
//! `by_tag`, `by_construct`, `by_time_window` — must return a sequence
//! byte-identical to the same selection over the in-memory reference
//! [`TraceStore`]. Both ingestion paths are pinned: the one-shot
//! `ingest_store` conversion and the streaming `TraceSink` the engine
//! writes through while the run executes.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tracedbg_mpsim::{
    Engine, EngineConfig, FaultPlan, Payload, ProgramFn, Rank, RecorderConfig, SchedPolicy, Tag,
};
use tracedbg_store::{ingest_store, DiskStore, SharedWriter, StoreOptions, StoreWriter};
use tracedbg_trace::schedule::Fault;
use tracedbg_trace::{EventKind, TraceRecord, TraceSource, TraceStore};

const NPROCS: usize = 4;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tracedbg-store-prop-{}-{label}-{n}",
        std::process::id()
    ))
}

/// Fan-in with wildcard nondeterminism plus per-round tags, so the tag
/// index has several distinct keys to discriminate.
fn fanin_programs(rounds: u64) -> Vec<ProgramFn> {
    let p0: ProgramFn = Box::new(move |ctx| {
        let s = ctx.site("prop.rs", 1, "collector");
        let mut sum = 0i64;
        for _ in 0..(NPROCS as u64 - 1) * rounds {
            let m = ctx.recv_any(None, s);
            sum += m.payload.to_i64().unwrap_or(0);
        }
        ctx.probe("sum", sum, s);
        for r in 1..NPROCS {
            ctx.send(Rank(r as u32), Tag(9), Payload::from_i64(sum), s);
        }
    });
    let mut progs = vec![p0];
    for r in 1..NPROCS {
        let worker: ProgramFn = Box::new(move |ctx| {
            let s = ctx.site("prop.rs", 2, "worker");
            for round in 0..rounds {
                ctx.compute(50, s);
                let v = (r as i64) * 100 + round as i64;
                ctx.send(Rank(0), Tag((round % 3) as i32), Payload::from_i64(v), s);
            }
            let _ = ctx.recv_from(Rank(0), Tag(9), s);
        });
        progs.push(worker);
    }
    progs
}

fn arb_faults() -> impl Strategy<Value = Vec<Fault>> {
    let w = 1u32..NPROCS as u32;
    prop_oneof![
        Just(Vec::new()),
        (w.clone(), 0u64..6).prop_map(|(r, k)| vec![Fault::Crash {
            rank: Rank(r),
            after_ops: k,
        }]),
        (w.clone(), 0u64..6).prop_map(|(r, k)| vec![Fault::Hang {
            rank: Rank(r),
            after_ops: k,
        }]),
        (w, 0u64..4, 1u64..500).prop_map(|(src, nth, extra_ns)| vec![Fault::Delay {
            src: Rank(src),
            dst: Rank(0),
            nth,
            extra_ns,
        }]),
    ]
}

/// Reference answers computed by linear scan over the in-memory store.
fn ref_by_rank(store: &TraceStore, rank: Rank) -> Vec<TraceRecord> {
    if rank.ix() >= store.n_ranks() {
        return Vec::new();
    }
    store
        .by_rank(rank)
        .iter()
        .map(|id| store.record(*id).clone())
        .collect()
}

fn ref_by_tag(store: &TraceStore, tag: Tag) -> Vec<TraceRecord> {
    store
        .records()
        .iter()
        .filter(|r| r.msg.as_ref().is_some_and(|m| m.tag == tag))
        .cloned()
        .collect()
}

fn ref_by_kind(store: &TraceStore, kind: EventKind) -> Vec<TraceRecord> {
    store
        .records()
        .iter()
        .filter(|r| r.kind == kind)
        .cloned()
        .collect()
}

fn ref_window(store: &TraceStore, lo: u64, hi: u64) -> Vec<TraceRecord> {
    store
        .records()
        .iter()
        .filter(|r| r.t_start <= hi && r.t_end >= lo)
        .cloned()
        .collect()
}

fn assert_equivalent(disk: &DiskStore, reference: &TraceStore) {
    assert_eq!(disk.n_events(), reference.len() as u64);
    assert_eq!(disk.n_ranks(), reference.n_ranks());
    assert_eq!(disk.time_bounds(), reference.time_bounds());
    assert_eq!(
        disk.sites().snapshot(),
        reference.sites().snapshot(),
        "site tables diverged"
    );
    let src: &dyn TraceSource = disk;
    assert_eq!(
        src.events().unwrap(),
        reference.records().to_vec(),
        "full canonical scan diverged"
    );
    // One rank past the end: empty, not an error.
    for r in 0..=reference.n_ranks() {
        let rank = Rank(r as u32);
        assert_eq!(
            src.by_rank(rank).unwrap(),
            ref_by_rank(reference, rank),
            "by_rank({}) diverged",
            r
        );
    }
    let mut tags: Vec<Tag> = reference
        .records()
        .iter()
        .filter_map(|r| r.msg.as_ref().map(|m| m.tag))
        .collect();
    tags.sort();
    tags.dedup();
    tags.push(Tag(12345)); // absent tag: empty, not an error
    for tag in tags {
        assert_eq!(
            src.by_tag(tag).unwrap(),
            ref_by_tag(reference, tag),
            "by_tag({}) diverged",
            tag.0
        );
    }
    for kind in EventKind::all() {
        assert_eq!(
            src.by_construct(kind).unwrap(),
            ref_by_kind(reference, kind),
            "by_construct({}) diverged",
            kind.code()
        );
    }
    let (lo, hi) = reference.time_bounds();
    let mid = lo + (hi - lo) / 2;
    let windows = [
        (lo, hi),
        (lo, mid),
        (mid, hi),
        (mid, mid),
        (hi + 1, hi + 100), // beyond the end: empty
        (0, 0),
    ];
    for (wlo, whi) in windows {
        assert_eq!(
            src.by_time_window(wlo, whi).unwrap(),
            ref_window(reference, wlo, whi),
            "by_time_window({}, {}) diverged",
            wlo,
            whi
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn disk_queries_match_linear_scan(
        seed in 0u64..1024,
        rounds in 1u64..4,
        segment_events in 4usize..64,
        faults in arb_faults(),
    ) {
        let cfg = || EngineConfig {
            policy: SchedPolicy::Seeded(seed),
            recorder: RecorderConfig::full(),
            faults: FaultPlan::new(faults.clone()),
            ..Default::default()
        };
        let opts = StoreOptions { segment_events };

        // Streaming path: the engine writes through the sink while it
        // runs; nothing is re-fed afterwards.
        let stream_dir = scratch_dir("stream");
        let shared = SharedWriter::new(StoreWriter::create(&stream_dir, opts).unwrap());
        let mut engine = Engine::launch(cfg(), fanin_programs(rounds));
        engine.attach_trace_sink(Box::new(shared.clone()));
        let _ = engine.run();
        let reference = engine.trace_store();
        engine.detach_trace_sink();
        shared.finish(reference.sites(), reference.n_ranks()).unwrap();
        let streamed = DiskStore::open(&stream_dir).unwrap();
        assert_equivalent(&streamed, &reference);
        streamed.verify().unwrap();

        // One-shot path: ingest the already-built reference store.
        let ingest_dir = scratch_dir("ingest");
        let ingested = ingest_store(&reference, &ingest_dir, opts).unwrap();
        assert_equivalent(&ingested, &reference);

        drop(streamed);
        drop(ingested);
        let _ = std::fs::remove_dir_all(&stream_dir);
        let _ = std::fs::remove_dir_all(&ingest_dir);
    }
}
