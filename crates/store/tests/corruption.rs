//! Corruption-robustness battery: no corrupt, truncated, or mismatched
//! store input may ever panic or yield a silent partial/incorrect read —
//! every failure must surface as a typed [`StoreError`]. The fuzz loop at
//! the bottom flips every single byte of every file of a small golden
//! store and requires each mutation to either produce an error or leave
//! the query results byte-identical (flips of genuinely unused padding
//! would be the only way to land there; the format has none).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use tracedbg_store::{ingest_records, DiskStore, StoreError, StoreOptions};
use tracedbg_trace::{EventKind, MsgInfo, Rank, Select, SiteTable, Tag, TraceRecord, TraceSource};

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tracedbg-store-corrupt-{}-{label}-{n}",
        std::process::id()
    ))
}

/// A small deterministic trace with every record shape: spans, messages,
/// labels, several ranks, tags, and kinds — across two segments.
fn golden_records() -> (Vec<TraceRecord>, SiteTable) {
    let sites = SiteTable::new();
    let s0 = sites.site("golden.c", 10, "main");
    let s1 = sites.site("golden.c", 20, "worker");
    let mut recs = Vec::new();
    for i in 0..10u64 {
        let rank = (i % 3) as u32;
        let marker = i / 3 + 1;
        let t = i * 7;
        let rec = match i % 4 {
            0 => TraceRecord::basic(rank, EventKind::Compute, marker, t)
                .with_span(t, t + 5)
                .with_site(s0),
            1 => TraceRecord::basic(rank, EventKind::Send, marker, t)
                .with_span(t, t + 2)
                .with_site(s1)
                .with_msg(MsgInfo {
                    src: Rank(rank),
                    dst: Rank((rank + 1) % 3),
                    tag: Tag(i as i32 % 2),
                    bytes: 64,
                    seq: i,
                }),
            2 => TraceRecord::basic(rank, EventKind::RecvDone, marker, t)
                .with_span(t, t + 3)
                .with_site(s1)
                .with_msg(MsgInfo {
                    src: Rank((rank + 2) % 3),
                    dst: Rank(rank),
                    tag: Tag(i as i32 % 2),
                    bytes: 64,
                    seq: i,
                }),
            _ => TraceRecord::basic(rank, EventKind::Probe, marker, t)
                .with_site(s0)
                .with_args(i as i64, -(i as i64))
                .with_label("phase"),
        };
        recs.push(rec);
    }
    (recs, sites)
}

/// Write the golden store (two segments: 6 + 4 events).
fn build_golden(dir: &Path) -> Vec<TraceRecord> {
    let (recs, sites) = golden_records();
    ingest_records(&recs, &sites, 3, dir, StoreOptions { segment_events: 6 }).unwrap();
    DiskStore::open(dir).unwrap().events().unwrap()
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, to.join(p.file_name().unwrap())).unwrap();
    }
}

/// Open the store and force every lazy path: full scan, every index
/// family, and the integrity audit.
fn read_everything(dir: &Path) -> Result<Vec<TraceRecord>, StoreError> {
    let store = DiskStore::open(dir)?;
    let events: Vec<TraceRecord> = store.cursor(Select::All)?.collect::<Result<_, _>>()?;
    for r in 0..store.n_ranks() as u32 {
        store.by_rank(Rank(r))?.collect::<Result<Vec<_>, _>>()?;
    }
    for tag in [Tag(0), Tag(1)] {
        store.by_tag(tag)?.collect::<Result<Vec<_>, _>>()?;
    }
    store
        .by_construct(EventKind::Send)?
        .collect::<Result<Vec<_>, _>>()?;
    let (lo, hi) = store.time_bounds();
    store
        .by_time_window(lo, hi)?
        .collect::<Result<Vec<_>, _>>()?;
    store.verify()?;
    Ok(events)
}

#[test]
fn zero_byte_files_are_typed_errors() {
    let golden = scratch_dir("golden-zero");
    build_golden(&golden);
    for name in ["manifest.tds", "index.tds", "seg-00000.tds"] {
        let dir = scratch_dir("zero");
        copy_dir(&golden, &dir);
        std::fs::write(dir.join(name), b"").unwrap();
        let err = read_everything(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "{name}: zero-byte file gave {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&golden).unwrap();
}

#[test]
fn missing_files_are_io_errors() {
    let golden = scratch_dir("golden-missing");
    build_golden(&golden);
    for name in ["manifest.tds", "index.tds", "seg-00001.tds"] {
        let dir = scratch_dir("missing");
        copy_dir(&golden, &dir);
        std::fs::remove_file(dir.join(name)).unwrap();
        let err = read_everything(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::Io { .. }),
            "{name}: missing file gave {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&golden).unwrap();
}

#[test]
fn bad_magic_and_version_are_typed_errors() {
    let golden = scratch_dir("golden-magic");
    build_golden(&golden);
    for name in ["manifest.tds", "index.tds", "seg-00000.tds"] {
        // Stomp the magic.
        let dir = scratch_dir("magic");
        copy_dir(&golden, &dir);
        let p = dir.join(name);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[0..4].copy_from_slice(b"NOPE");
        std::fs::write(&p, &bytes).unwrap();
        let err = read_everything(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::BadMagic { .. }),
            "{name}: stomped magic gave {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();

        // Bump the version (bytes 4..8).
        let dir = scratch_dir("version");
        copy_dir(&golden, &dir);
        let p = dir.join(name);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = read_everything(&dir).unwrap_err();
        assert!(
            matches!(err, StoreError::BadVersion { found: 99, .. }),
            "{name}: bumped version gave {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&golden).unwrap();
}

#[test]
fn truncated_segment_is_a_typed_error() {
    let golden = scratch_dir("golden-trunc");
    build_golden(&golden);
    let full = std::fs::read(golden.join("seg-00000.tds")).unwrap();
    // Cut inside the header, the offset table, and the payload.
    for cut in [1, 17, 39, 41, 55, full.len() - 1] {
        let dir = scratch_dir("trunc");
        copy_dir(&golden, &dir);
        std::fs::write(dir.join("seg-00000.tds"), &full[..cut]).unwrap();
        let err = read_everything(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::Mismatch { .. }
            ),
            "cut at {cut} gave {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&golden).unwrap();
}

#[test]
fn flipped_payload_byte_is_a_crc_mismatch() {
    let golden = scratch_dir("golden-crc");
    build_golden(&golden);
    let dir = scratch_dir("crc");
    copy_dir(&golden, &dir);
    let p = dir.join("seg-00000.tds");
    let mut bytes = std::fs::read(&p).unwrap();
    let last = bytes.len() - 1; // payload tail: lazily verified
    bytes[last] ^= 0xFF;
    std::fs::write(&p, &bytes).unwrap();
    // Opening succeeds (payloads are lazy) ...
    let store = DiskStore::open(&dir).unwrap();
    // ... but the first touch of that segment reports the mismatch.
    let err = store
        .cursor(Select::All)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap_err();
    assert!(matches!(err, StoreError::CrcMismatch { .. }), "got: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&golden).unwrap();
}

#[test]
fn frame_count_mismatch_is_a_typed_error() {
    let golden = scratch_dir("golden-fc");
    build_golden(&golden);
    let dir = scratch_dir("fc");
    copy_dir(&golden, &dir);
    let p = dir.join("seg-00000.tds");
    let mut bytes = std::fs::read(&p).unwrap();
    // frame_count lives at header bytes 12..16.
    let fc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    bytes[12..16].copy_from_slice(&(fc + 1).to_le_bytes());
    std::fs::write(&p, &bytes).unwrap();
    let err = read_everything(&dir).unwrap_err();
    assert!(
        matches!(err, StoreError::Mismatch { .. }),
        "frame count lie gave {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&golden).unwrap();
}

/// The fuzz loop: flip every byte of every store file, one at a time.
/// Each mutation must produce a typed error or leave every query result
/// byte-identical — never a panic, never silently different data.
#[test]
fn byte_flip_fuzz_never_panics_or_lies() {
    let golden = scratch_dir("golden-fuzz");
    let baseline = build_golden(&golden);
    let names: Vec<String> = std::fs::read_dir(&golden)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    let dir = scratch_dir("fuzz");
    for name in names {
        let pristine = std::fs::read(golden.join(&name)).unwrap();
        for pos in 0..pristine.len() {
            let _ = std::fs::remove_dir_all(&dir);
            copy_dir(&golden, &dir);
            let mut mutated = pristine.clone();
            mutated[pos] ^= 0xFF;
            std::fs::write(dir.join(&name), &mutated).unwrap();
            match read_everything(&dir) {
                Err(_) => {} // typed error: the contract
                Ok(events) => assert_eq!(
                    events, baseline,
                    "{name}: byte {pos} flipped, queries succeeded with different data"
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::remove_dir_all(&golden).unwrap();
}
