//! Opening and querying a store directory.
//!
//! [`DiskStore::open`] is cheap by design: it reads the manifest in full
//! (small — run metadata plus the site table), the index *directory* (a
//! few dozen fixed-width entries), and each segment's 40-byte header.
//! Everything else — index sections, segment payloads — is loaded lazily
//! on first touch and CRC-verified at that point, so opening a
//! multi-million-event store costs well under a millisecond while no
//! corruption can ever reach a caller as silent garbage.
//!
//! Queries return [`EventCursor`]s that decode one frame at a time;
//! nothing materializes the whole trace unless the caller collects it.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::frame::{decode_frame, kind_code};
use crate::layout::{
    segment_file, Cursor, DIR_ENTRY_LEN, INDEX_FILE, INDEX_MAGIC, MANIFEST_FILE, MANIFEST_MAGIC,
    SEC_CANON, SEC_KIND, SEC_RANK, SEC_TAG, SEC_TIME, SEGMENT_HEADER_LEN, SEGMENT_MAGIC, VERSION,
};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tracedbg_trace::{
    EventIter, EventKind, Rank, Select, SiteTable, SourceError, SourceLoc, Tag, TraceRecord,
    TraceSource,
};

/// How many decoded segments the in-memory cache keeps (FIFO).
const SEGMENT_CACHE_CAP: usize = 16;

/// Metadata of one segment, from the manifest + its validated header.
#[derive(Clone, Debug)]
struct SegMeta {
    first_event: u64,
    frames: u32,
    payload_len: u64,
    payload_crc: u32,
    offsets_crc: u32,
}

/// One index directory entry.
#[derive(Clone, Copy, Debug)]
struct DirEntry {
    kind: u8,
    key: i64,
    entry_bytes: u32,
    n_items: u64,
    offset: u64,
    crc: u32,
}

/// A fully loaded, CRC-verified segment.
struct LoadedSeg {
    offsets: Vec<u32>,
    payload: Vec<u8>,
}

type IdsList = Arc<Vec<u32>>;
type TimeSamples = Arc<Vec<(u64, u64)>>;

#[derive(Default)]
struct SegCache {
    map: HashMap<u32, Arc<LoadedSeg>>,
    fifo: VecDeque<u32>,
}

/// An open on-disk trace store.
pub struct DiskStore {
    dir: PathBuf,
    n_ranks: usize,
    n_events: u64,
    t_lo: u64,
    t_hi: u64,
    sites: SiteTable,
    segs: Vec<SegMeta>,
    index: Vec<DirEntry>,
    seg_cache: Mutex<SegCache>,
    sections: Mutex<HashMap<(u8, i64), IdsList>>,
    time_samples: Mutex<Option<TimeSamples>>,
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    std::fs::read(path).map_err(|e| StoreError::io(path, e))
}

fn check_magic(path: &Path, c: &mut Cursor<'_>, want: [u8; 4]) -> Result<(), StoreError> {
    let got = c.take(4, "magic")?;
    if got != want {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            found: [got[0], got[1], got[2], got[3]],
        });
    }
    let version = c.u32("version")?;
    if version != VERSION {
        return Err(StoreError::BadVersion {
            path: path.to_path_buf(),
            found: version,
            want: VERSION,
        });
    }
    Ok(())
}

impl DiskStore {
    /// Open a store directory: validate the manifest, the index
    /// directory, and every segment header. Payloads stay on disk.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        // ---- manifest ----
        let man_path = dir.join(MANIFEST_FILE);
        let man = read_file(&man_path)?;
        let mut c = Cursor::new(&man, &man_path);
        check_magic(&man_path, &mut c, MANIFEST_MAGIC)?;
        let body_len = c.u64("manifest body length")?;
        let body_crc = c.u32("manifest body crc")?;
        if body_len != c.remaining() as u64 {
            return Err(StoreError::mismatch(
                &man_path,
                format!(
                    "manifest declares {body_len}-byte body, file has {}",
                    c.remaining()
                ),
            ));
        }
        let body = c.take(body_len as usize, "manifest body")?;
        let got = crc32(body);
        if got != body_crc {
            return Err(StoreError::crc(&man_path, "manifest body", body_crc, got));
        }
        let mut b = Cursor::new(body, &man_path);
        let n_ranks = b.u32("n_ranks")? as usize;
        let n_events = b.u64("n_events")?;
        let n_segments = b.u32("n_segments")?;
        let t_lo = b.u64("t_lo")?;
        let t_hi = b.u64("t_hi")?;
        let mut segs = Vec::new();
        let mut expect_first = 0u64;
        for i in 0..n_segments {
            let first_event = b.u64("segment first_event")?;
            let frames = b.u32("segment frame count")?;
            if first_event != expect_first {
                return Err(StoreError::mismatch(
                    &man_path,
                    format!("segment {i} first_event {first_event}, expected {expect_first}"),
                ));
            }
            expect_first += frames as u64;
            segs.push(SegMeta {
                first_event,
                frames,
                payload_len: 0,
                payload_crc: 0,
                offsets_crc: 0,
            });
        }
        if expect_first != n_events {
            return Err(StoreError::mismatch(
                &man_path,
                format!("segments cover {expect_first} events, manifest declares {n_events}"),
            ));
        }
        let n_sites = b.u32("site count")? as usize;
        let mut sites = Vec::with_capacity(n_sites.min(1 << 20));
        for _ in 0..n_sites {
            let line = b.u32("site line")?;
            let file = b.string("site file")?;
            let func = b.string("site func")?;
            sites.push(SourceLoc::new(file, line, func));
        }
        if b.remaining() != 0 {
            return Err(StoreError::mismatch(
                &man_path,
                format!("manifest body has {} trailing bytes", b.remaining()),
            ));
        }

        // ---- segment headers ----
        for (i, seg) in segs.iter_mut().enumerate() {
            let path = dir.join(segment_file(i as u32));
            let mut f = std::fs::File::open(&path).map_err(|e| StoreError::io(&path, e))?;
            let file_len = f.metadata().map_err(|e| StoreError::io(&path, e))?.len();
            let mut hdr = [0u8; SEGMENT_HEADER_LEN];
            f.read_exact(&mut hdr)
                .map_err(|e| StoreError::from_read(&path, "segment header", e))?;
            let mut h = Cursor::new(&hdr, &path);
            check_magic(&path, &mut h, SEGMENT_MAGIC)?;
            let seg_ix = h.u32("segment index")?;
            let frames = h.u32("segment frame count")?;
            let payload_len = h.u64("segment payload length")?;
            let payload_crc = h.u32("segment payload crc")?;
            let offsets_crc = h.u32("segment offsets crc")?;
            let first_event = h.u64("segment first event")?;
            if seg_ix != i as u32 {
                return Err(StoreError::mismatch(
                    &path,
                    format!("header says segment {seg_ix}, filename says {i}"),
                ));
            }
            if frames != seg.frames || first_event != seg.first_event {
                return Err(StoreError::mismatch(
                    &path,
                    format!(
                        "header ({frames} frames from {first_event}) disagrees with \
                         manifest ({} frames from {})",
                        seg.frames, seg.first_event
                    ),
                ));
            }
            let want_len = SEGMENT_HEADER_LEN as u64 + 4 * frames as u64 + payload_len;
            if file_len != want_len {
                return Err(StoreError::mismatch(
                    &path,
                    format!("file is {file_len} bytes, header implies {want_len}"),
                ));
            }
            seg.payload_len = payload_len;
            seg.payload_crc = payload_crc;
            seg.offsets_crc = offsets_crc;
        }

        // ---- index directory ----
        let idx_path = dir.join(INDEX_FILE);
        let mut f = std::fs::File::open(&idx_path).map_err(|e| StoreError::io(&idx_path, e))?;
        let index_len = f
            .metadata()
            .map_err(|e| StoreError::io(&idx_path, e))?
            .len();
        let mut hdr = [0u8; 20];
        f.read_exact(&mut hdr)
            .map_err(|e| StoreError::from_read(&idx_path, "index header", e))?;
        let mut h = Cursor::new(&hdr, &idx_path);
        check_magic(&idx_path, &mut h, INDEX_MAGIC)?;
        let idx_events = h.u64("index event count")?;
        if idx_events != n_events {
            return Err(StoreError::mismatch(
                &idx_path,
                format!("index covers {idx_events} events, manifest declares {n_events}"),
            ));
        }
        let n_entries = h.u32("index entry count")? as usize;
        if n_entries > 1 << 20 {
            return Err(StoreError::mismatch(
                &idx_path,
                format!("index entry count {n_entries} unreasonable"),
            ));
        }
        let mut dir_bytes = vec![0u8; n_entries * DIR_ENTRY_LEN];
        f.read_exact(&mut dir_bytes)
            .map_err(|e| StoreError::from_read(&idx_path, "index directory", e))?;
        let mut crc_bytes = [0u8; 4];
        f.read_exact(&mut crc_bytes)
            .map_err(|e| StoreError::from_read(&idx_path, "index directory crc", e))?;
        let want = u32::from_le_bytes(crc_bytes);
        let got = crc32(&dir_bytes);
        if got != want {
            return Err(StoreError::crc(&idx_path, "index directory", want, got));
        }
        let mut d = Cursor::new(&dir_bytes, &idx_path);
        let mut index = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let e = DirEntry {
                kind: d.u8("entry kind")?,
                key: d.i64("entry key")?,
                entry_bytes: d.u32("entry width")?,
                n_items: d.u64("entry item count")?,
                offset: d.u64("entry offset")?,
                crc: d.u32("entry crc")?,
            };
            let size = e.entry_bytes as u64 * e.n_items;
            let end = e
                .offset
                .checked_add(size)
                .ok_or_else(|| StoreError::mismatch(&idx_path, "index section offset overflow"))?;
            if end > index_len {
                return Err(StoreError::mismatch(
                    &idx_path,
                    format!(
                        "section (kind {}, key {}) spans {}..{end}, file is {index_len} bytes",
                        e.kind, e.key, e.offset
                    ),
                ));
            }
            index.push(e);
        }

        Ok(DiskStore {
            dir: dir.to_path_buf(),
            n_ranks,
            n_events,
            t_lo,
            t_hi,
            sites: SiteTable::from_snapshot(sites),
            segs,
            index,
            seg_cache: Mutex::new(SegCache::default()),
            sections: Mutex::new(HashMap::new()),
            time_samples: Mutex::new(None),
        })
    }

    pub fn n_events(&self) -> u64 {
        self.n_events
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Smallest `t_start` and largest `t_end` over all events.
    pub fn time_bounds(&self) -> (u64, u64) {
        (self.t_lo, self.t_hi)
    }

    // ---- section loading ----

    fn read_section_bytes(&self, e: &DirEntry) -> Result<Vec<u8>, StoreError> {
        let idx_path = self.dir.join(INDEX_FILE);
        let mut f = std::fs::File::open(&idx_path).map_err(|e| StoreError::io(&idx_path, e))?;
        f.seek(SeekFrom::Start(e.offset))
            .map_err(|err| StoreError::io(&idx_path, err))?;
        let mut buf = vec![0u8; (e.entry_bytes as u64 * e.n_items) as usize];
        f.read_exact(&mut buf)
            .map_err(|err| StoreError::from_read(&idx_path, "index section", err))?;
        let got = crc32(&buf);
        if got != e.crc {
            return Err(StoreError::crc(
                &idx_path,
                format!("index section (kind {}, key {})", e.kind, e.key),
                e.crc,
                got,
            ));
        }
        Ok(buf)
    }

    fn find_entry(&self, kind: u8, key: i64) -> Option<&DirEntry> {
        self.index.iter().find(|e| e.kind == kind && e.key == key)
    }

    /// Load (or fetch cached) an id-list section. A missing postings
    /// section means "no events with this key" — an empty list.
    fn ids_section(&self, kind: u8, key: i64) -> Result<IdsList, StoreError> {
        if let Some(s) = self.sections.lock().unwrap().get(&(kind, key)) {
            return Ok(s.clone());
        }
        let idx_path = self.dir.join(INDEX_FILE);
        let ids = match self.find_entry(kind, key) {
            None if kind == SEC_CANON => {
                return Err(StoreError::mismatch(
                    &idx_path,
                    "index has no canonical-order section",
                ))
            }
            None => Arc::new(Vec::new()),
            Some(e) => {
                if e.entry_bytes != 4 {
                    return Err(StoreError::mismatch(
                        &idx_path,
                        format!("id section has entry width {}", e.entry_bytes),
                    ));
                }
                let bytes = self.read_section_bytes(e)?;
                let mut ids = Vec::with_capacity(e.n_items as usize);
                for ch in bytes.chunks_exact(4) {
                    let id = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
                    if id as u64 >= self.n_events {
                        return Err(StoreError::mismatch(
                            &idx_path,
                            format!("index references event {id}, store has {}", self.n_events),
                        ));
                    }
                    ids.push(id);
                }
                Arc::new(ids)
            }
        };
        self.sections
            .lock()
            .unwrap()
            .insert((kind, key), ids.clone());
        Ok(ids)
    }

    /// The sparse `(t_start, canonical position)` samples.
    fn time_section(&self) -> Result<TimeSamples, StoreError> {
        if let Some(s) = self.time_samples.lock().unwrap().as_ref() {
            return Ok(s.clone());
        }
        let idx_path = self.dir.join(INDEX_FILE);
        let samples = match self.index.iter().find(|e| e.kind == SEC_TIME) {
            None => Arc::new(Vec::new()),
            Some(e) => {
                if e.entry_bytes != 16 {
                    return Err(StoreError::mismatch(
                        &idx_path,
                        format!("time section has entry width {}", e.entry_bytes),
                    ));
                }
                let bytes = self.read_section_bytes(e)?;
                let mut v = Vec::with_capacity(e.n_items as usize);
                for ch in bytes.chunks_exact(16) {
                    let t = u64::from_le_bytes(ch[0..8].try_into().unwrap());
                    let pos = u64::from_le_bytes(ch[8..16].try_into().unwrap());
                    if pos >= self.n_events {
                        return Err(StoreError::mismatch(
                            &idx_path,
                            format!("time sample points at position {pos} of {}", self.n_events),
                        ));
                    }
                    v.push((t, pos));
                }
                Arc::new(v)
            }
        };
        *self.time_samples.lock().unwrap() = Some(samples.clone());
        Ok(samples)
    }

    // ---- segment loading ----

    fn load_segment(&self, seg_ix: u32) -> Result<Arc<LoadedSeg>, StoreError> {
        {
            let cache = self.seg_cache.lock().unwrap();
            if let Some(s) = cache.map.get(&seg_ix) {
                return Ok(s.clone());
            }
        }
        let meta = &self.segs[seg_ix as usize];
        let path = self.dir.join(segment_file(seg_ix));
        let bytes = read_file(&path)?;
        let mut c = Cursor::new(&bytes, &path);
        c.take(SEGMENT_HEADER_LEN, "segment header")?;
        let offsets_bytes = c.take(4 * meta.frames as usize, "segment offset table")?;
        let got = crc32(offsets_bytes);
        if got != meta.offsets_crc {
            return Err(StoreError::crc(
                &path,
                "segment offset table",
                meta.offsets_crc,
                got,
            ));
        }
        let payload = c.take(meta.payload_len as usize, "segment payload")?;
        let got = crc32(payload);
        if got != meta.payload_crc {
            return Err(StoreError::crc(
                &path,
                "segment payload",
                meta.payload_crc,
                got,
            ));
        }
        let mut offsets = Vec::with_capacity(meta.frames as usize);
        let mut prev = 0u32;
        for (i, ch) in offsets_bytes.chunks_exact(4).enumerate() {
            let o = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
            if o as u64 >= meta.payload_len.max(1) || (i > 0 && o <= prev) {
                return Err(StoreError::mismatch(
                    &path,
                    format!("frame offset {o} out of order or out of bounds"),
                ));
            }
            prev = o;
            offsets.push(o);
        }
        let loaded = Arc::new(LoadedSeg {
            offsets,
            payload: payload.to_vec(),
        });
        let mut cache = self.seg_cache.lock().unwrap();
        if !cache.map.contains_key(&seg_ix) {
            while cache.fifo.len() >= SEGMENT_CACHE_CAP {
                if let Some(old) = cache.fifo.pop_front() {
                    cache.map.remove(&old);
                }
            }
            cache.fifo.push_back(seg_ix);
            cache.map.insert(seg_ix, loaded.clone());
        }
        Ok(loaded)
    }

    /// Decode the event with arrival id `id`.
    pub fn fetch(&self, id: u64) -> Result<TraceRecord, StoreError> {
        self.fetch_memo(id, &mut None)
    }

    /// `fetch` with a caller-held segment memo. Index selections visit
    /// ids in ascending arrival order, so consecutive fetches almost
    /// always land in the same segment; the memo skips the segment
    /// binary search and the shared cache lock on those hits.
    fn fetch_memo(&self, id: u64, memo: &mut Option<SegMemo>) -> Result<TraceRecord, StoreError> {
        if id >= self.n_events {
            return Err(StoreError::mismatch(
                &self.dir,
                format!("event id {id} out of range ({} events)", self.n_events),
            ));
        }
        let hit = memo
            .as_ref()
            .is_some_and(|m| id >= m.first_event && id < m.end_event);
        if !hit {
            let seg_ix = match self.segs.binary_search_by_key(&id, |s| s.first_event) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let seg = self.load_segment(seg_ix as u32)?;
            let meta = &self.segs[seg_ix];
            *memo = Some(SegMemo {
                first_event: meta.first_event,
                end_event: meta.first_event + meta.frames as u64,
                seg,
                path: self.dir.join(segment_file(seg_ix as u32)),
            });
        }
        let m = memo.as_ref().unwrap();
        let within = (id - m.first_event) as usize;
        let off = m.seg.offsets[within] as usize;
        let mut c = Cursor::new(&m.seg.payload[off..], &m.path);
        decode_frame(&mut c, &m.path)
    }

    // ---- queries ----

    /// Stream the events matching `sel` (see [`Select`] for the order
    /// contract). Decoding is lazy: one frame per `next()`.
    pub fn cursor(&self, sel: Select) -> Result<EventCursor<'_>, StoreError> {
        let (ids, window) = match sel {
            Select::All => (self.ids_section(SEC_CANON, 0)?, None),
            Select::Rank(r) => {
                if r.ix() >= self.n_ranks {
                    (Arc::new(Vec::new()), None)
                } else {
                    (self.ids_section(SEC_RANK, r.0 as i64)?, None)
                }
            }
            Select::Tag(t) => (self.ids_section(SEC_TAG, t.0 as i64)?, None),
            Select::Kind(k) => (self.ids_section(SEC_KIND, kind_code(k) as i64)?, None),
            Select::TimeWindow(lo, hi) => {
                let canon = self.ids_section(SEC_CANON, 0)?;
                // Sparse cutoff: the first sample past `hi` bounds the
                // canonical prefix that can possibly start within the
                // window; the cursor still early-stops exactly.
                let samples = self.time_section()?;
                let cut = samples.partition_point(|&(t, _)| t <= hi);
                let end = if cut < samples.len() {
                    samples[cut].1 as usize
                } else {
                    canon.len()
                };
                (Arc::new(canon[..end].to_vec()), Some((lo, hi)))
            }
        };
        Ok(EventCursor {
            store: self,
            ids,
            pos: 0,
            window,
            done: false,
            memo: None,
        })
    }

    /// One rank's events, program (marker) order.
    pub fn by_rank(&self, rank: Rank) -> Result<EventCursor<'_>, StoreError> {
        self.cursor(Select::Rank(rank))
    }

    /// Events carrying `tag`, canonical order.
    pub fn by_tag(&self, tag: Tag) -> Result<EventCursor<'_>, StoreError> {
        self.cursor(Select::Tag(tag))
    }

    /// Events of construct `kind`, canonical order.
    pub fn by_construct(&self, kind: EventKind) -> Result<EventCursor<'_>, StoreError> {
        self.cursor(Select::Kind(kind))
    }

    /// Events whose span intersects `[lo, hi]`, canonical order.
    pub fn by_time_window(&self, lo: u64, hi: u64) -> Result<EventCursor<'_>, StoreError> {
        self.cursor(Select::TimeWindow(lo, hi))
    }

    /// Full integrity pass: every section and every segment is loaded,
    /// CRC-checked, decoded, and cross-checked against the manifest.
    /// Expensive by design — this is the corruption audit, not the query
    /// path.
    pub fn verify(&self) -> Result<(), StoreError> {
        let idx_path = self.dir.join(INDEX_FILE);
        // Canonical order must be a permutation of all arrival ids.
        let canon = self.ids_section(SEC_CANON, 0)?;
        if canon.len() as u64 != self.n_events {
            return Err(StoreError::mismatch(
                &idx_path,
                format!(
                    "canonical section lists {} of {} events",
                    canon.len(),
                    self.n_events
                ),
            ));
        }
        let mut seen = vec![false; canon.len()];
        for &id in canon.iter() {
            if seen[id as usize] {
                return Err(StoreError::mismatch(
                    &idx_path,
                    format!("event {id} appears twice in canonical order"),
                ));
            }
            seen[id as usize] = true;
        }
        // Every other id section must load (bounds + crc checked there).
        let entries: Vec<DirEntry> = self.index.clone();
        let mut rank_total = 0u64;
        for e in &entries {
            match e.kind {
                SEC_CANON | SEC_TIME => {}
                SEC_RANK | SEC_TAG | SEC_KIND => {
                    let ids = self.ids_section(e.kind, e.key)?;
                    if e.kind == SEC_RANK {
                        rank_total += ids.len() as u64;
                    }
                }
                other => {
                    return Err(StoreError::mismatch(
                        &idx_path,
                        format!("unknown index section kind {other}"),
                    ));
                }
            }
        }
        if rank_total != self.n_events {
            return Err(StoreError::mismatch(
                &idx_path,
                format!(
                    "rank postings cover {rank_total} of {} events",
                    self.n_events
                ),
            ));
        }
        // Time samples must agree with the records they point at.
        let samples = self.time_section()?;
        for &(t, pos) in samples.iter() {
            let rec = self.fetch(canon[pos as usize] as u64)?;
            if rec.t_start != t {
                return Err(StoreError::mismatch(
                    &idx_path,
                    format!(
                        "time sample at position {pos} says t_start {t}, record says {}",
                        rec.t_start
                    ),
                ));
            }
        }
        // Every frame of every segment must decode.
        for seg_ix in 0..self.segs.len() as u32 {
            let seg = self.load_segment(seg_ix)?;
            let path = self.dir.join(segment_file(seg_ix));
            for &off in &seg.offsets {
                let mut c = Cursor::new(&seg.payload[off as usize..], &path);
                decode_frame(&mut c, &path)?;
            }
        }
        Ok(())
    }
}

/// The cursor's cached current segment (see [`DiskStore::fetch_memo`]).
struct SegMemo {
    first_event: u64,
    /// One past the last arrival id in the segment.
    end_event: u64,
    seg: Arc<LoadedSeg>,
    path: PathBuf,
}

/// A lazy iterator over a selection's events.
pub struct EventCursor<'a> {
    store: &'a DiskStore,
    ids: Arc<Vec<u32>>,
    pos: usize,
    /// Set for time-window selections: `(lo, hi)` span filter with
    /// early stop once `t_start` passes `hi`.
    window: Option<(u64, u64)>,
    done: bool,
    memo: Option<SegMemo>,
}

impl EventCursor<'_> {
    /// Ids this cursor will visit (before any window filtering).
    pub fn remaining_ids(&self) -> usize {
        self.ids.len() - self.pos
    }
}

impl Iterator for EventCursor<'_> {
    type Item = Result<TraceRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done && self.pos < self.ids.len() {
            let id = self.ids[self.pos] as u64;
            self.pos += 1;
            match self.store.fetch_memo(id, &mut self.memo) {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(rec) => {
                    if let Some((lo, hi)) = self.window {
                        if rec.t_start > hi {
                            // Canonical order is sorted by t_start: no
                            // later event can intersect the window.
                            self.done = true;
                            return None;
                        }
                        if rec.t_end < lo {
                            continue;
                        }
                    }
                    return Some(Ok(rec));
                }
            }
        }
        None
    }
}

impl TraceSource for DiskStore {
    fn source_n_ranks(&self) -> usize {
        self.n_ranks
    }

    fn source_len(&self) -> u64 {
        self.n_events
    }

    fn source_sites(&self) -> SiteTable {
        self.sites.clone()
    }

    fn source_time_bounds(&self) -> Result<(u64, u64), SourceError> {
        Ok((self.t_lo, self.t_hi))
    }

    fn select(&self, sel: Select) -> Result<EventIter<'_>, SourceError> {
        let cur = self.cursor(sel).map_err(SourceError::from)?;
        Ok(Box::new(cur.map(|r| r.map_err(SourceError::from))))
    }
}
