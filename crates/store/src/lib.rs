//! On-disk indexed trace store.
//!
//! The paper treats the trace as the debugging substrate; this crate makes
//! that substrate persistent and random-access. A *store directory* holds
//! a run's events in append-only binary segments plus fixed-width zone
//! indexes (per rank, per tag, per construct) and a sparse time index, so
//! the questions the debugger asks — "rank 3's events in program order",
//! "everything with tag 20", "what intersects `[t0, t1]`" — are index
//! lookups over a cold file, not linear scans over a materialized vector.
//!
//! Three entry points:
//!
//! * [`StoreWriter`] / [`SharedWriter`] — streaming ingestion; the engine
//!   tees its flush path through the sink, so the store is built *while
//!   the run executes*;
//! * [`ingest_store`] / [`ingest_records`] — one-shot conversion of an
//!   existing trace;
//! * [`DiskStore`] — the reader: cheap [`DiskStore::open`], lazy
//!   CRC-verified segment loads, cursor-based queries, and a
//!   [`TraceSource`](tracedbg_trace::TraceSource) impl so every consumer
//!   of the in-memory reference store works against disk unchanged.
//!
//! Every query returns events byte-identical to the same selection over
//! the in-memory [`TraceStore`](tracedbg_trace::TraceStore) — the store
//! is a pure index, never a filter; `crates/store/tests` holds the
//! property battery that pins this.

pub mod crc;
pub mod error;
pub mod frame;
pub mod layout;
pub mod reader;
pub mod writer;

pub use error::StoreError;
pub use reader::{DiskStore, EventCursor};
pub use writer::{
    ingest_records, ingest_store, SharedWriter, StoreOptions, StoreWriter, WriteSummary,
};
