//! Typed failures for every store operation.
//!
//! The robustness contract of the store is that *no* corrupt, truncated,
//! or mismatched input ever panics or yields a silent partial read —
//! every failure is one of these variants, naming the file and what was
//! wrong with it.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a store could not be written, opened, or read.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io { path: PathBuf, source: io::Error },
    /// A file did not start with its expected magic number.
    BadMagic { path: PathBuf, found: [u8; 4] },
    /// A file carries a format version this build does not speak.
    BadVersion {
        path: PathBuf,
        found: u32,
        want: u32,
    },
    /// A checksum did not match; `what` names the protected region.
    CrcMismatch {
        path: PathBuf,
        what: String,
        want: u32,
        got: u32,
    },
    /// The file ended before `what` could be read in full.
    Truncated { path: PathBuf, what: String },
    /// Two pieces of the store disagree (lengths, counts, bounds).
    Mismatch { path: PathBuf, what: String },
}

impl StoreError {
    pub fn io(path: &Path, source: io::Error) -> Self {
        StoreError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub fn truncated(path: &Path, what: impl Into<String>) -> Self {
        StoreError::Truncated {
            path: path.to_path_buf(),
            what: what.into(),
        }
    }

    pub fn mismatch(path: &Path, what: impl Into<String>) -> Self {
        StoreError::Mismatch {
            path: path.to_path_buf(),
            what: what.into(),
        }
    }

    pub fn crc(path: &Path, what: impl Into<String>, want: u32, got: u32) -> Self {
        StoreError::CrcMismatch {
            path: path.to_path_buf(),
            what: what.into(),
            want,
            got,
        }
    }

    /// Map a read error: `UnexpectedEof` is a truncation (the common way
    /// corruption presents), everything else is I/O.
    pub fn from_read(path: &Path, what: &str, e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::truncated(path, what)
        } else {
            StoreError::io(path, e)
        }
    }

    /// The file the error is about.
    pub fn path(&self) -> &Path {
        match self {
            StoreError::Io { path, .. }
            | StoreError::BadMagic { path, .. }
            | StoreError::BadVersion { path, .. }
            | StoreError::CrcMismatch { path, .. }
            | StoreError::Truncated { path, .. }
            | StoreError::Mismatch { path, .. } => path,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: io error: {source}", path.display())
            }
            StoreError::BadMagic { path, found } => write!(
                f,
                "{}: bad magic {:?} (not a tracedbg store file)",
                path.display(),
                found
            ),
            StoreError::BadVersion { path, found, want } => write!(
                f,
                "{}: format version {found} (this build speaks {want})",
                path.display()
            ),
            StoreError::CrcMismatch {
                path,
                what,
                want,
                got,
            } => write!(
                f,
                "{}: crc mismatch in {what} (expected {want:#010x}, computed {got:#010x})",
                path.display()
            ),
            StoreError::Truncated { path, what } => {
                write!(f, "{}: truncated reading {what}", path.display())
            }
            StoreError::Mismatch { path, what } => {
                write!(f, "{}: inconsistent store: {what}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for tracedbg_trace::SourceError {
    fn from(e: StoreError) -> Self {
        tracedbg_trace::SourceError::new(e.to_string())
    }
}
