//! Building a store directory: streaming ingestion and index construction.
//!
//! [`StoreWriter`] accepts records one at a time in *arrival* order (the
//! order the engine's flush path emits them), spilling full segments to
//! disk as it goes; only a small fixed-width key per event is retained in
//! memory. [`StoreWriter::finish`] then computes the canonical
//! permutation and the zone indexes and writes `index.tds` +
//! `manifest.tds`.
//!
//! Because execution markers are unique within a rank, the canonical key
//! `(t_start, rank, marker)` is total — sorting the retained keys
//! reproduces exactly the order [`TraceStore::build`] establishes, no
//! matter how flush batches interleaved.
//!
//! [`TraceStore::build`]: tracedbg_trace::TraceStore::build

use crate::error::StoreError;
use crate::frame::{encode_frame, kind_code};
use crate::layout::{
    segment_file, Builder, DIR_ENTRY_LEN, INDEX_FILE, INDEX_MAGIC, MANIFEST_FILE, MANIFEST_MAGIC,
    SEC_CANON, SEC_KIND, SEC_RANK, SEC_TAG, SEC_TIME, SEGMENT_MAGIC, TIME_STRIDE, VERSION,
};
use crate::{crc::crc32, reader::DiskStore};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tracedbg_trace::{SiteTable, TraceRecord, TraceSink, TraceStore};

/// Tunables for a store being written.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Events per segment file (the unit of lazy loading and CRC
    /// verification on the read side).
    pub segment_events: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_events: 65_536,
        }
    }
}

/// What a finished write produced.
#[derive(Clone, Copy, Debug)]
pub struct WriteSummary {
    pub n_events: u64,
    pub n_segments: u32,
    pub n_ranks: usize,
    /// Total bytes across all files of the directory.
    pub bytes: u64,
}

/// The per-event key retained in memory for index construction.
struct EventKey {
    t_start: u64,
    rank: u32,
    marker: u64,
    t_end: u64,
    tag: Option<i32>,
    kind: u8,
}

/// Streaming store builder. See the module docs for the protocol.
pub struct StoreWriter {
    dir: PathBuf,
    opts: StoreOptions,
    keys: Vec<EventKey>,
    /// Offsets (relative to payload start) of the current segment's frames.
    cur_offsets: Vec<u32>,
    cur_payload: Builder,
    /// Arrival id of the current segment's first event.
    cur_first: u64,
    /// (first_event, frame_count) of every flushed segment.
    segs: Vec<(u64, u32)>,
    bytes: u64,
}

impl StoreWriter {
    /// Create (or reset) a store directory and return a writer for it.
    /// Any `*.tds` files already present are removed so a shorter rewrite
    /// can never leave stale segments behind.
    pub fn create(dir: &Path, opts: StoreOptions) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(dir, e))?;
            let p = entry.path();
            if p.extension().is_some_and(|x| x == "tds") {
                std::fs::remove_file(&p).map_err(|e| StoreError::io(&p, e))?;
            }
        }
        Ok(StoreWriter {
            dir: dir.to_path_buf(),
            opts: StoreOptions {
                segment_events: opts.segment_events.max(1),
            },
            keys: Vec::new(),
            cur_offsets: Vec::new(),
            cur_payload: Builder::new(),
            cur_first: 0,
            segs: Vec::new(),
            bytes: 0,
        })
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> u64 {
        self.keys.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Append one record (arrival order).
    pub fn push(&mut self, rec: &TraceRecord) -> Result<(), StoreError> {
        self.cur_offsets.push(self.cur_payload.buf.len() as u32);
        encode_frame(&mut self.cur_payload, rec);
        self.keys.push(EventKey {
            t_start: rec.t_start,
            rank: rec.rank.0,
            marker: rec.marker,
            t_end: rec.t_end,
            tag: rec.msg.as_ref().map(|m| m.tag.0),
            kind: kind_code(rec.kind),
        });
        if self.cur_offsets.len() >= self.opts.segment_events {
            self.flush_segment()?;
        }
        Ok(())
    }

    fn flush_segment(&mut self) -> Result<(), StoreError> {
        if self.cur_offsets.is_empty() {
            return Ok(());
        }
        let seg_ix = self.segs.len() as u32;
        let frames = self.cur_offsets.len() as u32;
        let mut offsets = Builder::new();
        for &o in &self.cur_offsets {
            offsets.u32(o);
        }
        let mut f = Builder::new();
        f.bytes(&SEGMENT_MAGIC);
        f.u32(VERSION);
        f.u32(seg_ix);
        f.u32(frames);
        f.u64(self.cur_payload.buf.len() as u64);
        f.u32(crc32(&self.cur_payload.buf));
        f.u32(crc32(&offsets.buf));
        f.u64(self.cur_first);
        f.bytes(&offsets.buf);
        f.bytes(&self.cur_payload.buf);
        let path = self.dir.join(segment_file(seg_ix));
        std::fs::write(&path, &f.buf).map_err(|e| StoreError::io(&path, e))?;
        self.bytes += f.buf.len() as u64;
        self.segs.push((self.cur_first, frames));
        self.cur_first += frames as u64;
        self.cur_offsets.clear();
        self.cur_payload = Builder::new();
        Ok(())
    }

    /// Flush the tail segment, build the indexes, and write the manifest.
    ///
    /// `n_ranks` is the declared rank count (0 to infer); like
    /// `TraceStore::build`, the writer never records fewer ranks than the
    /// events reference.
    pub fn finish(mut self, sites: &SiteTable, n_ranks: usize) -> Result<WriteSummary, StoreError> {
        self.flush_segment()?;
        let n = self.keys.len();
        let inferred = self
            .keys
            .iter()
            .map(|k| k.rank as usize + 1)
            .max()
            .unwrap_or(0);
        let n_ranks = n_ranks.max(inferred);

        // Canonical permutation: arrival ids sorted by the total key.
        let mut canon: Vec<u32> = (0..n as u32).collect();
        canon.sort_by_key(|&i| {
            let k = &self.keys[i as usize];
            (k.t_start, k.rank, k.marker)
        });
        // Per-rank lanes: canonical order restricted to the rank, then
        // stable-sorted by marker (program order) — the exact recipe of
        // `TraceStore::build`.
        let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
        for &i in &canon {
            lanes[self.keys[i as usize].rank as usize].push(i);
        }
        for lane in &mut lanes {
            lane.sort_by_key(|&i| self.keys[i as usize].marker);
        }
        // Tag and construct postings, canonical order.
        let mut tags: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        let mut kinds: BTreeMap<u8, Vec<u32>> = BTreeMap::new();
        for &i in &canon {
            let k = &self.keys[i as usize];
            if let Some(t) = k.tag {
                tags.entry(t as i64).or_default().push(i);
            }
            kinds.entry(k.kind).or_default().push(i);
        }
        // Sparse time samples: (t_start, canon position) every stride.
        let mut samples: Vec<(u64, u64)> = Vec::new();
        let mut pos = 0u64;
        while (pos as usize) < n {
            let id = canon[pos as usize] as usize;
            samples.push((self.keys[id].t_start, pos));
            pos += TIME_STRIDE;
        }
        let t_lo = self.keys.iter().map(|k| k.t_start).min().unwrap_or(0);
        let t_hi = self.keys.iter().map(|k| k.t_end).max().unwrap_or(0);

        // ---- index.tds ----
        struct Section {
            kind: u8,
            key: i64,
            entry_bytes: u32,
            data: Vec<u8>,
            n_items: u64,
        }
        fn ids_section(kind: u8, key: i64, ids: &[u32]) -> Section {
            let mut b = Builder::new();
            for &i in ids {
                b.u32(i);
            }
            Section {
                kind,
                key,
                entry_bytes: 4,
                n_items: ids.len() as u64,
                data: b.buf,
            }
        }
        let mut sections = Vec::new();
        sections.push(ids_section(SEC_CANON, 0, &canon));
        for (r, lane) in lanes.iter().enumerate() {
            sections.push(ids_section(SEC_RANK, r as i64, lane));
        }
        for (tag, ids) in &tags {
            sections.push(ids_section(SEC_TAG, *tag, ids));
        }
        for (kind, ids) in &kinds {
            sections.push(ids_section(SEC_KIND, *kind as i64, ids));
        }
        {
            let mut b = Builder::new();
            for &(t, p) in &samples {
                b.u64(t);
                b.u64(p);
            }
            sections.push(Section {
                kind: SEC_TIME,
                key: TIME_STRIDE as i64,
                entry_bytes: 16,
                n_items: samples.len() as u64,
                data: b.buf,
            });
        }

        let header_len = 4 + 4 + 8 + 4;
        let dir_len = sections.len() * DIR_ENTRY_LEN;
        let mut offset = (header_len + dir_len + 4) as u64;
        let mut dir = Builder::new();
        for s in &sections {
            dir.u8(s.kind);
            dir.i64(s.key);
            dir.u32(s.entry_bytes);
            dir.u64(s.n_items);
            dir.u64(offset);
            dir.u32(crc32(&s.data));
            offset += s.data.len() as u64;
        }
        let mut idx = Builder::new();
        idx.bytes(&INDEX_MAGIC);
        idx.u32(VERSION);
        idx.u64(n as u64);
        idx.u32(sections.len() as u32);
        idx.bytes(&dir.buf);
        idx.u32(crc32(&dir.buf));
        for s in &sections {
            idx.bytes(&s.data);
        }
        let idx_path = self.dir.join(INDEX_FILE);
        std::fs::write(&idx_path, &idx.buf).map_err(|e| StoreError::io(&idx_path, e))?;
        self.bytes += idx.buf.len() as u64;

        // ---- manifest.tds ----
        let mut body = Builder::new();
        body.u32(n_ranks as u32);
        body.u64(n as u64);
        body.u32(self.segs.len() as u32);
        body.u64(t_lo);
        body.u64(t_hi);
        for &(first, frames) in &self.segs {
            body.u64(first);
            body.u32(frames);
        }
        let snapshot = sites.snapshot();
        body.u32(snapshot.len() as u32);
        for s in &snapshot {
            body.u32(s.line);
            body.string(&s.file);
            body.string(&s.func);
        }
        let mut man = Builder::new();
        man.bytes(&MANIFEST_MAGIC);
        man.u32(VERSION);
        man.u64(body.buf.len() as u64);
        man.u32(crc32(&body.buf));
        man.bytes(&body.buf);
        let man_path = self.dir.join(MANIFEST_FILE);
        std::fs::write(&man_path, &man.buf).map_err(|e| StoreError::io(&man_path, e))?;
        self.bytes += man.buf.len() as u64;

        Ok(WriteSummary {
            n_events: n as u64,
            n_segments: self.segs.len() as u32,
            n_ranks,
            bytes: self.bytes,
        })
    }
}

/// Write a whole in-memory store to `dir` and reopen it.
pub fn ingest_store(
    store: &TraceStore,
    dir: &Path,
    opts: StoreOptions,
) -> Result<DiskStore, StoreError> {
    let mut w = StoreWriter::create(dir, opts)?;
    for r in store.records() {
        w.push(r)?;
    }
    w.finish(store.sites(), store.n_ranks())?;
    DiskStore::open(dir)
}

/// Ingest loose records (e.g. a parsed trace file) into `dir`.
pub fn ingest_records(
    records: &[TraceRecord],
    sites: &SiteTable,
    n_ranks: usize,
    dir: &Path,
    opts: StoreOptions,
) -> Result<WriteSummary, StoreError> {
    let mut w = StoreWriter::create(dir, opts)?;
    for r in records {
        w.push(r)?;
    }
    w.finish(sites, n_ranks)
}

/// A cloneable, engine-attachable wrapper around [`StoreWriter`].
///
/// The engine owns the attached sink for the duration of a run; the CLI
/// keeps the other handle and calls [`SharedWriter::finish`] once the run
/// is collected. Write errors are sticky and surface at finish — the
/// simulation is never interrupted by a disk problem.
#[derive(Clone)]
pub struct SharedWriter {
    inner: Arc<Mutex<SharedInner>>,
}

struct SharedInner {
    writer: Option<StoreWriter>,
    err: Option<StoreError>,
}

impl SharedWriter {
    pub fn new(writer: StoreWriter) -> Self {
        SharedWriter {
            inner: Arc::new(Mutex::new(SharedInner {
                writer: Some(writer),
                err: None,
            })),
        }
    }

    /// Finish the underlying writer (first sticky error wins).
    pub fn finish(&self, sites: &SiteTable, n_ranks: usize) -> Result<WriteSummary, StoreError> {
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.err.take() {
            return Err(e);
        }
        let dir = PathBuf::new();
        let w = g
            .writer
            .take()
            .ok_or_else(|| StoreError::mismatch(&dir, "store writer already finished"))?;
        w.finish(sites, n_ranks)
    }
}

impl TraceSink for SharedWriter {
    fn accept(&mut self, rec: &TraceRecord) {
        let mut g = self.inner.lock().unwrap();
        if g.err.is_some() {
            return;
        }
        if let Some(w) = g.writer.as_mut() {
            if let Err(e) = w.push(rec) {
                g.err = Some(e);
            }
        }
    }
}
