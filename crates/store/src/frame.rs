//! The per-event frame codec.
//!
//! A frame body carries one [`TraceRecord`] in exactly the field layout of
//! the `.tbin` record encoding (`tracedbg_trace::file`), so the two
//! formats stay convertible without re-quantizing anything. Inside a
//! segment, each frame is length-prefixed (`u32` body length, then the
//! body) so a cursor can skip records without decoding them.

use crate::error::StoreError;
use crate::layout::{Builder, Cursor};
use tracedbg_trace::{EventKind, MsgInfo, Rank, SiteId, Tag, TraceRecord};

pub(crate) fn kind_code(kind: EventKind) -> u8 {
    EventKind::all()
        .iter()
        .position(|k| *k == kind)
        .expect("kind in table") as u8
}

/// Append one record's frame (length prefix + body) to `out`.
pub fn encode_frame(out: &mut Builder, r: &TraceRecord) {
    let mut body = Builder::new();
    body.u32(r.rank.0);
    body.u8(kind_code(r.kind));
    body.u64(r.marker);
    body.u64(r.t_start);
    body.u64(r.t_end);
    body.u32(r.site.0);
    body.i64(r.args[0]);
    body.i64(r.args[1]);
    let flags = (r.msg.is_some() as u8) | ((r.label.is_some() as u8) << 1);
    body.u8(flags);
    if let Some(m) = &r.msg {
        body.u32(m.src.0);
        body.u32(m.dst.0);
        body.u32(m.tag.0 as u32);
        body.u32(m.bytes);
        body.u64(m.seq);
    }
    if let Some(l) = &r.label {
        body.string(l);
    }
    out.u32(body.buf.len() as u32);
    out.bytes(&body.buf);
}

/// Decode one frame (length prefix + body) from the cursor.
pub fn decode_frame(c: &mut Cursor<'_>, path: &std::path::Path) -> Result<TraceRecord, StoreError> {
    let len = c.u32("frame length")? as usize;
    if len > c.remaining() {
        return Err(StoreError::truncated(path, "frame body"));
    }
    let body = c.take(len, "frame body")?;
    let mut b = Cursor::new(body, path);
    let rec = decode_body(&mut b, path)?;
    if b.remaining() != 0 {
        return Err(StoreError::mismatch(
            path,
            format!("frame body has {} trailing bytes", b.remaining()),
        ));
    }
    Ok(rec)
}

fn decode_body(b: &mut Cursor<'_>, path: &std::path::Path) -> Result<TraceRecord, StoreError> {
    let rank = Rank(b.u32("record rank")?);
    let code = b.u8("record kind")?;
    let kind = EventKind::all()
        .get(code as usize)
        .copied()
        .ok_or_else(|| StoreError::mismatch(path, format!("bad kind code {code}")))?;
    let marker = b.u64("record marker")?;
    let t_start = b.u64("record t_start")?;
    let t_end = b.u64("record t_end")?;
    let site = SiteId(b.u32("record site")?);
    let a0 = b.i64("record arg0")?;
    let a1 = b.i64("record arg1")?;
    let flags = b.u8("record flags")?;
    if flags & !3 != 0 {
        return Err(StoreError::mismatch(
            path,
            format!("bad record flags {flags:#04x}"),
        ));
    }
    let msg = if flags & 1 != 0 {
        Some(MsgInfo {
            src: Rank(b.u32("msg src")?),
            dst: Rank(b.u32("msg dst")?),
            tag: Tag(b.u32("msg tag")? as i32),
            bytes: b.u32("msg bytes")?,
            seq: b.u64("msg seq")?,
        })
    } else {
        None
    };
    let label = if flags & 2 != 0 {
        Some(b.string("record label")?)
    } else {
        None
    };
    Ok(TraceRecord {
        rank,
        kind,
        marker,
        t_start,
        t_end,
        site,
        msg,
        args: [a0, a1],
        label,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 10),
            TraceRecord::basic(3u32, EventKind::Send, 2, 10)
                .with_span(10, 12)
                .with_site(SiteId(5))
                .with_args(-4, 7)
                .with_msg(MsgInfo {
                    src: Rank(3),
                    dst: Rank(0),
                    tag: Tag(-1),
                    bytes: 64,
                    seq: 9,
                }),
            TraceRecord::basic(1u32, EventKind::Probe, 3, 20).with_label("checkpoint α"),
        ]
    }

    #[test]
    fn roundtrip_every_shape() {
        let path = PathBuf::from("seg");
        for rec in sample() {
            let mut b = Builder::new();
            encode_frame(&mut b, &rec);
            let mut c = Cursor::new(&b.buf, &path);
            let back = decode_frame(&mut c, &path).unwrap();
            assert_eq!(back, rec);
            assert_eq!(c.remaining(), 0);
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_error() {
        let path = PathBuf::from("seg");
        let mut b = Builder::new();
        encode_frame(&mut b, &sample()[1]);
        for cut in [0, 3, 4, 10, b.buf.len() - 1] {
            let mut c = Cursor::new(&b.buf[..cut], &path);
            assert!(decode_frame(&mut c, &path).is_err(), "cut at {cut}");
        }
        // A frame longer than its body declares is a mismatch.
        let mut long = b.buf.clone();
        let len = u32::from_le_bytes([long[0], long[1], long[2], long[3]]);
        long[0..4].copy_from_slice(&(len + 1).to_le_bytes());
        long.push(0);
        let mut c = Cursor::new(&long, &path);
        assert!(decode_frame(&mut c, &path).is_err());
    }
}
