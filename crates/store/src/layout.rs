//! On-disk layout constants and the checked byte cursor.
//!
//! A store directory holds three file kinds, all little-endian, all
//! version-stamped and checksummed (see DESIGN.md §12):
//!
//! ```text
//! store/
//!   manifest.tds     run-wide metadata + site table   (magic "TDSM")
//!   index.tds        zone indexes + sparse time index (magic "TDSI")
//!   seg-00000.tds    event segments                   (magic "TDSG")
//!   seg-00001.tds
//!   ...
//! ```
//!
//! Decoding never indexes a slice directly: every read goes through
//! [`Cursor`], which turns out-of-bounds into a typed
//! [`StoreError::Truncated`](crate::StoreError::Truncated).

use crate::error::StoreError;
use std::path::Path;

/// Magic number of a segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"TDSG";
/// Magic number of the manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"TDSM";
/// Magic number of the index.
pub const INDEX_MAGIC: [u8; 4] = *b"TDSI";

/// The one format version this build reads and writes. Compatibility
/// policy: strict equality — a reader rejects both older and newer
/// files with [`StoreError::BadVersion`](crate::StoreError::BadVersion)
/// rather than guessing at a layout it does not know.
pub const VERSION: u32 = 1;

/// Fixed byte size of a segment header.
pub const SEGMENT_HEADER_LEN: usize = 40;

/// Byte size of one index directory entry.
pub const DIR_ENTRY_LEN: usize = 33;

/// Canonical-order id list (one section).
pub const SEC_CANON: u8 = 0;
/// Per-rank program-order postings (one section per rank).
pub const SEC_RANK: u8 = 1;
/// Per-tag canonical-order postings (one section per distinct tag).
pub const SEC_TAG: u8 = 2;
/// Per-construct canonical-order postings (one per distinct kind).
pub const SEC_KIND: u8 = 3;
/// Sparse `(t_start, canon_pos)` samples every `key` positions.
pub const SEC_TIME: u8 = 4;

/// Sampling stride of the sparse time index.
pub const TIME_STRIDE: u64 = 1024;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.tds";
/// Index file name inside a store directory.
pub const INDEX_FILE: &str = "index.tds";

/// Segment file name for segment `i`.
pub fn segment_file(i: u32) -> String {
    format!("seg-{i:05}.tds")
}

/// A bounds-checked reader over an in-memory byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Cursor { buf, pos: 0, path }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::truncated(self.path, what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self, what: &str) -> Result<i64, StoreError> {
        Ok(self.u64(what)? as i64)
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &str) -> Result<String, StoreError> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(StoreError::truncated(self.path, what));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::mismatch(self.path, format!("{what}: invalid UTF-8")))
    }
}

/// A little-endian byte builder (the write-side mirror of [`Cursor`]).
#[derive(Default)]
pub struct Builder {
    pub buf: Vec<u8>,
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn cursor_roundtrip_and_truncation() {
        let mut b = Builder::new();
        b.u8(7);
        b.u32(0xDEAD_BEEF);
        b.u64(1 << 40);
        b.string("hello");
        let path = PathBuf::from("x");
        let mut c = Cursor::new(&b.buf, &path);
        assert_eq!(c.u8("a").unwrap(), 7);
        assert_eq!(c.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64("c").unwrap(), 1 << 40);
        assert_eq!(c.string("d").unwrap(), "hello");
        assert_eq!(c.remaining(), 0);
        assert!(matches!(c.u8("end"), Err(StoreError::Truncated { .. })));
        // A string whose declared length exceeds the buffer is a
        // truncation, not a huge allocation.
        let mut b2 = Builder::new();
        b2.u32(1 << 30);
        let mut c2 = Cursor::new(&b2.buf, &path);
        assert!(matches!(c2.string("s"), Err(StoreError::Truncated { .. })));
    }
}
