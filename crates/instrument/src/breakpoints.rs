//! Source-location breakpoints and value watchpoints.
//!
//! The marker threshold of §2.2 stops a process at a *count*; a classical
//! state-based debugger also stops at a *place* (breakpoint) or on a
//! *value condition* (watchpoint — the software-instruction-counter paper
//! the authors build on used its counter "for replaying parallel programs
//! and for organizing watchpoints"). Both are implemented here as extra
//! tests inside the per-process recorder: a breakpoint fires when an event
//! is generated at a registered [`SiteId`]; a watchpoint fires when a
//! probe with a registered label satisfies its condition.

use std::collections::HashSet;
use tracedbg_trace::SiteId;

/// Why a recorder reported a trap.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TrapCause {
    /// The marker counter reached the replay/stopline threshold.
    Threshold(u64),
    /// An event executed at a breakpointed source location.
    Breakpoint(SiteId),
    /// A watched probe satisfied its condition.
    Watch { label: String, value: i64 },
}

/// A watchpoint condition on a probe label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatchCond {
    /// Fire whenever the probed value differs from the previous one.
    Change,
    /// Fire when the probed value equals this.
    Equals(i64),
    /// Fire when the probed value does not equal this (assertion
    /// watchpoint: trap on violation).
    NotEquals(i64),
}

/// One armed watchpoint.
#[derive(Clone, Debug)]
pub struct Watch {
    pub label: String,
    pub cond: WatchCond,
    last: Option<i64>,
}

impl Watch {
    pub fn new(label: impl Into<String>, cond: WatchCond) -> Self {
        Watch {
            label: label.into(),
            cond,
            last: None,
        }
    }

    /// Test a probed value, updating change-tracking state.
    fn fires(&mut self, value: i64) -> bool {
        let fired = match self.cond {
            WatchCond::Change => self.last.is_some() && self.last != Some(value),
            WatchCond::Equals(x) => value == x,
            WatchCond::NotEquals(x) => value != x,
        };
        self.last = Some(value);
        fired
    }
}

/// Breakpoint + watchpoint state of one process.
#[derive(Clone, Debug, Default)]
pub struct BreakSet {
    sites: HashSet<SiteId>,
    watches: Vec<Watch>,
}

impl BreakSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_site(&mut self, site: SiteId) {
        self.sites.insert(site);
    }

    pub fn remove_site(&mut self, site: SiteId) {
        self.sites.remove(&site);
    }

    pub fn add_watch(&mut self, watch: Watch) {
        self.watches.push(watch);
    }

    pub fn clear(&mut self) {
        self.sites.clear();
        self.watches.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.watches.is_empty()
    }

    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    pub fn n_watches(&self) -> usize {
        self.watches.len()
    }

    /// Test a non-probe event at `site`.
    #[inline]
    pub fn test_site(&self, site: SiteId) -> Option<TrapCause> {
        if self.sites.contains(&site) {
            Some(TrapCause::Breakpoint(site))
        } else {
            None
        }
    }

    /// Test a probe event (label + value); also applies the site test.
    pub fn test_probe(&mut self, site: SiteId, label: &str, value: i64) -> Option<TrapCause> {
        for w in &mut self.watches {
            if w.label == label && w.fires(value) {
                return Some(TrapCause::Watch {
                    label: label.to_string(),
                    value,
                });
            }
        }
        self.test_site(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_breakpoint_fires() {
        let mut b = BreakSet::new();
        b.add_site(SiteId(5));
        assert_eq!(
            b.test_site(SiteId(5)),
            Some(TrapCause::Breakpoint(SiteId(5)))
        );
        assert_eq!(b.test_site(SiteId(6)), None);
        b.remove_site(SiteId(5));
        assert_eq!(b.test_site(SiteId(5)), None);
    }

    #[test]
    fn watch_change_needs_two_samples() {
        let mut b = BreakSet::new();
        b.add_watch(Watch::new("x", WatchCond::Change));
        assert!(
            b.test_probe(SiteId(0), "x", 1).is_none(),
            "first sample arms"
        );
        assert!(b.test_probe(SiteId(0), "x", 1).is_none(), "no change");
        let t = b.test_probe(SiteId(0), "x", 2);
        assert_eq!(
            t,
            Some(TrapCause::Watch {
                label: "x".into(),
                value: 2
            })
        );
    }

    #[test]
    fn watch_equals_and_not_equals() {
        let mut b = BreakSet::new();
        b.add_watch(Watch::new("dest", WatchCond::Equals(0)));
        assert!(b.test_probe(SiteId(0), "dest", 3).is_none());
        assert!(b.test_probe(SiteId(0), "dest", 0).is_some());
        let mut b2 = BreakSet::new();
        b2.add_watch(Watch::new("inv", WatchCond::NotEquals(7)));
        assert!(b2.test_probe(SiteId(0), "inv", 7).is_none());
        assert!(b2.test_probe(SiteId(0), "inv", 8).is_some());
    }

    #[test]
    fn unrelated_labels_ignored() {
        let mut b = BreakSet::new();
        b.add_watch(Watch::new("x", WatchCond::Equals(1)));
        assert!(b.test_probe(SiteId(0), "y", 1).is_none());
    }

    #[test]
    fn clear_empties() {
        let mut b = BreakSet::new();
        b.add_site(SiteId(1));
        b.add_watch(Watch::new("x", WatchCond::Change));
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn probe_falls_back_to_site_test() {
        let mut b = BreakSet::new();
        b.add_site(SiteId(9));
        assert_eq!(
            b.test_probe(SiteId(9), "whatever", 0),
            Some(TrapCause::Breakpoint(SiteId(9)))
        );
    }
}
