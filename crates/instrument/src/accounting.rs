//! Invocation accounting — the "Number of calls" row of Table 1.

use std::collections::BTreeMap;
use std::fmt;
use tracedbg_trace::EventKind;

/// Counts of instrumentation events by kind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Accounting {
    counts: BTreeMap<&'static str, u64>,
    total: u64,
}

impl Accounting {
    #[inline]
    pub fn count(&mut self, kind: EventKind) {
        *self.counts.entry(kind.code()).or_insert(0) += 1;
        self.total += 1;
    }

    pub fn of(&self, kind: EventKind) -> u64 {
        self.counts.get(kind.code()).copied().unwrap_or(0)
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merge another process's accounting into this one (whole-run totals).
    pub fn merge(&mut self, other: &Accounting) {
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
    }

    /// Function-entry count — the paper counts `UserMonitor` calls, which
    /// gcc's `-p` inserts at function entries.
    pub fn fn_entries(&self) -> u64 {
        self.of(EventKind::FnEnter)
    }
}

impl fmt::Display for Accounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} events (", self.total)?;
        for (i, (k, v)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}:{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_merge() {
        let mut a = Accounting::default();
        a.count(EventKind::FnEnter);
        a.count(EventKind::FnEnter);
        a.count(EventKind::Send);
        let mut b = Accounting::default();
        b.count(EventKind::FnEnter);
        a.merge(&b);
        assert_eq!(a.fn_entries(), 3);
        assert_eq!(a.total(), 4);
        assert_eq!(a.of(EventKind::RecvDone), 0);
        let s = format!("{a}");
        assert!(s.contains("FE:3"), "{s}");
    }
}
