//! Instrumentation strategy selection (§2's spectrum of approaches).

use std::collections::HashSet;
use tracedbg_trace::{EventKind, SiteId, SiteTable};

/// Which of the paper's instrumentation strategies is active for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// §2.1 — AIMS-like construct-level tracing: full records for every
    /// construct selected by the [`ConstructFilter`].
    #[default]
    Full,
    /// §2.3 — PMPI-style wrappers: only communication constructs produce
    /// trace records ("by reducing the granularity of the history
    /// generation we can provide a highly portable trace collection
    /// mechanism").
    CommOnly,
    /// §2.2 — `UserMonitor` only: the marker counter, threshold test and
    /// call ring run, but nothing is written to the trace buffer. This is
    /// the cheapest mode that still supports replay/undo.
    MarkersOnly,
    /// No instrumentation at all (the Table 1 baseline). Marker counters do
    /// not advance; replay features are unavailable.
    Off,
}

/// Selective construct filtering for [`Strategy::Full`] — "the size of the
/// trace file can be controlled by selectively instrumenting constructs"
/// (§3).
#[derive(Clone, Debug, Default)]
pub struct ConstructFilter {
    /// Suppress function enter/exit records.
    pub skip_functions: bool,
    /// Suppress compute-block records.
    pub skip_compute: bool,
    /// Suppress probe records.
    pub skip_probes: bool,
    /// If non-empty, only these sites produce records (communication and
    /// process start/end records are always kept so the history stays
    /// navigable).
    pub site_allowlist: HashSet<SiteId>,
    /// These sites never produce records.
    pub site_denylist: HashSet<SiteId>,
}

impl ConstructFilter {
    /// Allow everything (the default).
    pub fn all() -> Self {
        Self::default()
    }

    /// Build an allowlist of every site of the named functions.
    pub fn allow_functions(table: &SiteTable, funcs: &[&str]) -> Self {
        let mut allow = HashSet::new();
        for (i, loc) in table.snapshot().iter().enumerate() {
            if funcs.contains(&loc.func.as_str()) {
                allow.insert(SiteId(i as u32));
            }
        }
        ConstructFilter {
            site_allowlist: allow,
            ..Default::default()
        }
    }

    /// Does the filter select this (kind, site) pair?
    pub fn selects(&self, kind: EventKind, site: SiteId) -> bool {
        match kind {
            EventKind::FnEnter | EventKind::FnExit if self.skip_functions => return false,
            EventKind::Compute if self.skip_compute => return false,
            EventKind::Probe if self.skip_probes => return false,
            _ => {}
        }
        if self.site_denylist.contains(&site) {
            return false;
        }
        // Comm + lifecycle records ignore the allowlist: without them the
        // trace graph loses its message arcs.
        let structural =
            kind.is_comm() || matches!(kind, EventKind::ProcStart | EventKind::ProcEnd);
        if !structural && !self.site_allowlist.is_empty() {
            return self.site_allowlist.contains(&site);
        }
        true
    }
}

/// Full recorder configuration for one run.
#[derive(Clone, Debug, Default)]
pub struct RecorderConfig {
    pub strategy: Strategy,
    pub filter: ConstructFilter,
    /// Capacity of the `UserMonitor` recent-call ring.
    pub ring_capacity: usize,
}

impl RecorderConfig {
    pub fn full() -> Self {
        RecorderConfig {
            strategy: Strategy::Full,
            filter: ConstructFilter::all(),
            ring_capacity: 16,
        }
    }

    pub fn comm_only() -> Self {
        RecorderConfig {
            strategy: Strategy::CommOnly,
            ..Self::full()
        }
    }

    pub fn markers_only() -> Self {
        RecorderConfig {
            strategy: Strategy::MarkersOnly,
            ..Self::full()
        }
    }

    pub fn off() -> Self {
        RecorderConfig {
            strategy: Strategy::Off,
            ..Self::full()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::SourceLoc;

    #[test]
    fn default_filter_selects_everything() {
        let f = ConstructFilter::all();
        for k in EventKind::all() {
            assert!(f.selects(k, SiteId(3)), "{k:?}");
        }
    }

    #[test]
    fn kind_skips() {
        let f = ConstructFilter {
            skip_functions: true,
            skip_compute: true,
            ..Default::default()
        };
        assert!(!f.selects(EventKind::FnEnter, SiteId(0)));
        assert!(!f.selects(EventKind::FnExit, SiteId(0)));
        assert!(!f.selects(EventKind::Compute, SiteId(0)));
        assert!(f.selects(EventKind::Probe, SiteId(0)));
        assert!(f.selects(EventKind::Send, SiteId(0)));
    }

    #[test]
    fn allowlist_keeps_comm_always() {
        let t = SiteTable::new();
        let keep = t.intern(SourceLoc::new("a.c", 1, "MatrSend"));
        let drop_ = t.intern(SourceLoc::new("a.c", 2, "other"));
        let f = ConstructFilter::allow_functions(&t, &["MatrSend"]);
        assert!(f.selects(EventKind::FnEnter, keep));
        assert!(!f.selects(EventKind::FnEnter, drop_));
        // comm at a non-allowlisted site still recorded
        assert!(f.selects(EventKind::Send, drop_));
        assert!(f.selects(EventKind::ProcEnd, drop_));
    }

    #[test]
    fn denylist_beats_allowlist() {
        let mut f = ConstructFilter::all();
        f.site_denylist.insert(SiteId(5));
        assert!(!f.selects(EventKind::FnEnter, SiteId(5)));
        assert!(!f.selects(EventKind::Send, SiteId(5)));
    }
}
