//! The `UserMonitor` function (§2.2).
//!
//! "In its current implementation, the function increments a single global
//! counter, records the address it was called from together with the first
//! two arguments passed to it, and tests to see if the global counter has
//! reached a threshold value which can be set by the debugger."
//!
//! In the simulated runtime each process has its own monitor (our "global"
//! counter is global *to the process*, which is what the original per-
//! address-space counter was). The call-site "address" is an interned
//! [`SiteId`].

use tracedbg_trace::SiteId;

/// Threshold value meaning "no trap armed".
pub const NO_THRESHOLD: u64 = u64::MAX;

/// One remembered monitor invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingEntry {
    /// Which instrumentation point called the monitor.
    pub site: SiteId,
    /// First two integer arguments of the instrumented call.
    pub args: [i64; 2],
    /// The marker counter value at the invocation.
    pub marker: u64,
}

/// Fixed-size ring of the most recent monitor invocations, consulted by the
/// debugger when a process stops ("where was I, and with what arguments?").
#[derive(Clone, Debug)]
pub struct CallRing {
    entries: Vec<Option<RingEntry>>,
    pos: usize,
}

impl CallRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        CallRing {
            entries: vec![None; capacity],
            pos: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, e: RingEntry) {
        self.entries[self.pos] = Some(e);
        self.pos = (self.pos + 1) % self.entries.len();
    }

    /// Most recent entries, newest first.
    pub fn recent(&self) -> Vec<RingEntry> {
        let n = self.entries.len();
        let mut out = Vec::new();
        for i in 0..n {
            let ix = (self.pos + n - 1 - i) % n;
            if let Some(e) = self.entries[ix] {
                out.push(e);
            }
        }
        out
    }

    /// The single most recent entry.
    pub fn last(&self) -> Option<RingEntry> {
        let n = self.entries.len();
        self.entries[(self.pos + n - 1) % n]
    }

    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

/// Per-process `UserMonitor` state: the execution-marker counter, the
/// debugger-set threshold, and the recent-call ring.
#[derive(Clone, Debug)]
pub struct UserMonitor {
    counter: u64,
    threshold: u64,
    ring: CallRing,
    invocations: u64,
}

impl UserMonitor {
    pub fn new(ring_capacity: usize) -> Self {
        UserMonitor {
            counter: 0,
            threshold: NO_THRESHOLD,
            ring: CallRing::new(ring_capacity),
            invocations: 0,
        }
    }

    /// The monitor call itself. Returns `true` when the counter has reached
    /// the armed threshold (a debugger trap).
    #[inline]
    pub fn invoke(&mut self, site: SiteId, a0: i64, a1: i64) -> bool {
        self.counter += 1;
        self.invocations += 1;
        self.ring.push(RingEntry {
            site,
            args: [a0, a1],
            marker: self.counter,
        });
        self.counter >= self.threshold
    }

    /// Current marker counter (number of instrumentation events executed).
    #[inline]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Arm a trap: the monitor reports a trap at the first event with
    /// `counter >= threshold`. This is the replay/stopline mechanism: "the
    /// debugger ... stores the execution markers in the UserMonitor
    /// threshold variables" (§4.1).
    pub fn set_threshold(&mut self, threshold: u64) {
        self.threshold = threshold;
    }

    /// Disarm the trap.
    pub fn clear_threshold(&mut self) {
        self.threshold = NO_THRESHOLD;
    }

    pub fn threshold(&self) -> Option<u64> {
        if self.threshold == NO_THRESHOLD {
            None
        } else {
            Some(self.threshold)
        }
    }

    /// Total monitor invocations (Table 1's "Number of calls" row).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Force the counter to an absolute value. Only used when restoring a
    /// checkpoint: the restored process must continue generating the same
    /// marker sequence it would have reached by re-execution.
    pub fn force_counter(&mut self, value: u64) {
        self.counter = value;
    }

    /// Recent-call ring, for the debugger's stop reports.
    pub fn ring(&self) -> &CallRing {
        &self.ring
    }
}

impl Default for UserMonitor {
    fn default() -> Self {
        UserMonitor::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let mut m = UserMonitor::default();
        assert!(!m.invoke(SiteId(0), 1, 2));
        assert!(!m.invoke(SiteId(1), 3, 4));
        assert_eq!(m.counter(), 2);
        assert_eq!(m.invocations(), 2);
    }

    #[test]
    fn threshold_traps_exactly_once_armed() {
        let mut m = UserMonitor::default();
        m.set_threshold(3);
        assert!(!m.invoke(SiteId(0), 0, 0));
        assert!(!m.invoke(SiteId(0), 0, 0));
        assert!(m.invoke(SiteId(0), 0, 0), "3rd event must trap");
        // Threshold is >= so subsequent events keep trapping until cleared —
        // the debugger clears it on stop.
        assert!(m.invoke(SiteId(0), 0, 0));
        m.clear_threshold();
        assert!(!m.invoke(SiteId(0), 0, 0));
        assert_eq!(m.threshold(), None);
    }

    #[test]
    fn ring_keeps_newest_first() {
        let mut m = UserMonitor::new(3);
        for i in 0..5 {
            m.invoke(SiteId(i), i as i64, 0);
        }
        let recent = m.ring().recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].site, SiteId(4));
        assert_eq!(recent[1].site, SiteId(3));
        assert_eq!(recent[2].site, SiteId(2));
        assert_eq!(recent[0].marker, 5);
        assert_eq!(m.ring().last().unwrap().site, SiteId(4));
    }

    #[test]
    fn ring_partial_fill() {
        let mut m = UserMonitor::new(8);
        m.invoke(SiteId(9), 7, 8);
        let recent = m.ring().recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].args, [7, 8]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_ring_panics() {
        CallRing::new(0);
    }
}
