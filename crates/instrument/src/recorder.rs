//! The per-process recorder: marker counting, threshold traps, and
//! strategy-dependent trace emission.

use crate::accounting::Accounting;
use crate::breakpoints::{BreakSet, TrapCause, Watch};
use crate::config::{RecorderConfig, Strategy};
use crate::user_monitor::UserMonitor;
use std::collections::VecDeque;
use tracedbg_trace::{EventKind, FlushHandle, Rank, SiteId, TraceBuffer, TraceRecord};

/// What the engine must do after an instrumentation event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// Keep running.
    Continue,
    /// The marker threshold fired: pause this process and hand control to
    /// the debugger.
    Trap,
}

/// All instrumentation state of one simulated process.
#[derive(Clone)]
pub struct Recorder {
    rank: Rank,
    config: RecorderConfig,
    monitor: UserMonitor,
    buffer: TraceBuffer,
    accounting: Accounting,
    breaks: BreakSet,
    last_trap: Option<TrapCause>,
    /// Fast-forward mode (checkpoint restore): when set, `observe` only
    /// advances the marker counter and fires the scripted trap markers in
    /// order — no buffering, no breakpoint tests. The restored engine
    /// overwrites this recorder with the checkpointed one once the process
    /// has replayed up to the snapshot point.
    ff_traps: Option<VecDeque<u64>>,
}

impl Recorder {
    pub fn new(rank: Rank, config: RecorderConfig) -> Self {
        let cap = config.ring_capacity.max(1);
        Recorder {
            rank,
            config,
            monitor: UserMonitor::new(cap),
            buffer: TraceBuffer::new(),
            accounting: Accounting::default(),
            breaks: BreakSet::new(),
            last_trap: None,
            ff_traps: None,
        }
    }

    /// A recorder in fast-forward mode: `traps` is the ascending list of
    /// markers at which the original run trapped (threshold, breakpoint or
    /// watch — they all reach the engine as the same trap request), so the
    /// replaying process re-issues exactly the requests of the original.
    pub fn fast_forward(rank: Rank, config: RecorderConfig, traps: Vec<u64>) -> Self {
        let mut r = Recorder::new(rank, config);
        r.ff_traps = Some(traps.into());
        r
    }

    /// Scripted fast-forward traps not yet fired (0 when not in
    /// fast-forward mode — used as a restore self-check).
    pub fn ff_pending(&self) -> usize {
        self.ff_traps.as_ref().map_or(0, |t| t.len())
    }

    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// Is instrumentation entirely off (Table 1 baseline)?
    #[inline]
    pub fn is_off(&self) -> bool {
        self.config.strategy == Strategy::Off
    }

    /// Observe one instrumentation event.
    ///
    /// `rec.marker` is filled in from the monitor counter; the record is
    /// buffered if the strategy selects it. Returns [`Disposition::Trap`]
    /// when the debugger-armed threshold fires.
    pub fn observe(&mut self, mut rec: TraceRecord) -> (u64, Disposition) {
        debug_assert_eq!(rec.rank, self.rank);
        if self.is_off() {
            return (0, Disposition::Continue);
        }
        if let Some(traps) = self.ff_traps.as_mut() {
            let marker = self.monitor.counter() + 1;
            self.monitor.force_counter(marker);
            let disp = if traps.front() == Some(&marker) {
                traps.pop_front();
                Disposition::Trap
            } else {
                Disposition::Continue
            };
            return (marker, disp);
        }
        let threshold_hit = self.monitor.invoke(rec.site, rec.args[0], rec.args[1]);
        let marker = self.monitor.counter();
        rec.marker = marker;
        self.accounting.count(rec.kind);
        // Breakpoint / watchpoint tests (cheap when nothing is armed).
        let mut cause = if threshold_hit {
            Some(TrapCause::Threshold(marker))
        } else {
            None
        };
        if cause.is_none() && !self.breaks.is_empty() {
            cause = if rec.kind == EventKind::Probe {
                self.breaks
                    .test_probe(rec.site, rec.label.as_deref().unwrap_or(""), rec.args[0])
            } else {
                self.breaks.test_site(rec.site)
            };
        }
        let keep = match self.config.strategy {
            Strategy::Full => self.config.filter.selects(rec.kind, rec.site),
            Strategy::CommOnly => {
                rec.kind.is_comm() || matches!(rec.kind, EventKind::ProcStart | EventKind::ProcEnd)
            }
            Strategy::MarkersOnly => false,
            Strategy::Off => false,
        };
        if keep {
            self.buffer.push(rec);
        }
        let disp = match cause {
            Some(c) => {
                self.last_trap = Some(c);
                Disposition::Trap
            }
            None => Disposition::Continue,
        };
        (marker, disp)
    }

    /// Why the most recent trap fired.
    pub fn last_trap(&self) -> Option<&TrapCause> {
        self.last_trap.as_ref()
    }

    /// Arm a source-location breakpoint.
    pub fn add_breakpoint(&mut self, site: SiteId) {
        self.breaks.add_site(site);
    }

    /// Disarm a source-location breakpoint.
    pub fn remove_breakpoint(&mut self, site: SiteId) {
        self.breaks.remove_site(site);
    }

    /// Arm a watchpoint on a probe label.
    pub fn add_watch(&mut self, watch: Watch) {
        self.breaks.add_watch(watch);
    }

    /// Disarm every breakpoint and watchpoint.
    pub fn clear_breaks(&mut self) {
        self.breaks.clear();
    }

    /// The break/watch set, for inspection.
    pub fn breaks(&self) -> &BreakSet {
        &self.breaks
    }

    /// Current execution-marker counter of this process.
    #[inline]
    pub fn marker(&self) -> u64 {
        self.monitor.counter()
    }

    /// Arm/disarm the replay threshold.
    pub fn set_threshold(&mut self, t: Option<u64>) {
        match t {
            Some(v) => self.monitor.set_threshold(v),
            None => self.monitor.clear_threshold(),
        }
    }

    pub fn threshold(&self) -> Option<u64> {
        self.monitor.threshold()
    }

    /// The `UserMonitor`, for stop reports (recent call ring).
    pub fn monitor(&self) -> &UserMonitor {
        &self.monitor
    }

    /// Checkpoint-restore support: force the marker counter.
    pub fn force_marker(&mut self, value: u64) {
        self.monitor.force_counter(value);
    }

    /// Toggle trace collection (the AIMS monitor toggle).
    pub fn set_tracing_enabled(&mut self, on: bool) {
        self.buffer.set_enabled(on);
    }

    /// On-demand flush into the run-wide sink.
    pub fn flush_into(&mut self, handle: &FlushHandle) {
        self.buffer.flush_into(handle);
    }

    /// Drain all buffered records (end of run).
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        self.buffer.take()
    }

    /// Peek at buffered records.
    pub fn records(&self) -> &[TraceRecord] {
        self.buffer.records()
    }

    /// Patch the message sequence number of the buffered record at
    /// `index` (used by engines that assign sequence numbers after the
    /// record was emitted).
    pub fn patch_msg_seq(&mut self, index: usize, seq: u64) {
        if let Some(m) = self.buffer.records_mut()[index].msg.as_mut() {
            m.seq = seq;
        }
    }

    /// Per-kind invocation accounting (Table 1 "Number of calls").
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{MsgInfo, Tag};

    fn rec(kind: EventKind) -> TraceRecord {
        let mut r = TraceRecord::basic(0u32, kind, 0, 10);
        if kind.is_comm() {
            r = r.with_msg(MsgInfo {
                src: Rank(0),
                dst: Rank(1),
                tag: Tag(0),
                bytes: 8,
                seq: 0,
            });
        }
        r
    }

    #[test]
    fn full_strategy_records_everything_and_assigns_markers() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::full());
        let (m1, d1) = r.observe(rec(EventKind::FnEnter));
        let (m2, _) = r.observe(rec(EventKind::Send));
        assert_eq!((m1, m2), (1, 2));
        assert_eq!(d1, Disposition::Continue);
        assert_eq!(r.records().len(), 2);
        assert_eq!(r.records()[0].marker, 1);
        assert_eq!(r.records()[1].marker, 2);
    }

    #[test]
    fn comm_only_drops_function_events() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::comm_only());
        r.observe(rec(EventKind::FnEnter));
        r.observe(rec(EventKind::Send));
        r.observe(rec(EventKind::Compute));
        r.observe(rec(EventKind::RecvDone));
        assert_eq!(r.records().len(), 2);
        // but markers advance for all events
        assert_eq!(r.marker(), 4);
    }

    #[test]
    fn markers_only_records_nothing_but_counts() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::markers_only());
        for _ in 0..5 {
            r.observe(rec(EventKind::FnEnter));
        }
        assert_eq!(r.records().len(), 0);
        assert_eq!(r.marker(), 5);
        assert_eq!(r.monitor().invocations(), 5);
    }

    #[test]
    fn off_strategy_is_inert() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::off());
        let (m, d) = r.observe(rec(EventKind::FnEnter));
        assert_eq!(m, 0);
        assert_eq!(d, Disposition::Continue);
        assert_eq!(r.marker(), 0);
        assert!(r.is_off());
    }

    #[test]
    fn threshold_trap_fires_at_marker() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::markers_only());
        r.set_threshold(Some(3));
        assert_eq!(r.observe(rec(EventKind::FnEnter)).1, Disposition::Continue);
        assert_eq!(r.observe(rec(EventKind::FnEnter)).1, Disposition::Continue);
        let (m, d) = r.observe(rec(EventKind::FnEnter));
        assert_eq!(m, 3);
        assert_eq!(d, Disposition::Trap);
        r.set_threshold(None);
        assert_eq!(r.observe(rec(EventKind::FnEnter)).1, Disposition::Continue);
        assert_eq!(r.threshold(), None);
    }

    #[test]
    fn flush_on_demand() {
        let h = FlushHandle::new();
        let mut r = Recorder::new(Rank(0), RecorderConfig::full());
        r.observe(rec(EventKind::Compute));
        r.flush_into(&h);
        assert_eq!(h.pending(), 1);
        assert_eq!(r.records().len(), 0);
    }

    #[test]
    fn toggling_suppresses_records() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::full());
        r.set_tracing_enabled(false);
        r.observe(rec(EventKind::Compute));
        r.set_tracing_enabled(true);
        r.observe(rec(EventKind::Compute));
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.marker(), 2, "markers advance even while untraced");
    }

    #[test]
    fn accounting_counts_by_kind() {
        let mut r = Recorder::new(Rank(0), RecorderConfig::full());
        r.observe(rec(EventKind::FnEnter));
        r.observe(rec(EventKind::FnEnter));
        r.observe(rec(EventKind::Send));
        assert_eq!(r.accounting().of(EventKind::FnEnter), 2);
        assert_eq!(r.accounting().of(EventKind::Send), 1);
        assert_eq!(r.accounting().total(), 3);
    }
}
