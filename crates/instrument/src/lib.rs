//! The paper's three instrumentation strategies (§2).
//!
//! | Paper mechanism | Here | Granularity |
//! |---|---|---|
//! | AIMS source-to-source instrumentation (§2.1) | [`Strategy::Full`] + [`ConstructFilter`] | any construct, selectable |
//! | gcc `-p` + `uinst` → `UserMonitor` (§2.2) | [`UserMonitor`] inside [`Recorder`] | function entries / events, counter + threshold |
//! | PMPI profiling wrappers (§2.3) | [`Strategy::CommOnly`] | communication calls only |
//!
//! Every instrumentation point a process executes flows through its
//! [`Recorder::observe`]. The recorder
//!
//! 1. increments the process's **execution-marker counter** (the software-
//!    instruction-count idea: the counter value names the state),
//! 2. performs the `UserMonitor` bookkeeping — remembering the call site and
//!    the first two integer arguments in a small ring,
//! 3. tests the counter against the **debugger-set threshold** and reports a
//!    [`Disposition::Trap`] when it fires (this is how stoplines, replay and
//!    undo stop a process at an exact past state), and
//! 4. appends a [`TraceRecord`](tracedbg_trace::TraceRecord) to the
//!    per-process buffer if the active [`Strategy`] selects the construct.
//!
//! The hot path is a handful of arithmetic ops and one branch, mirroring the
//! paper's claim that `UserMonitor` overhead is small for typical programs
//! and only significant for pathological call densities (Table 1).

pub mod accounting;
pub mod breakpoints;
pub mod config;
pub mod recorder;
pub mod user_monitor;

pub use accounting::Accounting;
pub use breakpoints::{BreakSet, TrapCause, Watch, WatchCond};
pub use config::{ConstructFilter, RecorderConfig, Strategy};
pub use recorder::{Disposition, Recorder};
pub use user_monitor::{CallRing, RingEntry, UserMonitor, NO_THRESHOLD};
