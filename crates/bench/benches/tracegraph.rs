//! Trace-graph construction cost and the dissemination trade-off (§4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::TraceStore;
use tracedbg_tracegraph::{ActionGraph, CallGraph, CommGraph, MessageMatching, TraceGraph};
use tracedbg_workloads::ring::{self, RingConfig};

fn trace_of(rounds: usize) -> TraceStore {
    let cfg = RingConfig {
        nprocs: 4,
        rounds,
        hop_cost: 100,
    };
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        ring::programs(&cfg),
    );
    assert!(e.run().is_completed());
    e.trace_store()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracegraph_build");
    g.sample_size(20);
    for rounds in [32usize, 256] {
        let store = trace_of(rounds);
        g.bench_with_input(
            BenchmarkId::new("unbounded", store.len()),
            &store,
            |b, s| b.iter(|| TraceGraph::build(s)),
        );
        g.bench_with_input(
            BenchmarkId::new("dissemination_32", store.len()),
            &store,
            |b, s| b.iter(|| TraceGraph::build_with_limit(s, Some(32))),
        );
    }
    g.finish();
}

fn bench_derived_graphs(c: &mut Criterion) {
    let mut g = c.benchmark_group("derived_graphs");
    g.sample_size(20);
    let store = trace_of(128);
    let matching = MessageMatching::build(&store);
    let tg = TraceGraph::build(&store);
    g.bench_function("matching", |b| b.iter(|| MessageMatching::build(&store)));
    g.bench_function("callgraph_projection", |b| {
        b.iter(|| CallGraph::project(&tg, tracedbg_trace::Rank(0)))
    });
    g.bench_function("commgraph", |b| b.iter(|| CommGraph::build(&store, &matching)));
    g.bench_function("actiongraph", |b| b.iter(|| ActionGraph::build(&store)));
    g.finish();
}

criterion_group!(benches, bench_build, bench_derived_graphs);
criterion_main!(benches);
