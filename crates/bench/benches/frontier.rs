//! Frontier computation cost (Figure 8 machinery) as traces grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tracedbg_causality::{ConcurrencyRegion, Frontier, HbIndex};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::{EventKind, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_workloads::lu::{self, LuConfig};

fn lu_trace(sweeps: usize) -> TraceStore {
    let cfg = LuConfig {
        nprocs: 8,
        sweeps,
        ..Default::default()
    };
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        lu::programs(&cfg),
    );
    assert!(e.run().is_completed());
    e.trace_store()
}

fn bench_hb_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("hb_index_build");
    g.sample_size(20);
    for sweeps in [4usize, 16, 64] {
        let store = lu_trace(sweeps);
        let matching = MessageMatching::build(&store);
        g.bench_with_input(
            BenchmarkId::from_parameter(store.len()),
            &(store, matching),
            |b, (s, m)| b.iter(|| HbIndex::build(s, m)),
        );
    }
    g.finish();
}

fn bench_frontier_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontier_queries");
    let store = lu_trace(32);
    let matching = MessageMatching::build(&store);
    let hb = HbIndex::build(&store, &matching);
    let mid = Rank(4);
    let selected = store
        .by_rank(mid)
        .iter()
        .copied()
        .find(|&id| store.record(id).kind == EventKind::RecvDone)
        .unwrap();
    g.bench_function("past_frontier", |b| {
        b.iter(|| Frontier::past_of(&store, &hb, selected))
    });
    g.bench_function("future_frontier", |b| {
        b.iter(|| Frontier::future_of(&store, &hb, selected))
    });
    g.bench_function("concurrency_region_scan", |b| {
        b.iter(|| {
            let r = ConcurrencyRegion::of(&hb, selected);
            r.concurrent_events(&store).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hb_index, bench_frontier_queries);
criterion_main!(benches);
