//! Criterion microbenches behind Table 1: the per-event cost of each
//! instrumentation strategy, and instrumented vs plain Fibonacci.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tracedbg_instrument::{Recorder, RecorderConfig};
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::{EventKind, Rank, SiteId, TraceRecord};
use tracedbg_workloads::fib;

fn bench_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_observe");
    for (name, cfg) in [
        ("markers_only", RecorderConfig::markers_only()),
        ("comm_only", RecorderConfig::comm_only()),
        ("full", RecorderConfig::full()),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched_ref(
                || Recorder::new(Rank(0), cfg.clone()),
                |r| {
                    for i in 0..1000u64 {
                        let rec = TraceRecord::basic(0u32, EventKind::FnEnter, 0, i)
                            .with_site(SiteId(3))
                            .with_args(i as i64, 0);
                        black_box(r.observe(rec));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_fib(c: &mut Criterion) {
    let mut g = c.benchmark_group("fib_table1");
    g.sample_size(10);
    g.bench_function("plain_fib20", |b| {
        b.iter(|| black_box(fib::fib_plain(black_box(20))))
    });
    for (name, cfg) in [
        ("engine_off_fib20", RecorderConfig::off()),
        ("engine_usermonitor_fib20", RecorderConfig::markers_only()),
        ("engine_full_fib20", RecorderConfig::full()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut e = Engine::launch(
                    EngineConfig::with_recorder(cfg.clone()),
                    vec![fib::program(20)],
                );
                assert!(e.run().is_completed());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_observe, bench_fib);
criterion_main!(benches);
