//! Engine throughput: messages per second through the turn-taking
//! scheduler, and how each §2 instrumentation strategy loads it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_workloads::master_worker::{self, PoolConfig};
use tracedbg_workloads::ring::{self, RingConfig};

fn bench_ring_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_throughput");
    g.sample_size(10);
    let rounds = 200usize;
    for (name, cfg) in [
        ("off", RecorderConfig::off()),
        ("markers_only", RecorderConfig::markers_only()),
        ("comm_only", RecorderConfig::comm_only()),
        ("full", RecorderConfig::full()),
    ] {
        let rcfg = RingConfig {
            nprocs: 4,
            rounds,
            hop_cost: 0,
        };
        g.throughput(Throughput::Elements((rounds * rcfg.nprocs) as u64));
        g.bench_with_input(BenchmarkId::new("strategy", name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut e = Engine::launch(
                    EngineConfig::with_recorder(cfg.clone()),
                    ring::programs(&rcfg),
                );
                assert!(e.run().is_completed());
            })
        });
    }
    g.finish();
}

fn bench_pool_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_scaling");
    g.sample_size(10);
    for nprocs in [2usize, 4, 8, 16] {
        let cfg = PoolConfig {
            nprocs,
            tasks: 64,
            base_cost: 0,
        };
        g.bench_with_input(BenchmarkId::from_parameter(nprocs), &cfg, |b, cfg| {
            b.iter(|| {
                let mut e = Engine::launch(
                    EngineConfig::with_recorder(RecorderConfig::comm_only()),
                    master_worker::programs(cfg),
                );
                assert!(e.run().is_completed());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ring_throughput, bench_pool_scaling);
criterion_main!(benches);
