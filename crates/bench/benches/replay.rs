//! Replay cost: re-executing to a marker threshold as history deepens
//! (the §6 observation that straightforward replay is O(history)), and
//! the checkpointed alternative.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::machine::{
    MachineCtx, MachineEngine, MachineOutcome, MachineProgram, MachineStatus,
};
use tracedbg_mpsim::{CostModel, Engine, EngineConfig, SchedPolicy};
use tracedbg_trace::Rank;
use tracedbg_workloads::ring::{self, RingConfig};

fn bench_replay_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay_to_marker");
    g.sample_size(10);
    for rounds in [16usize, 64, 256] {
        let cfg = RingConfig {
            nprocs: 4,
            rounds,
            hop_cost: 100,
        };
        // Record once to get the final markers and the match log.
        let mut rec = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::markers_only()),
            ring::programs(&cfg),
        );
        assert!(rec.run().is_completed());
        let target = rec.markers();
        let log = rec.match_log();
        g.bench_with_input(BenchmarkId::new("ring_rounds", rounds), &rounds, |b, _| {
            b.iter(|| {
                let mut e = Engine::launch(
                    EngineConfig {
                        recorder: RecorderConfig::markers_only(),
                        replay: Some(log.clone()),
                        ..Default::default()
                    },
                    ring::programs(&cfg),
                );
                // Stop halfway through each rank's history.
                for m in target.iter() {
                    e.set_threshold(m.rank, Some((m.count / 2).max(1)));
                }
                assert!(e.run().is_stopped());
            })
        });
    }
    g.finish();
}

struct Ticker {
    steps: u64,
    done: u64,
}

impl MachineProgram for Ticker {
    fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
        if self.done >= self.steps {
            return MachineStatus::Finished;
        }
        let site = ctx.site("tick.rs", 1, "tick");
        ctx.compute(10, site);
        self.done += 1;
        MachineStatus::Running
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut v = self.steps.to_le_bytes().to_vec();
        v.extend_from_slice(&self.done.to_le_bytes());
        v
    }
    fn restore(&mut self, bytes: &[u8]) {
        self.steps = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        self.done = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    }
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo_strategies");
    g.sample_size(10);
    let steps = 20_000u64;
    let make = || {
        MachineEngine::new(
            vec![Box::new(Ticker { steps, done: 0 }) as Box<dyn MachineProgram>],
            RecorderConfig::markers_only(),
            CostModel::default(),
            SchedPolicy::RoundRobin,
            None,
        )
    };
    // Prepare a checkpointed engine stopped mid-way.
    let mut e = make();
    e.set_threshold(Rank(0), Some(steps / 2));
    assert!(matches!(e.run(), MachineOutcome::Stopped(_)));
    e.clear_thresholds();
    let cp = e.checkpoint();
    g.bench_function("replay_from_start_20k", |b| {
        b.iter(|| {
            let mut r = make();
            r.set_threshold(Rank(0), Some(steps / 2));
            assert!(matches!(r.run(), MachineOutcome::Stopped(_)));
        })
    });
    g.bench_function("checkpoint_restore_20k", |b| {
        b.iter(|| {
            e.restore(&cp);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replay_depth, bench_checkpoint_restore);
criterion_main!(benches);
