//! Shared helpers for the table/figure reproduction harnesses and the
//! in-tree `tracedbg bench` measurement harness (see [`measure`] and
//! [`suites`]).

pub mod measure;
pub mod suites;

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Directory the `repro_*` binaries write their artifacts into
/// (`<workspace>/artifacts`, created on demand).
pub fn artifacts_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../artifacts")
        .canonicalize()
        .unwrap_or_else(|_| {
            let d = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
            std::fs::create_dir_all(&d).expect("create artifacts dir");
            d.canonicalize().unwrap()
        });
    std::fs::create_dir_all(&dir).expect("create artifacts dir");
    dir
}

/// Write an artifact file, returning its path for the report line.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = artifacts_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    path
}

/// Wall-clock a closure, returning (result, duration).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Median wall time of `n` runs.
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    assert!(n > 0);
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// A simple aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["workload", "time"]);
        t.row(&["fib".into(), "1.5".into()]);
        t.row(&["strassen-long".into(), "0.1".into()]);
        let s = t.render();
        assert!(s.contains("workload"), "{s}");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 1);
    }

    #[test]
    fn artifacts_dir_exists() {
        let d = artifacts_dir();
        assert!(d.is_dir());
    }
}
