//! The `tracedbg bench` suites — the hot paths the BENCH_*.json perf
//! trajectory tracks.
//!
//! * `parse` — trace file parse (text + binary) and digesting;
//! * `causality` — message matching and vector-clock happens-before
//!   construction;
//! * `replay` — golden-trace replay: match-log pinning, scripted-schedule
//!   re-execution, and replay-to-marker (the §6 O(history) observation);
//! * `engine` — turn-taking engine throughput under the §2
//!   instrumentation strategies;
//! * `checkpoint` — snapshot/restore plane: checkpoint capture, engine
//!   restoration, restored-run determinism, and query site pre-resolution;
//! * `explore` — explorer schedule-search throughput at `jobs = 1` vs
//!   `jobs = N` (the parallel-speedup comparison);
//! * `explore_dpor` — exhaustive systematic search with static
//!   independence facts off vs on (the sleep-set DPOR payoff), at
//!   `jobs = 1` and `jobs = 4`;
//! * `store` — the on-disk indexed trace store: ingest throughput,
//!   cold-open latency, and each indexed query against the
//!   `read_binary`+scan baseline it must beat;
//! * `localize` — differential fault localization: the full
//!   replay-harvest-rank pipeline at `jobs = 1` vs `jobs = N`, plus the
//!   event-graph differ in isolation;
//! * `profile` — critical-path profiling: wait-state classification,
//!   critical-path extraction, the sealed end-to-end `ProfileReport`
//!   build, and the Perfetto trace-event export.
//!
//! Every suite runs a fixed iteration plan (see [`crate::measure`]), so
//! numbers are comparable between invocations and across commits.

use crate::measure::{measure, BenchRecord, Plan};
use tracedbg_debugger::{Session, SessionConfig, Stopline};
use tracedbg_explore::{ExploreConfig, Explorer, Strategy};
use tracedbg_instrument::RecorderConfig;
use tracedbg_localize::{diff_channels, diff_ranks, localize, LocalizeConfig, VERDICT_LOCALIZED};
use tracedbg_mpsim::{Engine, EngineConfig, SchedPolicy};
use tracedbg_profile::{perfetto_json, CriticalPath, ProfileInput, ProfileReport, WaitAnalysis};
use tracedbg_store::{ingest_records, DiskStore, StoreOptions};
use tracedbg_trace::file::{read_binary, read_text, write_binary, write_text, TraceFile};
use tracedbg_trace::schedule::{Decision, ScheduleArtifact};
use tracedbg_trace::{trace_digest, EventQuery, MarkerVector, Rank, Tag, TraceStore};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_workloads::planted::{planted_wildcard_factory, PlantedConfig};
use tracedbg_workloads::racy::{wildcard_race_factory, RacyConfig};
use tracedbg_workloads::ring::{self, RingConfig};
use tracedbg_workloads::wide;

/// What to run and how hard.
#[derive(Clone, Debug, Default)]
pub struct SuiteOptions {
    /// Scaled-down plans (used by the verify smoke stage).
    pub quick: bool,
    /// Substring filter against `suite` or `suite/benchmark` names.
    pub filter: Option<String>,
    /// Worker threads for the parallel-explorer comparison point
    /// (`0` = available parallelism).
    pub jobs: usize,
}

/// One suite's results, ready for `BENCH_<name>.json`.
pub struct Suite {
    pub name: &'static str,
    pub records: Vec<BenchRecord>,
}

fn plan(opts: &SuiteOptions, warmup: u64, samples: usize, iters: u64) -> Plan {
    let p = Plan::new(warmup, samples, iters);
    if opts.quick {
        p.quick()
    } else {
        p
    }
}

fn wants(opts: &SuiteOptions, suite: &str, bench: &str) -> bool {
    match &opts.filter {
        None => true,
        Some(f) => suite.contains(f.as_str()) || format!("{suite}/{bench}").contains(f.as_str()),
    }
}

fn resolved_jobs(opts: &SuiteOptions) -> usize {
    match opts.jobs {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// A recorded ring run: the parse/causality corpus.
fn ring_store(rounds: usize) -> TraceStore {
    let cfg = RingConfig {
        nprocs: 4,
        rounds,
        hop_cost: 100,
        tag_stride: 0,
    };
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        ring::programs(&cfg),
    );
    assert!(e.run().is_completed());
    e.trace_store()
}

/// Trace parse + digest hot paths.
fn suite_parse(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let store = ring_store(64);
    let file = TraceFile::new(
        store.records().to_vec(),
        store.sites().clone(),
        store.n_ranks(),
    );
    let mut text = Vec::new();
    write_text(&mut text, &file).expect("in-memory write");
    let mut binary = Vec::new();
    write_binary(&mut binary, &file).expect("in-memory write");
    let p = plan(opts, 8, 9, 24);
    if wants(opts, "parse", "read_text") {
        records.push(measure("read_text", 1, p, || {
            let tf = read_text(text.as_slice()).expect("parse");
            assert_eq!(tf.records.len(), store.records().len());
        }));
    }
    if wants(opts, "parse", "read_binary") {
        records.push(measure("read_binary", 1, p, || {
            let tf = read_binary(binary.as_slice()).expect("parse");
            assert_eq!(tf.records.len(), store.records().len());
        }));
    }
    if wants(opts, "parse", "write_text") {
        records.push(measure("write_text", 1, p, || {
            let mut out = Vec::with_capacity(text.len());
            write_text(&mut out, &file).expect("write");
            assert!(!out.is_empty());
        }));
    }
    if wants(opts, "parse", "write_binary") {
        records.push(measure("write_binary", 1, p, || {
            let mut out = Vec::with_capacity(binary.len());
            write_binary(&mut out, &file).expect("write");
            assert!(!out.is_empty());
        }));
    }
    if wants(opts, "parse", "trace_digest") {
        records.push(measure("trace_digest", 1, p, || {
            assert_ne!(trace_digest(store.records()), 0);
        }));
    }
    Suite {
        name: "parse",
        records,
    }
}

/// Message matching + happens-before (vector clock) construction.
fn suite_causality(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let store = ring_store(64);
    let matching = MessageMatching::build(&store);
    let p = plan(opts, 8, 9, 24);
    if wants(opts, "causality", "message_matching") {
        records.push(measure("message_matching", 1, p, || {
            let mm = MessageMatching::build(&store);
            assert!(mm.is_clean());
        }));
    }
    if wants(opts, "causality", "hb_index") {
        records.push(measure("hb_index", 1, p, || {
            let hb = tracedbg_causality::HbIndex::build(&store, &matching);
            assert_eq!(hb.n_ranks(), store.n_ranks());
        }));
    }
    Suite {
        name: "causality",
        records,
    }
}

/// Golden-trace replay costs.
fn suite_replay(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let cfg = RingConfig {
        nprocs: 4,
        rounds: 64,
        hop_cost: 100,
        tag_stride: 0,
    };
    // Record once: markers, match log, and the full decision schedule.
    let mut rec = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::markers_only()),
        ring::programs(&cfg),
    );
    assert!(rec.run().is_completed());
    let target = rec.markers();
    let log = rec.match_log();
    let script = rec.schedule_log();
    let p = plan(opts, 2, 7, 4);
    if wants(opts, "replay", "matchlog_replay") {
        records.push(measure("matchlog_replay", 1, p, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::markers_only(),
                    replay: Some(log.clone()),
                    ..Default::default()
                },
                ring::programs(&cfg),
            );
            assert!(e.run().is_completed());
        }));
    }
    if wants(opts, "replay", "scripted_replay") {
        records.push(measure("scripted_replay", 1, p, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::markers_only(),
                    policy: SchedPolicy::Scripted(script.clone()),
                    ..Default::default()
                },
                ring::programs(&cfg),
            );
            assert!(e.run().is_completed());
            assert!(!e.schedule_diverged());
        }));
    }
    if wants(opts, "replay", "replay_to_marker") {
        records.push(measure("replay_to_marker", 1, p, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::markers_only(),
                    replay: Some(log.clone()),
                    ..Default::default()
                },
                ring::programs(&cfg),
            );
            // Stop halfway through each rank's history (§6: replay cost
            // grows with history depth).
            for m in target.iter() {
                e.set_threshold(m.rank, Some((m.count / 2).max(1)));
            }
            assert!(e.run().is_stopped());
        }));
    }
    if wants(opts, "replay", "replay_to_marker_ckpt") {
        // Same half-way stop as `replay_to_marker`, but starting from a
        // checkpoint taken 3/8 of the way in: only the 3/8→1/2 delta is
        // re-executed (the O(delta) undo/stopline path).
        let mut src = Engine::launch(
            EngineConfig {
                recorder: RecorderConfig::markers_only(),
                replay: Some(log.clone()),
                checkpoints: true,
                ..Default::default()
            },
            ring::programs(&cfg),
        );
        for m in target.iter() {
            src.set_threshold(m.rank, Some((m.count * 3 / 8).max(1)));
        }
        assert!(src.run().is_stopped());
        let cp = src.snapshot();
        records.push(measure("replay_to_marker_ckpt", 1, p, || {
            let mut e = Engine::restore(&cp, ring::programs(&cfg));
            e.clear_thresholds();
            for m in target.iter() {
                e.set_threshold(m.rank, Some((m.count / 2).max(1)));
            }
            e.resume_trapped();
            assert!(e.run().is_stopped());
        }));
    }
    // Debugger-level undo: bounce between two stoplines and undo, with the
    // checkpoint cache off (`undo_scratch`: every hop replays from scratch)
    // vs on (`undo_ckpt`: every hop restores a dominated checkpoint).
    let half = Stopline {
        markers: MarkerVector::from_counts(
            target.counts().iter().map(|c| (c / 2).max(1)).collect(),
        ),
        origin: "bench".into(),
    };
    let quarter = Stopline {
        markers: MarkerVector::from_counts(
            target.counts().iter().map(|c| (c / 4).max(1)).collect(),
        ),
        origin: "bench".into(),
    };
    for (name, every) in [("undo_scratch", 0usize), ("undo_ckpt", 1usize)] {
        if !wants(opts, "replay", name) {
            continue;
        }
        let mut s = Session::launch(
            SessionConfig {
                recorder: RecorderConfig::markers_only(),
                checkpoint_every: every,
                ..Default::default()
            },
            Box::new(move || ring::programs(&cfg)),
        );
        assert!(s.run().is_completed());
        records.push(measure(name, 1, p, || {
            assert!(s.replay_to(&quarter).is_stopped());
            assert!(s.replay_to(&half).is_stopped());
            assert!(s.undo(), "a prior stop must exist to undo to");
        }));
    }
    Suite {
        name: "replay",
        records,
    }
}

/// Engine throughput under the instrumentation strategies of §2.
fn suite_engine(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let p = plan(opts, 2, 7, 4);
    for (name, rcfg, metrics) in [
        ("ring_instr_off", RecorderConfig::off(), false),
        ("ring_instr_full", RecorderConfig::full(), false),
        // The obs pair: same workload and recorder, telemetry toggled.
        // DESIGN.md §10 quotes the delta; the contract is <5% on medians.
        ("ring_metrics_off", RecorderConfig::full(), false),
        ("ring_metrics_on", RecorderConfig::full(), true),
    ] {
        if !wants(opts, "engine", name) {
            continue;
        }
        let cfg = RingConfig {
            nprocs: 4,
            rounds: 100,
            hop_cost: 0,
            tag_stride: 0,
        };
        records.push(measure(name, 1, p, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: rcfg.clone(),
                    metrics,
                    ..Default::default()
                },
                ring::programs(&cfg),
            );
            assert!(e.run().is_completed());
        }));
    }
    // The wide set: thousand-rank workloads that only fit because ranks
    // are resumable tasks, not OS threads. One pass each per iteration.
    let wp = plan(opts, 1, 5, 1);
    if wants(opts, "engine", "wide_ring_1024") {
        let cfg = wide::wide_ring_config(1024, 1);
        records.push(measure("wide_ring_1024", 1, wp, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::markers_only(),
                    ..Default::default()
                },
                ring::programs(&cfg),
            );
            assert!(e.run().is_completed());
        }));
    }
    if wants(opts, "engine", "wide_stencil_32x32") {
        let cfg = wide::StencilConfig { p: 32, steps: 1 };
        records.push(measure("wide_stencil_32x32", 1, wp, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::markers_only(),
                    ..Default::default()
                },
                wide::stencil_programs(&cfg),
            );
            assert!(e.run().is_completed());
        }));
    }
    if wants(opts, "engine", "wide_butterfly_1024") {
        let cfg = wide::ButterflyConfig { nprocs: 1024 };
        records.push(measure("wide_butterfly_1024", 1, wp, || {
            let mut e = Engine::launch(
                EngineConfig {
                    recorder: RecorderConfig::markers_only(),
                    ..Default::default()
                },
                wide::butterfly_programs(&cfg),
            );
            assert!(e.run().is_completed());
        }));
    }
    Suite {
        name: "engine",
        records,
    }
}

/// Snapshot/restore plane costs: taking a checkpoint, rebuilding a live
/// engine from one, and running a restored engine to completion (with the
/// byte-identical-digest assertion that pins the determinism contract).
fn suite_checkpoint(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let cfg = RingConfig {
        nprocs: 4,
        rounds: 64,
        hop_cost: 100,
        tag_stride: 0,
    };
    let launch = || {
        Engine::launch(
            EngineConfig {
                recorder: RecorderConfig::markers_only(),
                checkpoints: true,
                ..Default::default()
            },
            ring::programs(&cfg),
        )
    };
    // Final markers, from a straight run.
    let mut straight = launch();
    assert!(straight.run().is_completed());
    let target = straight.markers();
    // A half-way stop to snapshot.
    let mut stopped = launch();
    for m in target.iter() {
        stopped.set_threshold(m.rank, Some((m.count / 2).max(1)));
    }
    assert!(stopped.run().is_stopped());
    let cp = stopped.snapshot();
    let p = plan(opts, 2, 7, 4);
    if wants(opts, "checkpoint", "snapshot") {
        records.push(measure("snapshot", 1, p, || {
            let c = stopped.snapshot();
            assert_eq!(c.n_ranks(), 4);
        }));
    }
    // The byte-identity ground truth: the stopped engine itself continued
    // to completion. (Stopping perturbs turn order relative to a
    // never-stopped run, so the contract is restored == continued, not
    // restored == never-stopped.)
    stopped.clear_thresholds();
    stopped.resume_trapped();
    assert!(stopped.run().is_completed());
    let want_digest = stopped.digest();
    if wants(opts, "checkpoint", "restore") {
        records.push(measure("restore", 1, p, || {
            let e = Engine::restore(&cp, ring::programs(&cfg));
            assert_eq!(e.markers(), cp.markers());
        }));
    }
    if wants(opts, "checkpoint", "restore_respawn") {
        // The legacy path the task engine replaced: thread-backed ranks
        // force restore to respawn every rank and fast-forward it
        // through the reply log. A checkpoint taken from thread ranks
        // is required, so a second stopped engine is built here.
        let mut tstopped = Engine::launch(
            EngineConfig {
                recorder: RecorderConfig::markers_only(),
                checkpoints: true,
                ..Default::default()
            },
            ring::thread_programs(&cfg),
        );
        for m in target.iter() {
            tstopped.set_threshold(m.rank, Some((m.count / 2).max(1)));
        }
        assert!(tstopped.run().is_stopped());
        let tcp = tstopped.snapshot();
        records.push(measure("restore_respawn", 1, p, || {
            let e = Engine::restore(&tcp, ring::thread_programs(&cfg));
            assert_eq!(e.markers(), tcp.markers());
        }));
    }
    if wants(opts, "checkpoint", "restore_continue") {
        records.push(measure("restore_continue", 1, p, || {
            let mut e = Engine::restore(&cp, ring::programs(&cfg));
            e.clear_thresholds();
            e.resume_trapped();
            assert!(e.run().is_completed());
            assert_eq!(
                e.digest(),
                want_digest,
                "restored run must be byte-identical"
            );
        }));
    }
    if wants(opts, "checkpoint", "query_by_function") {
        // Query with pre-resolved function→site binding vs what a naive
        // per-record resolve would report — counts must agree.
        let store = ring_store(64);
        let naive = store
            .records()
            .iter()
            .filter(|r| store.sites().func_name(r.site) == "ring")
            .count();
        assert!(naive > 0, "the ring workload events live in fn ring");
        let q = EventQuery::new().in_function("ring");
        assert_eq!(q.count(&store), naive);
        let p = plan(opts, 8, 9, 24);
        records.push(measure("query_by_function", 1, p, || {
            assert_eq!(q.count(&store), naive);
        }));
    }
    Suite {
        name: "checkpoint",
        records,
    }
}

/// Explorer schedule-search throughput: the jobs=1 vs jobs=N comparison
/// that motivates the parallel worker pool.
fn suite_explore(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let runs = if opts.quick { 16 } else { 48 };
    let p = if opts.quick {
        Plan::new(1, 3, 1)
    } else {
        Plan::new(1, 5, 1)
    };
    let n_jobs = resolved_jobs(opts).max(2);
    for (name, jobs) in [("explore_jobs1", 1usize), ("explore_jobsN", n_jobs)] {
        if !wants(opts, "explore", name) {
            continue;
        }
        records.push(measure(name, jobs, p, || {
            let cfg = ExploreConfig {
                workload: "racy-wildcard".to_string(),
                seed: 7,
                runs,
                preemptions: 2,
                strategy: Strategy::Both,
                jobs,
                ..Default::default()
            };
            let source: tracedbg_explore::ProgramSource =
                Box::new(wildcard_race_factory(RacyConfig::default()));
            let report = Explorer::new(cfg, source).explore();
            assert!(
                report.findings.iter().any(|f| f.class == "panic"),
                "the seeded race must be found on every measured run"
            );
        }));
    }
    Suite {
        name: "explore",
        records,
    }
}

/// Sleep-set DPOR payoff: exhaustive systematic search over the `pairs`
/// script workload with independence facts off vs on, at jobs 1 and 4.
/// The closures also pin the reduction contract: with facts the search
/// must finish in at most half the runs while agreeing on the (empty)
/// finding set.
fn suite_explore_dpor(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let b = tracedbg_workloads::scripts::builtin("pairs").expect("built-in script");
    let nprocs = 4;
    let parsed = b.parse();
    let file = b.file();
    let facts = tracedbg_analysis::analyze(&parsed, nprocs, &file).independence;
    let run = |dpor: bool, jobs: usize| {
        let script = parsed.clone();
        let f = file.clone();
        let source: tracedbg_explore::ProgramSource =
            Box::new(move || tracedbg_workloads::script::programs(&script, nprocs, &f));
        let cfg = ExploreConfig {
            workload: "sdl:pairs".to_string(),
            seed: 42,
            runs: 100_000,
            preemptions: 2,
            strategy: Strategy::Systematic,
            jobs,
            independence: dpor.then(|| facts.clone()),
            ..Default::default()
        };
        Explorer::new(cfg, source).explore()
    };
    // The reduction contract is part of the bench: measure nothing if the
    // full search and the reduced search disagree.
    let full = run(false, 1);
    let reduced = run(true, 1);
    assert!(
        reduced.runs_executed * 2 <= full.runs_executed,
        "sleep sets must cut systematic runs at least 2x: {} vs {}",
        reduced.runs_executed,
        full.runs_executed
    );
    assert_eq!(full.findings.len(), reduced.findings.len());
    let p = if opts.quick {
        Plan::new(1, 3, 1)
    } else {
        Plan::new(1, 5, 1)
    };
    for (name, dpor, jobs) in [
        ("pairs_full_jobs1", false, 1usize),
        ("pairs_sleep_jobs1", true, 1usize),
        ("pairs_full_jobs4", false, 4usize),
        ("pairs_sleep_jobs4", true, 4usize),
    ] {
        if !wants(opts, "explore_dpor", name) {
            continue;
        }
        records.push(measure(name, jobs, p, || {
            let r = run(dpor, jobs);
            assert_eq!(
                r.runs_executed,
                if dpor { &reduced } else { &full }.runs_executed
            );
            assert!(r.findings.is_empty(), "pairs is clean under every schedule");
        }));
    }
    Suite {
        name: "explore_dpor",
        records,
    }
}

/// The on-disk indexed trace store vs the `read_binary`+scan baseline.
///
/// Corpus: a 16-rank, 512-round ring with `tag_stride: 64`, so both zone
/// indexes have real selectivity (1/16 of events per rank lane, 1/64 of
/// the traffic per tag). The `*_scan` baselines re-parse the binary trace
/// and linearly filter — the path every consumer used before the store —
/// and each `*_indexed` benchmark asserts it saw exactly the same events.
fn suite_store(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let cfg = RingConfig {
        nprocs: 32,
        rounds: 256,
        hop_cost: 100,
        tag_stride: 64,
    };
    let mut e = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        ring::programs(&cfg),
    );
    assert!(e.run().is_completed());
    let store = e.trace_store();
    let file = TraceFile::new(
        store.records().to_vec(),
        store.sites().clone(),
        store.n_ranks(),
    );
    let mut binary = Vec::new();
    write_binary(&mut binary, &file).expect("in-memory write");

    let dir = std::env::temp_dir().join(format!("tracedbg-bench-store-{}", std::process::id()));
    let store_opts = StoreOptions {
        segment_events: 8192,
    };
    let summary = ingest_records(
        file.records.as_slice(),
        &file.sites,
        file.n_ranks,
        &dir,
        store_opts,
    )
    .expect("bench store ingest");
    assert!(summary.n_segments > 1, "corpus should span segments");

    if wants(opts, "store", "ingest") {
        let p = plan(opts, 2, 5, 4);
        records.push(measure("ingest", 1, p, || {
            let s = ingest_records(
                file.records.as_slice(),
                &file.sites,
                file.n_ranks,
                &dir,
                store_opts,
            )
            .expect("ingest");
            assert_eq!(s.n_events, file.records.len() as u64);
        }));
        // The timed loop rewrote the directory; rebuild the canonical copy.
        ingest_records(
            file.records.as_slice(),
            &file.sites,
            file.n_ranks,
            &dir,
            store_opts,
        )
        .expect("bench store rebuild");
    }
    if wants(opts, "store", "cold_open") {
        // Manifest + index directory + segment headers only: the lazy
        // reader's promise is that this stays in the sub-millisecond range
        // however large the payload grows.
        let p = plan(opts, 8, 9, 24);
        records.push(measure("cold_open", 1, p, || {
            let d = DiskStore::open(&dir).expect("open");
            assert_eq!(d.n_events(), file.records.len() as u64);
        }));
    }

    let disk = DiskStore::open(&dir).expect("open");
    let rank = Rank(7);
    let tag = Tag(20 + 11);
    let p = plan(opts, 4, 9, 8);

    let n_rank = disk.by_rank(rank).expect("cursor").count();
    if wants(opts, "store", "query_rank_indexed") {
        records.push(measure("query_rank_indexed", 1, p, || {
            let n = disk.by_rank(rank).expect("cursor").count();
            assert_eq!(n, n_rank);
        }));
    }
    if wants(opts, "store", "query_rank_scan") {
        records.push(measure("query_rank_scan", 1, p, || {
            let tf = read_binary(binary.as_slice()).expect("parse");
            let n = tf.records.iter().filter(|r| r.rank == rank).count();
            assert_eq!(n, n_rank);
        }));
    }
    let n_tag = disk.by_tag(tag).expect("cursor").count();
    if wants(opts, "store", "query_tag_indexed") {
        records.push(measure("query_tag_indexed", 1, p, || {
            let n = disk.by_tag(tag).expect("cursor").count();
            assert_eq!(n, n_tag);
        }));
    }
    if wants(opts, "store", "query_tag_scan") {
        records.push(measure("query_tag_scan", 1, p, || {
            let tf = read_binary(binary.as_slice()).expect("parse");
            let n = tf
                .records
                .iter()
                .filter(|r| r.msg.as_ref().is_some_and(|m| m.tag == tag))
                .count();
            assert_eq!(n, n_tag);
        }));
    }
    let (t_lo, t_hi) = disk.time_bounds();
    let (w_lo, w_hi) = (t_lo, t_lo + (t_hi - t_lo) / 100);
    let n_win = disk.by_time_window(w_lo, w_hi).expect("cursor").count();
    if wants(opts, "store", "query_window_indexed") {
        records.push(measure("query_window_indexed", 1, p, || {
            let n = disk.by_time_window(w_lo, w_hi).expect("cursor").count();
            assert_eq!(n, n_win);
        }));
    }
    if wants(opts, "store", "query_window_scan") {
        records.push(measure("query_window_scan", 1, p, || {
            let tf = read_binary(binary.as_slice()).expect("parse");
            let n = tf
                .records
                .iter()
                .filter(|r| r.t_start <= w_hi && r.t_end >= w_lo)
                .count();
            assert_eq!(n, n_win);
        }));
    }
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
    Suite {
        name: "store",
        records,
    }
}

/// Differential fault localization on the planted-wildcard corpus
/// artifact: the full replay-harvest-rank pipeline at `jobs = 1` vs
/// `jobs = N` (the report must come out `localized` every iteration),
/// plus the event-graph differ on its own between a failing and a
/// passing recorded trace.
fn suite_localize(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let cfg = PlantedConfig::default();
    let mut artifact = ScheduleArtifact::new("planted-wildcard", cfg.nprocs, 0);
    artifact.decisions = vec![Decision::Turn {
        rank: Rank(cfg.bug_rank),
    }];
    let p = plan(opts, 1, 5, 2);
    let n_jobs = resolved_jobs(opts).max(2);
    tracedbg_mpsim::set_quiet_panics(true);
    for (name, jobs) in [("localize_jobs1", 1usize), ("localize_jobsN", n_jobs)] {
        if !wants(opts, "localize", name) {
            continue;
        }
        records.push(measure(name, jobs, p, || {
            let source: tracedbg_explore::ProgramSource = Box::new(planted_wildcard_factory(cfg));
            let lcfg = LocalizeConfig {
                runs: 8,
                seed: 0,
                jobs,
            };
            let report = localize(&source, &artifact, &lcfg);
            assert_eq!(report.verdict, VERDICT_LOCALIZED);
        }));
    }
    if wants(opts, "localize", "graph_diff") {
        let source: tracedbg_explore::ProgramSource = Box::new(planted_wildcard_factory(cfg));
        let failing = tracedbg_explore::execute_metered(
            &source,
            SchedPolicy::Scripted(artifact.decisions.clone()),
            &artifact.faults,
            false,
        );
        let passing =
            tracedbg_explore::execute_metered(&source, SchedPolicy::RoundRobin, &[], false);
        records.push(measure("graph_diff", 1, plan(opts, 2, 5, 20), || {
            let ranks = diff_ranks(&failing.store, &passing.store).expect("in-memory diff");
            assert!(
                ranks.iter().any(|d| d.score() > 0),
                "failing vs passing must differ"
            );
            let channels = diff_channels(&failing.store, &passing.store).expect("in-memory diff");
            assert!(!channels.is_empty());
        }));
    }
    tracedbg_mpsim::set_quiet_panics(false);
    Suite {
        name: "localize",
        records,
    }
}

/// Critical-path profiling hot paths over a recorded ring trace — the
/// pure analyses (`tracedbg profile` minus the run that produced the
/// trace), each measured in isolation and then end to end.
fn suite_profile(opts: &SuiteOptions) -> Suite {
    let mut records = Vec::new();
    let store = ring_store(100);
    let matching = MessageMatching::build(&store);
    let p = plan(opts, 4, 7, 12);
    if wants(opts, "profile", "wait_classify") {
        records.push(measure("wait_classify", 1, p, || {
            let w = WaitAnalysis::build(&store, &matching);
            assert!(!w.waits.is_empty(), "a ring trace has late-sender waits");
        }));
    }
    if wants(opts, "profile", "critical_path") {
        records.push(measure("critical_path", 1, p, || {
            let cp = CriticalPath::build(&store, &matching);
            assert!(cp.len > 0, "a nonempty trace has a nonempty path");
        }));
    }
    if wants(opts, "profile", "report_build") {
        records.push(measure("report_build", 1, p, || {
            let report = ProfileReport::build(
                &store,
                ProfileInput {
                    source: "bench",
                    workload: "ring",
                    procs: store.n_ranks(),
                    seed: 0,
                    flight_dropped: 0,
                },
            );
            assert!(report.digest_ok());
            assert!(report.critical_path_len <= report.makespan);
        }));
    }
    if wants(opts, "profile", "perfetto_export") {
        let waits = WaitAnalysis::build(&store, &matching);
        let path = CriticalPath::build(&store, &matching);
        records.push(measure("perfetto_export", 1, p, || {
            let json = perfetto_json(&store, &matching, &waits, &path);
            assert!(json.ends_with('}'), "export is a complete JSON object");
        }));
    }
    Suite {
        name: "profile",
        records,
    }
}

/// Run every (non-filtered) suite in deterministic order.
pub fn run_suites(opts: &SuiteOptions) -> Vec<Suite> {
    let all = [
        suite_parse as fn(&SuiteOptions) -> Suite,
        suite_causality,
        suite_replay,
        suite_engine,
        suite_checkpoint,
        suite_explore,
        suite_explore_dpor,
        suite_store,
        suite_localize,
        suite_profile,
    ];
    all.iter()
        .map(|f| f(opts))
        .filter(|s| !s.records.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_filtered_suite_produces_schema_valid_records() {
        let opts = SuiteOptions {
            quick: true,
            filter: Some("parse/trace_digest".to_string()),
            jobs: 1,
        };
        let suites = run_suites(&opts);
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0].name, "parse");
        assert_eq!(suites[0].records.len(), 1);
        let r = &suites[0].records[0];
        assert_eq!(r.name, "trace_digest");
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
    }

    #[test]
    fn filter_matches_whole_suites_too() {
        let opts = SuiteOptions {
            quick: true,
            filter: Some("causality".to_string()),
            jobs: 1,
        };
        let suites = run_suites(&opts);
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0].records.len(), 2);
    }
}
