//! The measurement core: fixed-iteration timing with warmup and
//! median-of-k, and the `BENCH_<suite>.json` perf-record format.
//!
//! Unlike an adaptive harness (criterion), iteration counts here are
//! *fixed per suite*: every invocation does the same work, so two runs of
//! `tracedbg bench` are comparable sample-for-sample and the quick mode
//! is an honest scaled-down replica. Each benchmark runs `warmup`
//! untimed iterations, then `samples` timed batches of `iters`
//! iterations; the slowest quartile of batches is trimmed (wall-clock
//! noise is one-sided — interference only adds time) and the recorded
//! per-iteration figures are the median, p10 and p90 of the rest.

use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One benchmark's recorded result — the `BENCH_*.json` row schema.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRecord {
    /// Benchmark name, unique within its suite.
    pub name: String,
    /// Total timed iterations (samples × iters-per-sample).
    pub iters: u64,
    /// Median per-iteration wall time across samples, nanoseconds.
    pub median_ns: u64,
    /// 10th-percentile per-iteration wall time, nanoseconds.
    pub p10_ns: u64,
    /// 90th-percentile per-iteration wall time, nanoseconds.
    pub p90_ns: u64,
    /// Worker threads the benchmark used (1 unless it exercises the
    /// parallel explorer).
    pub jobs: usize,
}

/// Fixed iteration plan for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Plan {
    /// Untimed warmup iterations.
    pub warmup: u64,
    /// Timed batches; the statistics are taken across these.
    pub samples: usize,
    /// Iterations per timed batch.
    pub iters: u64,
}

impl Plan {
    pub fn new(warmup: u64, samples: usize, iters: u64) -> Self {
        Plan {
            warmup,
            samples,
            iters,
        }
    }

    /// Scale the plan down for `--quick` (at least one of everything).
    pub fn quick(self) -> Self {
        Plan {
            warmup: (self.warmup / 4).max(1),
            samples: (self.samples / 2).max(3),
            iters: (self.iters / 4).max(1),
        }
    }
}

/// Time `f` under `plan`, attributing the result to `name`/`jobs`.
pub fn measure(name: &str, jobs: usize, plan: Plan, mut f: impl FnMut()) -> BenchRecord {
    assert!(plan.samples > 0 && plan.iters > 0, "empty measurement plan");
    for _ in 0..plan.warmup {
        f();
    }
    let mut per_iter_ns: Vec<u64> = (0..plan.samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..plan.iters {
                f();
            }
            (t0.elapsed().as_nanos() as u64) / plan.iters
        })
        .collect();
    let (median_ns, p10_ns, p90_ns) = trimmed_percentiles(&mut per_iter_ns);
    BenchRecord {
        name: name.to_string(),
        iters: plan.samples as u64 * plan.iters,
        median_ns,
        p10_ns,
        p90_ns,
        jobs,
    }
}

/// Sort the per-batch figures, drop the slow outliers, and return
/// `(median, p10, p90)` by nearest-rank on what remains.
///
/// The trim is one-sided: wall-clock interference (preemption, page
/// faults, a sibling benchmark's cache residue) only ever *adds* time,
/// so the slowest quartile of batches is discarded — the fastest
/// batches are the honest ones. This is what keeps pairs like
/// `ring_instr_off` vs `ring_instr_full` ordered by actual work rather
/// than by which one caught a scheduler hiccup.
fn trimmed_percentiles(per_iter_ns: &mut Vec<u64>) -> (u64, u64, u64) {
    per_iter_ns.sort_unstable();
    let kept = (per_iter_ns.len() * 3)
        .div_ceil(4)
        .max(3)
        .min(per_iter_ns.len());
    per_iter_ns.truncate(kept);
    let pct = |p: usize| {
        // Nearest-rank on the sorted samples; exact for the median of odd k.
        per_iter_ns[((per_iter_ns.len() - 1) * p + 50) / 100]
    };
    (pct(50), pct(10), pct(90))
}

/// Serialize one suite's records as the `BENCH_<suite>.json` payload — a
/// JSON array of [`BenchRecord`] rows.
pub fn suite_json(records: &[BenchRecord]) -> String {
    serde_json::to_string(records).expect("bench records always serialize")
}

/// Write `BENCH_<suite>.json` into `dir` and return its path.
pub fn write_suite(dir: &Path, suite: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{suite}.json"));
    std::fs::write(&path, suite_json(records))?;
    Ok(path)
}

/// Render one suite as a human-readable aligned table.
pub fn render_table(suite: &str, records: &[BenchRecord]) -> String {
    let mut t = crate::TextTable::new(&["benchmark", "iters", "median", "p10", "p90", "jobs"]);
    for r in records {
        t.row(&[
            r.name.clone(),
            r.iters.to_string(),
            fmt_ns(r.median_ns),
            fmt_ns(r.p10_ns),
            fmt_ns(r.p90_ns),
            r.jobs.to_string(),
        ]);
    }
    format!("suite {suite}\n{}", t.render())
}

/// Scale a nanosecond figure into the most readable unit.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_json_has_the_full_schema() {
        // The BENCH_*.json contract: every row carries exactly these six
        // fields with numeric values — the serializer test the verify
        // smoke stage leans on.
        let rec = measure("noop", 1, Plan::new(1, 5, 10), || {});
        let json = suite_json(&[rec]);
        let v = serde_json::value_from_str(&json).expect("valid JSON");
        let rows = v.as_array().expect("top level is an array");
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        for key in ["iters", "median_ns", "p10_ns", "p90_ns", "jobs"] {
            assert!(
                row.get(key).is_some_and(|x| x.as_u64().is_some()),
                "field {key} must be a non-negative integer: {json}"
            );
        }
        assert_eq!(row.get("name").and_then(|x| x.as_str()), Some("noop"));
        let fields = row.as_object().expect("row is an object");
        assert_eq!(fields.len(), 6, "no extra fields: {json}");
        assert_eq!(row.get("iters").and_then(|x| x.as_u64()), Some(50));
    }

    #[test]
    fn percentiles_are_ordered_and_sane() {
        let mut n = 0u64;
        let rec = measure("spin", 1, Plan::new(2, 9, 4), || {
            // Do a little real work so timings are non-zero.
            for i in 0..500 {
                n = n.wrapping_add(i * i);
            }
        });
        assert!(rec.p10_ns <= rec.median_ns && rec.median_ns <= rec.p90_ns);
        assert!(rec.median_ns > 0, "timed work cannot be free");
        assert!(n > 0);
    }

    #[test]
    fn trim_drops_the_slow_outliers() {
        // Seven batches, one pathological straggler: the straggler must
        // not move the p90, and the median sits in the fast cluster.
        let mut ns = vec![100, 101, 99, 102, 100, 5_000, 101];
        let (median, p10, p90) = trimmed_percentiles(&mut ns);
        assert_eq!(median, 101);
        assert!(p90 <= 102, "straggler leaked into p90: {p90}");
        assert!(p10 <= median && median <= p90);
        // Small sample counts are kept whole (never trim below 3).
        let mut small = vec![7, 8, 9];
        let (m, _, hi) = trimmed_percentiles(&mut small);
        assert_eq!((m, hi), (8, 9));
    }

    #[test]
    fn quick_plans_stay_positive() {
        let q = Plan::new(1, 3, 1).quick();
        assert!(q.warmup >= 1 && q.samples >= 1 && q.iters >= 1);
    }

    #[test]
    fn write_suite_emits_the_named_file() {
        let dir = std::env::temp_dir().join("tracedbg_bench_test");
        let rec = measure("noop", 2, Plan::new(1, 3, 2), || {});
        let path = write_suite(&dir, "unit", &[rec]).expect("write");
        assert!(path.ends_with("BENCH_unit.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('['), "{body}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(512), "512ns");
        assert_eq!(fmt_ns(25_000), "25.0us");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
