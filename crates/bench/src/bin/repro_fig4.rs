//! Figure 4 — "Communication graph of Strassen's algorithm
//! implementation. Each node corresponds to one or two messages. The arcs
//! describe causality of messages."
//!
//! Regenerates the communication graph of the correct 8-process run in
//! both VCG (what the paper fed xvcg) and DOT formats, and asserts its
//! structure: 21 message nodes (14 distribution + 7 results) and arcs
//! linking each worker's pair to its result.

use tracedbg_bench::write_artifact;
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::Rank;
use tracedbg_tracegraph::{CommGraph, MessageMatching};
use tracedbg_viz::{dot, vcg};
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::Correct);
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        strassen::programs(&cfg),
    );
    assert!(engine.run().is_completed());
    let store = engine.trace_store();
    let matching = MessageMatching::build(&store);
    let graph = CommGraph::build(&store, &matching);

    assert_eq!(graph.n_nodes(), 21, "14 distribution + 7 result messages");
    // Causality: every result message 0<-w has a predecessor (the worker
    // received its operands first).
    let mut results_with_preds = 0;
    for id in graph.ids() {
        if graph.message(id).info.dst == Rank(0) {
            assert!(
                !graph.predecessors(id).is_empty(),
                "result message with no cause"
            );
            results_with_preds += 1;
        }
    }
    assert_eq!(results_with_preds, 7);
    // Roots are initial distribution sends from rank 0.
    for r in graph.roots() {
        assert_eq!(graph.message(r).info.src, Rank(0));
    }

    let vcg_text = vcg::comm_graph_vcg(&graph);
    let dot_text = dot::comm_graph_dot(&graph);
    println!("FIGURE 4 — communication graph of Strassen");
    println!(
        "{} message nodes, {} causality arcs, {} roots",
        graph.n_nodes(),
        graph.n_arcs(),
        graph.roots().len()
    );
    let p1 = write_artifact("fig4_comm.vcg", &vcg_text);
    let p2 = write_artifact("fig4_comm.dot", &dot_text);
    println!("wrote {}\nwrote {}", p1.display(), p2.display());
}
