//! Figure 9 — "Dynamic call graph from Strassen example. Multiple arcs
//! show multiple function calls. The number of calls per arc is
//! adjustable. Each arc has an image in the execution trace. The graph was
//! converted to VCG format displayed with the xvcg graph layout tool."
//!
//! Regenerates rank 0's dynamic call graph in VCG (and DOT) at two arc
//! groupings, and demonstrates the §4.3 dissemination bound plus the
//! zoom-in reconstruction.

use tracedbg_bench::write_artifact;
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::Rank;
use tracedbg_tracegraph::{CallGraph, TraceGraph, TraceNode};
use tracedbg_viz::{dot, vcg};
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::Correct);
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        strassen::programs(&cfg),
    );
    assert!(engine.run().is_completed());
    let store = engine.trace_store();

    let graph = TraceGraph::build(&store);
    let cg = CallGraph::project(&graph, Rank(0));
    assert!(cg.functions.iter().any(|f| f == "MatrSend"));
    assert!(cg.functions.iter().any(|f| f == "MatrRecv"));
    assert!(cg.functions.iter().any(|f| f == "StrassenMaster"));

    // "The number of calls per arc is adjustable": full multiplicity vs
    // one arc per caller/callee pair.
    let multi = cg.arcs_grouped(4);
    let single = cg.arcs_grouped(1);
    assert!(multi.len() >= single.len());
    let total: u64 = single.iter().map(|a| a.calls).sum();
    assert_eq!(total, cg.total_calls());

    // Dissemination (§4.3): a capped graph stays within the arc bound but
    // represents every call; zooming reconstructs full resolution.
    let capped = TraceGraph::build_with_limit(&store, Some(8));
    assert_eq!(capped.n_primitive_arcs(), graph.n_primitive_arcs());
    let main0 = capped
        .find(&TraceNode::Function {
            rank: Rank(0),
            func: "main".into(),
        })
        .unwrap();
    assert!(capped.arcs_from(main0).len() <= 8);
    let expanded = capped.expand_node(&store, main0);
    assert!(expanded.iter().all(|a| a.multiplicity == 1));

    let vcg_text = vcg::call_graph_vcg(&cg, 4);
    let vcg_grouped = vcg::call_graph_vcg(&cg, 1);
    let dot_text = dot::call_graph_dot(&cg, 4);

    println!("FIGURE 9 — dynamic call graph of the Strassen master (VCG)");
    println!(
        "{} functions, {} primitive calls; {} arcs at grouping 4, {} at grouping 1",
        cg.n_functions(),
        cg.total_calls(),
        multi.len(),
        single.len()
    );
    println!(
        "dissemination: capped graph holds {} arcs for {} calls at main@0; zoom-in reconstructs {}",
        capped.arcs_from(main0).len(),
        capped.n_primitive_arcs(),
        expanded.len()
    );
    let p1 = write_artifact("fig9_callgraph.vcg", &vcg_text);
    let p2 = write_artifact("fig9_callgraph_grouped.vcg", &vcg_grouped);
    let p3 = write_artifact("fig9_callgraph.dot", &dot_text);
    println!(
        "wrote {}\nwrote {}\nwrote {}",
        p1.display(),
        p2.display(),
        p3.display()
    );
}
