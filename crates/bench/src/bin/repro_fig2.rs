//! Figure 2 — "History displayed with NTV. Angled lines represent
//! messages; the vertical line near the left side represents the
//! stopline."
//!
//! Regenerates the NTV whole-trace view of the correct 8-process Strassen
//! run with a stopline indicator placed early in the execution, as SVG and
//! ASCII artifacts. Asserts the stopline is a consistent cut.

use tracedbg_bench::write_artifact;
use tracedbg_debugger::Stopline;
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_viz::{render_ascii, render_svg, NtvView, TimelineModel};
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::Correct);
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        strassen::programs(&cfg),
    );
    assert!(engine.run().is_completed());
    let store = engine.trace_store();
    let matching = MessageMatching::build(&store);

    // The NTV view over the full trace with the debugger indicator "near
    // the left side": 15% into the run.
    let (t_lo, t_hi) = store.time_bounds();
    let t_stop = t_lo + (t_hi - t_lo) * 15 / 100;
    let mut ntv = NtvView::new(&store);
    ntv.set_indicator(t_stop);

    // The indicator maps to execution markers (the Ben-interface hook).
    let markers = ntv.click(&store, t_stop);
    let stopline = Stopline::vertical(&store, t_stop);
    assert_eq!(stopline.markers, markers);
    assert!(
        stopline.is_consistent(&store, &matching),
        "figure 2's stopline must be a consistent cut"
    );

    let full = TimelineModel::build(&store, &matching, false);
    let model = ntv.render_model(&full);
    let svg = render_svg(&model, 1000.0);
    let ascii = render_ascii(&model, 120);

    println!("FIGURE 2 — NTV time-space view with stopline");
    println!(
        "trace: {} events, {} messages, makespan {} ns",
        store.len(),
        matching.matched.len(),
        t_hi - t_lo
    );
    println!("stopline at t={t_stop} -> markers {markers:?} (consistent)");
    println!("\n{ascii}");
    let p1 = write_artifact("fig2_ntv.svg", &svg);
    let p2 = write_artifact("fig2_ntv.txt", &ascii);
    println!("wrote {}\nwrote {}", p1.display(), p2.display());
}
