//! Table 1 — instrumentation overhead.
//!
//! Paper (SGI workstations, 1998):
//!
//! |                  | Strassen 96·128·112 | Strassen 192·256·224 | fib(34)   | fib(35)   |
//! | number of calls  | 136                 | 136                  | 18454930  | 29860704  |
//! | time (uninstr.)  | 8.19 s              | 28.72 s              | 5.17 s    | 8.36 s    |
//! | time (instr.)    | 8.46 s (+3%)        | 28.77 s (+0.2%)      | 20.98 s (4.1×) | 34.12 s (4.1×) |
//!
//! This harness runs the same two workloads on the simulated runtime with
//! the `UserMonitor` instrumentation on (`Strategy::MarkersOnly`) and
//! fully off (`Strategy::Off`) and reports the same rows. Absolute times
//! differ (different machine, simulated message passing, smaller inputs so
//! the harness finishes in seconds); the **shape** is the claim: for a
//! coarse-grained program (Strassen: a handful of monitor calls around
//! large multiplies) the overhead is ~zero, for a pathologically
//! fine-grained one (recursive Fibonacci: one monitor call per two machine
//! instructions' worth of work) instrumentation dominates.

use tracedbg_bench::{median_time, secs, write_artifact, TextTable};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_workloads::fib;
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn run_strassen(n: usize, instrumented: bool) -> u64 {
    let cfg = StrassenConfig {
        n,
        nprocs: 4,
        variant: Variant::Correct,
        seed: 5,
        cutoff: 32,
    };
    let rc = if instrumented {
        RecorderConfig::markers_only()
    } else {
        RecorderConfig::off()
    };
    let mut e = Engine::launch(EngineConfig::with_recorder(rc), strassen::programs(&cfg));
    assert!(e.run().is_completed());
    e.invocations().iter().sum()
}

fn run_fib(n: u64, instrumented: bool) -> u64 {
    let rc = if instrumented {
        RecorderConfig::markers_only()
    } else {
        RecorderConfig::off()
    };
    let mut e = Engine::launch(EngineConfig::with_recorder(rc), vec![fib::program(n)]);
    assert!(e.run().is_completed());
    e.invocations().iter().sum()
}

fn main() {
    let reps = 3;
    let mut table = TextTable::new(&[
        "workload",
        "input",
        "monitor calls",
        "time uninstr (s)",
        "time instr (s)",
        "ratio",
    ]);

    // Strassen distributed multiply on 4 processes, two sizes (the paper
    // used 96·128·112 and 192·256·224; square analogues here).
    for n in [96usize, 192] {
        let t_off = median_time(reps, || {
            run_strassen(n, false);
        });
        let t_on = median_time(reps, || {
            run_strassen(n, true);
        });
        let calls = run_strassen(n, true);
        table.row(&[
            "strassen 4p".into(),
            format!("{n}x{n}"),
            calls.to_string(),
            secs(t_off),
            secs(t_on),
            format!("{:.2}x", t_on.as_secs_f64() / t_off.as_secs_f64()),
        ]);
    }

    // Recursive Fibonacci (the paper's 34/35 make ~18M/30M calls; 27/29
    // keep this harness interactive while preserving the call-density
    // regime — scale up with REPRO_FIB=34 if desired).
    let fib_inputs: Vec<u64> = std::env::var("REPRO_FIB")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: u64| vec![n.saturating_sub(1), n])
        .unwrap_or_else(|| vec![27, 29]);
    for &n in &fib_inputs {
        let t_off = median_time(reps, || {
            run_fib(n, false);
        });
        let t_on = median_time(reps, || {
            run_fib(n, true);
        });
        let calls = run_fib(n, true);
        table.row(&[
            "fibonacci".into(),
            format!("fib({n})"),
            calls.to_string(),
            secs(t_off),
            secs(t_on),
            format!("{:.2}x", t_on.as_secs_f64() / t_off.as_secs_f64()),
        ]);
        // The call-count row is exact: 2·(2·fib(n+1)−1)+3 monitor events
        // (enter+exit per call, ProcStart/End, result probe).
        assert_eq!(calls, 2 * fib::fib_call_count(n) + 3);
    }

    let rendered = table.render();
    println!("TABLE 1 — instrumentation overhead (UserMonitor on vs off)\n");
    println!("{rendered}");
    println!(
        "paper shape: Strassen ratio ~1.0 (coarse-grained); Fibonacci ratio >> 1\n\
         (fine-grained; the paper measured ~4.1x on 1998 hardware)."
    );
    let path = write_artifact("table1_overhead.txt", &rendered);
    println!("wrote {}", path.display());
}
