//! Figure 5 — "Process 0 (at the bottom) and process 7 (at the top) are
//! blocked in receives waiting for data from each other."
//!
//! Runs the `jres` bug variant, asserts the deadlock cycle {0, 7}, and
//! regenerates the time-space diagram with the two open-ended blocked
//! receives.

use tracedbg_bench::write_artifact;
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig, RunOutcome};
use tracedbg_trace::Rank;
use tracedbg_tracegraph::MessageMatching;
use tracedbg_viz::{render_ascii, render_svg, TimelineModel};
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::JresBug);
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        strassen::programs(&cfg),
    );
    let outcome = engine.run();
    let report = match outcome {
        RunOutcome::Deadlock(rep) => rep,
        other => panic!("the bug must deadlock, got {other:?}"),
    };
    assert!(report.is_cyclic());
    assert_eq!(report.cycle, vec![Rank(0), Rank(7)]);

    let store = engine.trace_store();
    let matching = MessageMatching::build(&store);
    // Exactly the two cycle members are left blocked.
    let blocked: Vec<Rank> = matching.unmatched_recvs.iter().map(|u| u.rank).collect();
    assert_eq!(blocked, vec![Rank(0), Rank(7)]);

    let model = TimelineModel::build(&store, &matching, false);
    let svg = render_svg(&model, 1000.0);
    let ascii = render_ascii(&model, 120);

    println!("FIGURE 5 — blocked processes in the buggy Strassen run");
    println!("{report}");
    println!("{ascii}");
    let p1 = write_artifact("fig5_blocked.svg", &svg);
    let p2 = write_artifact("fig5_blocked.txt", &ascii);
    println!("wrote {}\nwrote {}", p1.display(), p2.display());
}
