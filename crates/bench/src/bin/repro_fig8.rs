//! Figure 8 — "Past and future frontiers of a time point in a specific
//! processor. The user selected the point indicated by the circle. The
//! timeline display then calculated the region of the computation that is
//! concurrent with that point. The concurrency region is shown between
//! the slanted black lines."
//!
//! Paper workload: a NAS Parallel Benchmark LU trace. Here: the LU-style
//! wavefront pipeline. The harness selects a mid-pipeline event, draws the
//! two frontiers, and property-checks them: everything before the past
//! frontier happens-before the selection, everything after the future
//! frontier happens-after, everything between is concurrent.

use tracedbg_bench::write_artifact;
use tracedbg_causality::{ConcurrencyRegion, Frontier, HbIndex};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::{EventKind, Rank};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_viz::{render_ascii, render_svg, TimelineModel};
use tracedbg_workloads::lu::{self, LuConfig};

fn main() {
    let cfg = LuConfig {
        nprocs: 8,
        sweeps: 5,
        ..Default::default()
    };
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        lu::programs(&cfg),
    );
    assert!(engine.run().is_completed());
    let store = engine.trace_store();
    let matching = MessageMatching::build(&store);
    let hb = HbIndex::build(&store, &matching);

    // Select a mid-pipeline receive in a middle sweep (the circled point).
    let mid = Rank((cfg.nprocs / 2) as u32);
    let recvs: Vec<_> = store
        .by_rank(mid)
        .iter()
        .copied()
        .filter(|&id| store.record(id).kind == EventKind::RecvDone)
        .collect();
    let selected = recvs[recvs.len() / 2];

    let past = Frontier::past_of(&store, &hb, selected);
    let future = Frontier::future_of(&store, &hb, selected);
    let region = ConcurrencyRegion::of(&hb, selected);

    // Property check over every event in the trace.
    let mut n_past = 0usize;
    let mut n_future = 0usize;
    let mut n_conc = 0usize;
    for id in store.ids() {
        if id == selected {
            continue;
        }
        use tracedbg_causality::frontier::Region;
        match region.classify_event(&store, id) {
            Region::Past => {
                assert!(
                    hb.happens_before(&store, id, selected),
                    "event {id:?} classified past but not hb-before"
                );
                n_past += 1;
            }
            Region::Future => {
                assert!(
                    hb.happens_before(&store, selected, id),
                    "event {id:?} classified future but not hb-after"
                );
                n_future += 1;
            }
            Region::Concurrent => {
                assert!(
                    hb.concurrent(&store, selected, id),
                    "event {id:?} classified concurrent but ordered"
                );
                n_conc += 1;
            }
        }
    }

    let mut model = TimelineModel::build(&store, &matching, false);
    model.add_mark(&store, selected, "selected point");
    model.add_frontier(&store, &past, "past frontier");
    model.add_frontier(&store, &future, "future frontier");
    let svg = render_svg(&model, 1100.0);
    let ascii = render_ascii(&model, 120);

    println!("FIGURE 8 — past/future frontiers on the LU wavefront");
    let rec = store.record(selected);
    println!(
        "selection: {:?} marker {} on {:?}; classification: {n_past} past, {n_conc} concurrent, {n_future} future (all verified against happens-before)",
        rec.kind, rec.marker, rec.rank
    );
    println!("\n{ascii}");
    let p1 = write_artifact("fig8_frontiers.svg", &svg);
    let p2 = write_artifact("fig8_frontiers.txt", &ascii);
    println!("wrote {}\nwrote {}", p1.display(), p2.display());
}
