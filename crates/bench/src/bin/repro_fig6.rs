//! Figure 6 — "Missed message from process 0 to process 7. The correct
//! message sequence is shown in Figure 3. The vertical stopline (on the
//! left side) gives a consistent set of breakpoints for replay."
//!
//! Zooms the buggy trace into the distribution phase, asserts the
//! missed-message diagnosis (workers 1–6 receive two messages, worker 7
//! only one), places the stopline before the first send, and verifies the
//! stopline's consistency.

use tracedbg_bench::write_artifact;
use tracedbg_debugger::Stopline;
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::{EventKind, Rank};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_viz::{render_ascii, render_svg, TimelineModel};
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::JresBug);
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        strassen::programs(&cfg),
    );
    assert!(engine.run().is_deadlock());
    let store = engine.trace_store();
    let matching = MessageMatching::build(&store);

    // "Closer examination reveals that processes 1-6 each receive 2
    // messages and process 7 only receives 1."
    let counts = matching.received_counts(8, &store);
    assert_eq!(&counts[1..7], &[2, 2, 2, 2, 2, 2]);
    assert_eq!(counts[7], 1);
    // The missed message: an unmatched send with a misdirected B-part.
    assert!(
        !matching.unmatched_sends.is_empty(),
        "the lost submatrix must appear in the unmatched ledger"
    );

    // Stopline "somewhere before the first send in the group".
    let first_send_t = store
        .records()
        .iter()
        .filter(|r| r.kind == EventKind::Send)
        .map(|r| r.t_start)
        .min()
        .unwrap();
    let stopline = Stopline::vertical(&store, first_send_t.saturating_sub(1));
    assert!(stopline.is_consistent(&store, &matching));

    // Zoom into the distribution phase (the "increased magnification").
    let last_dist_recv = matching
        .matched
        .iter()
        .filter(|m| m.info.src == Rank(0))
        .map(|m| store.record(m.recv).t_end)
        .max()
        .unwrap();
    let full = TimelineModel::build(&store, &matching, false);
    let mut model = full.window(0, last_dist_recv + last_dist_recv / 10);
    model.add_stopline(
        first_send_t.saturating_sub(1),
        "consistent breakpoints for replay",
    );

    let svg = render_svg(&model, 1000.0);
    let ascii = render_ascii(&model, 120);
    println!("FIGURE 6 — the missed message, zoomed, with the replay stopline");
    println!("received per rank: {counts:?}");
    for u in &matching.unmatched_sends {
        println!(
            "missed: P{} -> P{} tag{} (the misdirected submatrix)",
            u.info.src, u.info.dst, u.info.tag
        );
    }
    println!("stopline markers: {:?} (consistent)", stopline.markers);
    println!("\n{ascii}");
    let p1 = write_artifact("fig6_missed.svg", &svg);
    let p2 = write_artifact("fig6_missed.txt", &ascii);
    println!("wrote {}\nwrote {}", p1.display(), p2.display());
}
