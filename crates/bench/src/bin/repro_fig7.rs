//! Figure 7 — "Identification of the incorrect send destination with
//! p2d2."
//!
//! The scripted debugging session of §4.1: run the buggy program, set a
//! stopline before the distribution, replay, and step through `MatrSend`'s
//! loop until the probed destination exposes the `jres`-vs-`jres+1` bug.
//! The transcript is the artifact.

use std::fmt::Write as _;
use tracedbg_bench::write_artifact;
use tracedbg_debugger::{CommandInterface, Session, SessionConfig, Stopline};
use tracedbg_instrument::RecorderConfig;
use tracedbg_trace::EventKind;
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::JresBug);
    let session = Session::launch(
        SessionConfig {
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        Box::new(strassen::factory(cfg)),
    );
    let mut ci = CommandInterface::new(session);
    let mut transcript = String::new();

    // Run to the hang, analyze.
    let _ = writeln!(transcript, "{}", ci.execute("run"));
    let _ = writeln!(transcript, "{}", ci.execute("analyze"));

    // Stopline before the first send (from the timeline, as in Figure 6).
    let trace = ci.session().trace();
    let first_send_t = trace
        .records()
        .iter()
        .filter(|r| r.kind == EventKind::Send)
        .map(|r| r.t_start)
        .min()
        .unwrap();
    let stopline = Stopline::vertical(&trace, first_send_t.saturating_sub(1));
    let cmd = format!(
        "stopline markers {}",
        stopline
            .markers
            .counts()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(transcript, "{}", ci.execute(&cmd));
    let _ = writeln!(transcript, "{}", ci.execute("replay"));

    // A location breakpoint on MatrSend gets the user into the loop
    // directly ("a few step operations would lead the user to the loop of
    // MatrSend") — our debugger supports both routes; show the breakpoint.
    let b = ci.execute("break MatrSend");
    let _ = writeln!(transcript, "{b}");
    assert!(!b.contains("0 site(s)"), "MatrSend sites must resolve: {b}");
    let c = ci.execute("continue");
    let _ = writeln!(transcript, "{c}");
    let why = ci.execute("why 0");
    let _ = writeln!(transcript, "{why}");
    assert!(why.contains("Breakpoint"), "{why}");
    let _ = writeln!(transcript, "{}", ci.execute("delete breaks"));

    // "a few step operations would lead the user to the loop of MatrSend.
    // Stepping through the loop, the user will find that jres should be
    // replaced by jres+1 in line 161."
    let mut destinations = Vec::new();
    for _ in 0..40 {
        let out = ci.execute("step 0");
        let _ = writeln!(transcript, "{out}");
        let probe = ci.execute("probe 0 jres");
        if let Some(v) = probe
            .lines()
            .last()
            .and_then(|l| l.rsplit('=').next())
            .and_then(|v| v.trim().parse::<i64>().ok())
        {
            if destinations.last() != Some(&v) {
                destinations.push(v);
                let _ = writeln!(transcript, "{probe}");
                let w = ci.execute("where 0");
                let _ = writeln!(transcript, "{w}");
            }
        }
        if destinations.len() >= 3 {
            break;
        }
    }
    assert_eq!(
        destinations.first(),
        Some(&0),
        "the first B-part goes to rank 0 — it should go to rank 1"
    );
    let verdict = "VERDICT: MatrSend (strassen.c:161) uses `jres` as the destination \
                   of the second submatrix; it should be `jres+1`.";
    let _ = writeln!(transcript, "{verdict}");

    println!("FIGURE 7 — scripted p2d2 session finding the bad send destination\n");
    println!("{transcript}");
    let p = write_artifact("fig7_session.txt", &transcript);
    println!("wrote {}", p.display());
}
