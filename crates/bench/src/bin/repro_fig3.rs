//! Figure 3 — "History displayed with VK. A trace of Strassen's matrix
//! multiplication running on 8 processes. Process 0 (at the bottom)
//! distributes pairs of submatrices among the other processes (each send
//! is shown as a separate message). Then process 0 receives 7 partial
//! results and combines them into the final result."
//!
//! Regenerates the VK animated-window view and asserts the figure's
//! message structure: 14 distribution sends from rank 0 (two per worker)
//! and 7 result messages back.

use tracedbg_bench::write_artifact;
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::{Engine, EngineConfig};
use tracedbg_trace::{EventKind, Rank};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_viz::{render_ascii, render_svg, TimelineModel, VkView};
use tracedbg_workloads::strassen::{self, StrassenConfig, Variant};

fn main() {
    let cfg = StrassenConfig::figures(Variant::Correct);
    let mut engine = Engine::launch(
        EngineConfig::with_recorder(RecorderConfig::full()),
        strassen::programs(&cfg),
    );
    assert!(engine.run().is_completed());
    let store = engine.trace_store();
    let matching = MessageMatching::build(&store);

    // The figure's claims about message structure.
    let sends_from_0 = store
        .records()
        .iter()
        .filter(|r| r.kind == EventKind::Send && r.rank == Rank(0))
        .count();
    let results_to_0 = matching
        .matched
        .iter()
        .filter(|m| m.info.dst == Rank(0))
        .count();
    assert_eq!(sends_from_0, 14, "two submatrices to each of 7 workers");
    assert_eq!(results_to_0, 7, "seven partial results back to rank 0");
    for w in 1..8u32 {
        let to_w = matching
            .matched
            .iter()
            .filter(|m| m.info.dst == Rank(w))
            .count();
        assert_eq!(to_w, 2, "worker {w} receives its pair");
    }

    // Full view (the paper's screenshot shows the whole run in the VK
    // window) plus the animation frame count.
    let full = TimelineModel::build(&store, &matching, false);
    let svg = render_svg(&full, 1000.0);
    let ascii = render_ascii(&full, 120);
    let (lo, hi) = store.time_bounds();
    let mut vk = VkView::new(&store, (hi - lo) / 4);
    let frames = vk.animate();

    println!("FIGURE 3 — VK view of Strassen on 8 processes");
    println!(
        "14 distribution sends from P0, 7 results back; VK animation: {} frames at 1/4 scale",
        frames.len()
    );
    println!("\n{ascii}");
    let p1 = write_artifact("fig3_vk.svg", &svg);
    let p2 = write_artifact("fig3_vk.txt", &ascii);
    println!("wrote {}\nwrote {}", p1.display(), p2.display());
}
