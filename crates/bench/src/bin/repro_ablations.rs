//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Dissemination** (§4.3): the trace graph's stored arc count with
//!    and without the merge limit, as execution length grows. Claim: the
//!    capped graph's size is (nearly) independent of execution length
//!    while representing every primitive arc.
//! 2. **Checkpointed undo** (§6 future work): wall time of returning to a
//!    mid-execution state by replay-from-start (the paper's
//!    implementation) vs restoring a checkpoint (the proposed
//!    improvement), as a function of history depth.

use std::time::Instant;
use tracedbg_bench::{write_artifact, TextTable};
use tracedbg_instrument::RecorderConfig;
use tracedbg_mpsim::machine::{
    MachineCtx, MachineEngine, MachineOutcome, MachineProgram, MachineStatus,
};
use tracedbg_mpsim::{CostModel, Engine, EngineConfig, SchedPolicy};
use tracedbg_trace::Rank;
use tracedbg_tracegraph::TraceGraph;
use tracedbg_workloads::ring::{self, RingConfig};

fn dissemination_table() -> String {
    let mut table = TextTable::new(&[
        "rounds",
        "events",
        "arcs (unbounded)",
        "arcs (limit 32)",
        "primitive arcs",
    ]);
    for rounds in [8usize, 32, 128, 512] {
        let cfg = RingConfig {
            nprocs: 4,
            rounds,
            hop_cost: 100,
            tag_stride: 0,
        };
        let mut e = Engine::launch(
            EngineConfig::with_recorder(RecorderConfig::full()),
            ring::programs(&cfg),
        );
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let full = TraceGraph::build(&store);
        let capped = TraceGraph::build_with_limit(&store, Some(32));
        assert_eq!(full.n_primitive_arcs(), capped.n_primitive_arcs());
        table.row(&[
            rounds.to_string(),
            store.len().to_string(),
            full.n_arcs().to_string(),
            capped.n_arcs().to_string(),
            capped.n_primitive_arcs().to_string(),
        ]);
    }
    table.render()
}

/// A counting machine for the checkpoint ablation. Snapshot is hand-rolled
/// (two u64s) — no serialization framework needed.
struct Ticker {
    steps: u64,
    done: u64,
}

impl MachineProgram for Ticker {
    fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
        if self.done >= self.steps {
            return MachineStatus::Finished;
        }
        let site = ctx.site("tick.rs", 1, "tick");
        ctx.compute(100, site);
        self.done += 1;
        MachineStatus::Running
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut v = self.steps.to_le_bytes().to_vec();
        v.extend_from_slice(&self.done.to_le_bytes());
        v
    }

    fn restore(&mut self, bytes: &[u8]) {
        self.steps = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        self.done = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    }
}

fn machine(steps: u64) -> MachineEngine {
    MachineEngine::new(
        vec![
            Box::new(Ticker { steps, done: 0 }),
            Box::new(Ticker { steps, done: 0 }),
        ],
        RecorderConfig::markers_only(),
        CostModel::default(),
        SchedPolicy::RoundRobin,
        None,
    )
}

fn undo_table() -> String {
    let mut table = TextTable::new(&[
        "history depth (events)",
        "replay-from-start (µs)",
        "checkpoint restore (µs)",
        "speedup",
    ]);
    for steps in [1_000u64, 10_000, 50_000] {
        // Run to a mid-point stop, checkpoint there, then run to the end.
        let mut e = machine(steps);
        let half = steps; // ProcStart + computes: stop rank 0 mid-way
        e.set_threshold(Rank(0), Some(half / 2));
        assert!(matches!(e.run(), MachineOutcome::Stopped(_)));
        e.clear_thresholds();
        let cp = e.checkpoint();
        let target = e.markers();
        e.resume_trapped();
        assert!(matches!(e.run(), MachineOutcome::Completed));

        // Undo via replay-from-start: fresh engine, thresholds at target.
        let t0 = Instant::now();
        let mut replay = machine(steps);
        for m in target.iter() {
            replay.set_threshold(m.rank, Some(m.count));
        }
        assert!(matches!(replay.run(), MachineOutcome::Stopped(_)));
        let replay_time = t0.elapsed();
        assert_eq!(replay.markers().get(Rank(0)), target.get(Rank(0)));

        // Undo via checkpoint restore.
        let t0 = Instant::now();
        e.restore(&cp);
        let restore_time = t0.elapsed();
        assert_eq!(e.markers(), target);

        table.row(&[
            steps.to_string(),
            format!("{:.1}", replay_time.as_secs_f64() * 1e6),
            format!("{:.1}", restore_time.as_secs_f64() * 1e6),
            format!(
                "{:.0}x",
                replay_time.as_secs_f64() / restore_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.render()
}

/// The session-level view: with the checkpointed `MachineSession`, how
/// many events does a backward jump actually re-execute, as a fraction of
/// history?
fn session_jump_table() -> String {
    use tracedbg_debugger::{MachineFactory, MachineSession};
    let mut table = TextTable::new(&[
        "history (events)",
        "jump target",
        "events re-executed",
        "fraction of history",
    ]);
    for steps in [2_000u64, 20_000] {
        let factory: MachineFactory = Box::new(move || {
            vec![
                Box::new(Ticker { steps, done: 0 }) as Box<dyn MachineProgram>,
                Box::new(Ticker { steps, done: 0 }),
            ]
        });
        let mut s = MachineSession::launch(
            factory,
            tracedbg_instrument::RecorderConfig::markers_only(),
            256,
        );
        assert!(s.run().is_completed());
        let end = s.markers();
        let total: u64 = end.counts().iter().sum();
        for (label, num, den) in [("25%", 1u64, 4u64), ("50%", 1, 2), ("90%", 9, 10)] {
            let target = tracedbg_trace::MarkerVector::from_counts(
                end.counts().iter().map(|c| c * num / den).collect(),
            );
            s.steps_replayed = 0;
            assert!(s.replay_to(&target).is_stopped());
            table.row(&[
                total.to_string(),
                label.to_string(),
                s.steps_replayed.to_string(),
                format!("{:.4}", s.steps_replayed as f64 / total as f64),
            ]);
        }
    }
    table.render()
}

fn main() {
    let d = dissemination_table();
    println!("ABLATION 1 — dissemination bounds the trace graph (§4.3)\n");
    println!("{d}");
    let u = undo_table();
    println!("ABLATION 2 — undo: replay-from-start vs checkpoint restore (§6)\n");
    println!("{u}");
    let j = session_jump_table();
    println!("ABLATION 3 — checkpointed session: re-executed events per jump\n");
    println!("{j}");
    let report = format!(
        "ABLATION 1 — dissemination\n\n{d}\nABLATION 2 — undo strategies\n\n{u}\n\
         ABLATION 3 — checkpointed session jumps\n\n{j}"
    );
    let p = write_artifact("ablations.txt", &report);
    println!("wrote {}", p.display());
}
