//! A deterministic message-passing runtime with debugger hooks.
//!
//! `mpsim` plays the role of MPI/PVM plus the process-control half of p2d2
//! in the paper's architecture. Simulated processes are resumable
//! state-machine tasks ([`task::TaskProgram`], usually written as a
//! [`task::Prog`] tree) that yield a [`task::TaskOp`] at every
//! send/recv/collective boundary (an MPI-flavoured vocabulary: tagged
//! sends, blocking receives with `ANY_SOURCE`/`ANY_TAG` wildcards,
//! collectives); a legacy thread-per-rank backend ([`ProcessCtx`])
//! remains as a parity baseline. A turn-taking [`Engine`] grants execution to
//! exactly one process at a time, which makes a run a pure function of the
//! program and the scheduling seed — precisely the controlled-execution
//! property the paper's replay machinery requires.
//!
//! Debugger integration points:
//!
//! * every instrumentation event flows through the process's
//!   [`Recorder`](tracedbg_instrument::Recorder); when a debugger-armed
//!   marker threshold fires the process traps and the engine returns
//!   control ([`RunOutcome::Stopped`]);
//! * wildcard receive matches are recorded ([`MatchRecorder`]) and can be
//!   forced on a later run ([`ReplayLog`]) — §4.2's nondeterminism control;
//! * a seeded perturbation mode randomizes scheduling and wildcard choice,
//!   standing in for the timing variation of a real cluster, so replay has
//!   genuine nondeterminism to defeat;
//! * when no process can run and none trapped, the engine produces a
//!   [`DeadlockReport`] with the wait-for cycle (the Figure 5 scenario);
//! * the engine itself can be checkpointed: [`EngineCheckpoint`] captures
//!   the full deterministic state of a run and [`Engine::restore`] rebuilds
//!   a live engine from it by fast-forwarding fresh process threads through
//!   their recorded reply streams — O(delta) replay for undo, stoplines and
//!   prefix-shared schedule exploration (see [`checkpoint`]);
//! * [`machine`] provides an alternative *state-machine* process backend
//!   whose whole state can be checkpointed and restored — the paper's §6
//!   future-work extension ("periodically checkpointing program states").

pub mod checkpoint;
pub mod clock;
pub mod collective;
pub mod deadlock;
pub mod engine;
pub mod fault;
pub mod machine;
pub mod mailbox;
pub mod message;
pub mod ops;
pub mod payload;
pub mod proc;
pub mod record;
pub mod sched;
pub mod task;

pub use checkpoint::EngineCheckpoint;
pub use clock::CostModel;
pub use deadlock::{DeadlockReport, WaitForEdge};
pub use engine::{set_quiet_panics, Engine, EngineConfig, RankProgram, RunOutcome, StopReason};
pub use fault::{FaultKind, FaultPlan};
pub use mailbox::{Candidate, Mailbox};
pub use message::{Envelope, MatchSpec, Message};
pub use ops::SendMode;
pub use payload::Payload;
pub use proc::{ProcessCtx, ProgramFn};
pub use record::{MatchRecorder, RecordedMatch, ReplayLog};
pub use sched::SchedPolicy;
pub use task::{OpResult, Prog, TaskInterp, TaskOp, TaskProgram, TaskView};

// Re-export the vocabulary crates so workloads depend only on mpsim.
pub use tracedbg_instrument::{Recorder, RecorderConfig, Strategy};
pub use tracedbg_obs::EngineMetrics;
pub use tracedbg_trace::{
    Decision, DecisionPoint, Fault, Marker, MarkerVector, Rank, ScheduleArtifact, SiteId,
    SiteTable, Tag, TraceRecord, TraceStore, ANY_SOURCE, ANY_TAG,
};
