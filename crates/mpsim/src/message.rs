//! Messages in flight and receive match specifications.

use crate::payload::Payload;
use serde::{Deserialize, Serialize};
use tracedbg_trace::{MsgInfo, Rank, SiteId, Tag};

/// A message sitting in a mailbox (sent but not yet received).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Envelope {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    /// Per-(src,dst) send sequence number, assigned by the engine. The MPI
    /// non-overtaking rule is enforced in terms of this sequence.
    pub seq: u64,
    /// Simulated time at which the message becomes available at `dst`.
    pub arrival: u64,
    /// Sender-side execution marker of the send event.
    pub send_marker: u64,
    /// Source location of the send call.
    pub send_site: SiteId,
    /// Synchronous (rendezvous) send: the sender blocks until this
    /// envelope is received.
    pub synchronous: bool,
    pub payload: Payload,
}

impl Envelope {
    pub fn msg_info(&self) -> MsgInfo {
        MsgInfo {
            src: self.src,
            dst: self.dst,
            tag: self.tag,
            bytes: self.payload.len() as u32,
            seq: self.seq,
        }
    }
}

/// A delivered message, as seen by the receiving program.
#[derive(Clone, Debug)]
pub struct Message {
    pub src: Rank,
    pub tag: Tag,
    pub seq: u64,
    pub payload: Payload,
}

impl From<Envelope> for Message {
    fn from(e: Envelope) -> Self {
        Message {
            src: e.src,
            tag: e.tag,
            seq: e.seq,
            payload: e.payload,
        }
    }
}

/// What a posted receive is willing to match — `None` components are the
/// `MPI_ANY_SOURCE` / `MPI_ANY_TAG` wildcards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchSpec {
    pub src: Option<Rank>,
    pub tag: Option<Tag>,
    /// Replay pinning: when set, only the message with this exact
    /// (src, seq) may match — §4.2's nondeterminism control narrows a
    /// wildcard receive to the recorded match.
    pub forced: Option<(Rank, u64)>,
}

impl MatchSpec {
    pub fn new(src: Option<Rank>, tag: Option<Tag>) -> Self {
        MatchSpec {
            src,
            tag,
            forced: None,
        }
    }

    pub fn exact(src: Rank, tag: Tag) -> Self {
        Self::new(Some(src), Some(tag))
    }

    pub fn any() -> Self {
        Self::new(None, None)
    }

    /// Is this receive nondeterministic (wildcard source)?
    pub fn is_wildcard_src(&self) -> bool {
        self.src.is_none()
    }

    /// Does `env` satisfy the (src, tag, forced) constraints?
    pub fn admits(&self, env: &Envelope) -> bool {
        if let Some((fsrc, fseq)) = self.forced {
            if env.src != fsrc || env.seq != fseq {
                return false;
            }
        }
        if let Some(s) = self.src {
            if env.src != s {
                return false;
            }
        }
        if let Some(t) = self.tag {
            if env.tag != t {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: i32, seq: u64) -> Envelope {
        Envelope {
            src: Rank(src),
            dst: Rank(0),
            tag: Tag(tag),
            seq,
            arrival: 0,
            send_marker: 1,
            send_site: SiteId::UNKNOWN,
            synchronous: false,
            payload: Payload::empty(),
        }
    }

    #[test]
    fn exact_spec() {
        let s = MatchSpec::exact(Rank(2), Tag(7));
        assert!(s.admits(&env(2, 7, 0)));
        assert!(!s.admits(&env(1, 7, 0)));
        assert!(!s.admits(&env(2, 8, 0)));
        assert!(!s.is_wildcard_src());
    }

    #[test]
    fn wildcards() {
        let any = MatchSpec::any();
        assert!(any.admits(&env(5, 99, 3)));
        assert!(any.is_wildcard_src());
        let any_src = MatchSpec::new(None, Some(Tag(1)));
        assert!(any_src.admits(&env(9, 1, 0)));
        assert!(!any_src.admits(&env(9, 2, 0)));
    }

    #[test]
    fn forced_narrows() {
        let mut s = MatchSpec::any();
        s.forced = Some((Rank(3), 7));
        assert!(s.admits(&env(3, 0, 7)));
        assert!(!s.admits(&env(3, 0, 8)));
        assert!(!s.admits(&env(4, 0, 7)));
    }

    #[test]
    fn envelope_to_message_and_msginfo() {
        let e = env(2, 7, 5);
        let info = e.msg_info();
        assert_eq!(info.src, Rank(2));
        assert_eq!(info.seq, 5);
        let m: Message = e.into();
        assert_eq!(m.src, Rank(2));
        assert_eq!(m.tag, Tag(7));
    }
}
