//! Checkpointable state-machine process backend.
//!
//! The thread-backed [`Engine`](crate::Engine) cannot snapshot a process
//! mid-flight (its state lives on a thread stack — the same reason p2d2
//! re-executes from the start). The paper's conclusions sketch the fix:
//! "We could improve on this by periodically checkpointing program states
//! and keeping a logarithmic backlog of process states."
//!
//! This module provides that improvement for programs written as explicit
//! state machines: a [`MachineProgram`] carries all of its state in a
//! serializable struct, the single-threaded [`MachineEngine`] steps the
//! machines under the same mailbox/cost/recording semantics as the thread
//! engine, and [`MachineEngine::checkpoint`] / [`MachineEngine::restore`]
//! capture and reinstate the entire computation — making *undo* and replay
//! jumps O(distance from nearest checkpoint) instead of O(history).

use crate::clock::CostModel;
use crate::deadlock::DeadlockReport;
use crate::mailbox::Mailbox;
use crate::message::{Envelope, MatchSpec, Message};
use crate::record::{MatchRecorder, RecordedMatch, ReplayLog};
use crate::sched::SchedPolicy;
use serde::{Deserialize, Serialize};
use tracedbg_instrument::{Disposition, Recorder, RecorderConfig};
use tracedbg_trace::{
    EventKind, Marker, MarkerVector, Rank, SiteId, SiteTable, Tag, TraceRecord, TraceStore,
};

/// Result of one [`MachineProgram::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineStatus {
    /// More steps to run.
    Running,
    /// The program is done.
    Finished,
}

/// A process expressed as an explicit, snapshottable state machine.
///
/// `step` is called whenever the engine gives the machine a turn. A step
/// that calls [`MachineCtx::try_recv`] and gets `None` should return
/// `Running` *without changing state*: the engine parks the machine until
/// a matching message arrives and then re-runs the same step.
pub trait MachineProgram: Send {
    fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus;

    /// Serialize the complete program state.
    fn snapshot(&self) -> Vec<u8>;

    /// Reinstate a state produced by [`MachineProgram::snapshot`].
    fn restore(&mut self, bytes: &[u8]);
}

/// Per-step context handed to a machine.
pub struct MachineCtx<'a> {
    rank: Rank,
    n_ranks: usize,
    clock: &'a mut u64,
    cost: &'a CostModel,
    recorder: &'a mut Recorder,
    sites: &'a SiteTable,
    /// Outgoing messages produced this step.
    outbox: Vec<(Rank, Tag, crate::Payload, SiteId)>,
    /// Set when a `try_recv` found nothing: the spec to wake on.
    blocked_on: Option<MatchSpec>,
    /// Message the engine pre-matched for this step's `try_recv`.
    delivery: Option<(Envelope, u64)>,
    trapped: bool,
}

impl<'a> MachineCtx<'a> {
    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn now(&self) -> u64 {
        *self.clock
    }

    pub fn site(&self, file: &str, line: u32, func: &str) -> SiteId {
        self.sites.site(file, line, func)
    }

    fn observe(&mut self, rec: TraceRecord) {
        let (_, disp) = self.recorder.observe(rec);
        *self.clock += self.cost.event_overhead;
        if disp == Disposition::Trap {
            self.trapped = true;
        }
    }

    /// Local computation.
    pub fn compute(&mut self, cost_ns: u64, site: SiteId) {
        let t0 = *self.clock;
        *self.clock += cost_ns;
        let t1 = *self.clock;
        self.observe(
            TraceRecord::basic(self.rank, EventKind::Compute, 0, t0)
                .with_span(t0, t1)
                .with_site(site),
        );
    }

    /// Probe a value.
    pub fn probe(&mut self, label: &str, value: i64, site: SiteId) {
        let t = *self.clock;
        self.observe(
            TraceRecord::basic(self.rank, EventKind::Probe, 0, t)
                .with_site(site)
                .with_args(value, 0)
                .with_label(label),
        );
    }

    /// Buffered send (queued; the engine deposits it after the step).
    pub fn send(&mut self, dst: Rank, tag: Tag, payload: crate::Payload, site: SiteId) {
        let t0 = *self.clock;
        let t_done = self.cost.send_done(t0);
        *self.clock = t_done;
        // The engine patches the seq into the record after assignment.
        self.observe(
            TraceRecord::basic(self.rank, EventKind::Send, 0, t0)
                .with_span(t0, t_done)
                .with_site(site)
                .with_msg(tracedbg_trace::MsgInfo {
                    src: self.rank,
                    dst,
                    tag,
                    bytes: payload.len() as u32,
                    seq: u64::MAX, // patched by the engine
                }),
        );
        self.outbox.push((dst, tag, payload, site));
    }

    /// Non-blocking receive attempt. On `None` the machine is parked until
    /// a matching message arrives; the step must return
    /// [`MachineStatus::Running`] without consuming its state transition.
    pub fn try_recv(
        &mut self,
        src: Option<Rank>,
        tag: Option<Tag>,
        site: SiteId,
    ) -> Option<Message> {
        if let Some((env, t_done)) = self.delivery.take() {
            let t_post = *self.clock;
            *self.clock = t_done.max(t_post);
            self.observe(
                TraceRecord::basic(self.rank, EventKind::RecvDone, 0, t_post)
                    .with_span(t_post, *self.clock)
                    .with_site(site)
                    .with_msg(env.msg_info()),
            );
            return Some(env.into());
        }
        let t_post = *self.clock;
        self.observe(
            TraceRecord::basic(self.rank, EventKind::RecvPost, 0, t_post)
                .with_site(site)
                .with_args(
                    src.map(|r| r.0 as i64).unwrap_or(-1),
                    tag.map(|t| t.0 as i64).unwrap_or(-1),
                ),
        );
        self.blocked_on = Some(MatchSpec::new(src, tag));
        None
    }
}

#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
enum MState {
    Ready,
    /// Parked on a receive; the original (pre-replay-pinning) spec plus the
    /// post time.
    Blocked {
        spec: MatchSpec,
        t_post: u64,
    },
    /// A matched message waits for the machine's next step.
    Deliverable,
    Trapped,
    Finished,
}

/// A complete checkpoint of a [`MachineEngine`] run.
#[derive(Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    program_states: Vec<Vec<u8>>,
    clocks: Vec<u64>,
    markers: Vec<u64>,
    states: Vec<MState>,
    mailboxes: Vec<Vec<Envelope>>,
    deliveries: Vec<Option<(Envelope, u64)>>,
    send_seq: Vec<Vec<u64>>,
    rr_last: usize,
    match_rec: MatchRecorder,
    /// Markers of the checkpointed instant, for labeling.
    pub at: MarkerVector,
}

/// Why a [`MachineEngine::run`] returned.
#[derive(Debug)]
pub enum MachineOutcome {
    Completed,
    Deadlock(DeadlockReport),
    /// A marker threshold fired on these processes.
    Stopped(Vec<Marker>),
}

/// Single-threaded engine over state-machine programs.
pub struct MachineEngine {
    programs: Vec<Box<dyn MachineProgram>>,
    states: Vec<MState>,
    /// Debugger pauses: a paused machine keeps its state (blocked
    /// machines still receive staged deliveries) but is never stepped.
    paused: Vec<bool>,
    clocks: Vec<u64>,
    recorders: Vec<Recorder>,
    mailboxes: Vec<Mailbox>,
    deliveries: Vec<Option<(Envelope, u64)>>,
    send_seq: Vec<Vec<u64>>,
    rr_last: usize,
    match_rec: MatchRecorder,
    replay: Option<ReplayLog>,
    cost: CostModel,
    sites: SiteTable,
    n: usize,
    collected: Vec<TraceRecord>,
}

impl MachineEngine {
    pub fn new(
        programs: Vec<Box<dyn MachineProgram>>,
        recorder: RecorderConfig,
        cost: CostModel,
        policy: SchedPolicy,
        replay: Option<ReplayLog>,
    ) -> Self {
        assert!(
            matches!(policy, SchedPolicy::RoundRobin),
            "MachineEngine supports the deterministic round-robin policy only \
             (checkpoints cannot capture a perturbation RNG mid-stream)"
        );
        let n = programs.len();
        assert!(n > 0);
        let mut replay = replay;
        if let Some(log) = replay.as_mut() {
            log.reset();
        }
        let mut recorders: Vec<Recorder> = (0..n)
            .map(|i| Recorder::new(Rank(i as u32), recorder.clone()))
            .collect();
        let clocks = vec![0u64; n];
        // ProcStart events.
        for (i, r) in recorders.iter_mut().enumerate() {
            r.observe(TraceRecord::basic(i as u32, EventKind::ProcStart, 0, 0));
        }
        MachineEngine {
            programs,
            states: vec![MState::Ready; n],
            paused: vec![false; n],
            clocks,
            recorders,
            mailboxes: (0..n).map(|_| Mailbox::new(n)).collect(),
            deliveries: (0..n).map(|_| None).collect(),
            send_seq: vec![vec![0; n]; n],
            rr_last: n - 1,
            match_rec: MatchRecorder::new(n),
            replay,
            cost,
            sites: SiteTable::new(),
            n,
            collected: Vec::new(),
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n
    }

    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    fn next_ready(&self) -> Option<usize> {
        for k in 1..=self.n {
            let i = (self.rr_last + k) % self.n;
            if self.paused[i] {
                continue;
            }
            if matches!(self.states[i], MState::Ready | MState::Deliverable) {
                return Some(i);
            }
        }
        None
    }

    /// Run until completion, deadlock, or a marker-threshold stop. A
    /// machine that traps is parked; the others keep running until they
    /// finish, trap, or block — matching the thread engine's semantics.
    pub fn run(&mut self) -> MachineOutcome {
        loop {
            if let Some(out) = self.run_bounded(usize::MAX) {
                return out;
            }
        }
    }

    /// Execute at most `max_steps` machine steps. Returns `Some(outcome)`
    /// when the run reached a terminal/stop state within the budget, else
    /// `None` (budget exhausted, more work pending) — the hook a
    /// checkpointing driver uses to snapshot at regular intervals.
    pub fn run_bounded(&mut self, max_steps: usize) -> Option<MachineOutcome> {
        for _ in 0..max_steps {
            let Some(i) = self.next_ready() else {
                return Some(self.stall());
            };
            self.rr_last = i;
            self.step_machine(i);
        }
        // Budget exhausted; terminal states are still reported eagerly.
        if self.next_ready().is_none() {
            return Some(self.stall());
        }
        None
    }

    fn stall(&self) -> MachineOutcome {
        if self.states.iter().all(|s| matches!(s, MState::Finished)) {
            return MachineOutcome::Completed;
        }
        let traps: Vec<Marker> = self
            .states
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                matches!(s, MState::Trapped) || (self.paused[*i] && !matches!(s, MState::Finished))
            })
            .map(|(r, _)| Marker::new(r as u32, self.recorders[r].marker()))
            .collect();
        if !traps.is_empty() {
            return MachineOutcome::Stopped(traps);
        }
        let blocked: Vec<(Rank, MatchSpec, u64)> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                MState::Blocked { spec, .. } => {
                    Some((Rank(i as u32), *spec, self.recorders[i].marker()))
                }
                _ => None,
            })
            .collect();
        MachineOutcome::Deadlock(DeadlockReport::analyze(&blocked))
    }

    fn step_machine(&mut self, i: usize) {
        let delivery = self.deliveries[i].take();
        let mut ctx = MachineCtx {
            rank: Rank(i as u32),
            n_ranks: self.n,
            clock: &mut self.clocks[i],
            cost: &self.cost,
            recorder: &mut self.recorders[i],
            sites: &self.sites,
            outbox: Vec::new(),
            blocked_on: None,
            delivery,
            trapped: false,
        };
        let status = self.programs[i].step(&mut ctx);
        let outbox = std::mem::take(&mut ctx.outbox);
        let blocked_on = ctx.blocked_on.take();
        let trapped = ctx.trapped;
        let t_post = *ctx.clock;
        drop(ctx);
        // Deposit sends (assigning sequence numbers, patching records).
        for (dst, tag, payload, site) in outbox {
            let seq = self.send_seq[i][dst.ix()];
            self.send_seq[i][dst.ix()] += 1;
            self.patch_last_send_seq(i, seq);
            let arrival = self.cost.arrival(self.clocks[i], payload.len());
            let env = Envelope {
                src: Rank(i as u32),
                dst,
                tag,
                seq,
                arrival,
                send_marker: self.recorders[i].marker(),
                send_site: site,
                synchronous: false,
                payload,
            };
            self.mailboxes[dst.ix()].push(env);
            self.try_wake(dst.ix());
        }
        self.states[i] = if trapped {
            MState::Trapped
        } else if status == MachineStatus::Finished {
            let t = self.clocks[i];
            self.recorders[i].observe(TraceRecord::basic(i as u32, EventKind::ProcEnd, 0, t));
            MState::Finished
        } else if let Some(mut spec) = blocked_on {
            if let Some(log) = self.replay.as_mut() {
                if let Some(m) = log.next_for(Rank(i as u32)) {
                    spec.forced = Some((m.src, m.seq));
                }
            }
            self.states[i] = MState::Blocked { spec, t_post };
            self.try_wake(i);
            return;
        } else {
            MState::Ready
        };
    }

    /// Patch the `seq` of the most recent Send record of machine `i` (the
    /// ctx could not know it when the record was emitted).
    fn patch_last_send_seq(&mut self, i: usize, seq: u64) {
        // Records with seq == u64::MAX are unpatched sends, newest last.
        // The recorder buffer is append-only, so scan from the back.
        let recs = self.recorders[i].records();
        let pos = recs
            .iter()
            .rposition(|r| r.kind == EventKind::Send && r.msg.map(|m| m.seq) == Some(u64::MAX));
        if let Some(p) = pos {
            self.recorders[i].patch_msg_seq(p, seq);
        }
    }

    /// If machine `dst` is blocked and a message now matches, stage the
    /// delivery for its next step.
    fn try_wake(&mut self, dst: usize) {
        let (spec, t_post) = match &self.states[dst] {
            MState::Blocked { spec, t_post } => (*spec, *t_post),
            _ => return,
        };
        let candidates = self.mailboxes[dst].candidates(&spec);
        let Some(best) = candidates.iter().min_by_key(|c| (c.arrival, c.src)) else {
            return;
        };
        let env = self.mailboxes[dst].take(*best);
        self.match_rec.record(
            Rank(dst as u32),
            RecordedMatch {
                src: env.src,
                tag: env.tag,
                seq: env.seq,
            },
        );
        let t_done = self.cost.recv_done(t_post, env.arrival);
        self.deliveries[dst] = Some((env, t_done));
        self.states[dst] = MState::Deliverable;
    }

    // ---- debugger interface ----

    pub fn set_threshold(&mut self, rank: Rank, threshold: Option<u64>) {
        self.recorders[rank.ix()].set_threshold(threshold);
    }

    pub fn clear_thresholds(&mut self) {
        for r in &mut self.recorders {
            r.set_threshold(None);
        }
    }

    pub fn resume_trapped(&mut self) {
        for s in self.states.iter_mut() {
            if matches!(s, MState::Trapped) {
                *s = MState::Ready;
            }
        }
    }

    /// Debugger pause: hold a machine without disturbing its state.
    pub fn set_paused(&mut self, rank: Rank, paused: bool) {
        self.paused[rank.ix()] = paused;
    }

    /// Clear every pause.
    pub fn clear_pauses(&mut self) {
        self.paused.fill(false);
    }

    pub fn markers(&self) -> MarkerVector {
        MarkerVector::from_counts(self.recorders.iter().map(|r| r.marker()).collect())
    }

    pub fn collect_trace(&mut self) -> Vec<TraceRecord> {
        for r in &mut self.recorders {
            self.collected.extend(r.take_records());
        }
        self.collected.clone()
    }

    pub fn trace_store(&mut self) -> TraceStore {
        let recs = self.collect_trace();
        TraceStore::build(recs, self.sites.clone(), self.n)
    }

    pub fn match_log(&self) -> ReplayLog {
        self.match_rec.clone().into_log()
    }

    // ---- checkpointing ----

    /// Capture the whole computation. Trace records buffered so far are
    /// moved to the engine's collected set (a checkpoint is a cut: history
    /// before it is already final).
    pub fn checkpoint(&mut self) -> Checkpoint {
        for r in &mut self.recorders {
            self.collected.extend(r.take_records());
        }
        Checkpoint {
            program_states: self.programs.iter().map(|p| p.snapshot()).collect(),
            clocks: self.clocks.clone(),
            markers: self.recorders.iter().map(|r| r.marker()).collect(),
            states: self.states.clone(),
            mailboxes: self
                .mailboxes
                .iter()
                .map(|m| m.undelivered().into_iter().cloned().collect())
                .collect(),
            deliveries: self.deliveries.clone(),
            send_seq: self.send_seq.clone(),
            rr_last: self.rr_last,
            match_rec: self.match_rec.clone(),
            at: self.markers(),
        }
    }

    /// Reinstate a checkpoint. Trace records produced after the checkpoint
    /// are discarded (they describe a future that is being rewound).
    pub fn restore(&mut self, cp: &Checkpoint) {
        assert_eq!(cp.program_states.len(), self.n);
        for (i, p) in self.programs.iter_mut().enumerate() {
            p.restore(&cp.program_states[i]);
        }
        self.clocks = cp.clocks.clone();
        for (i, r) in self.recorders.iter_mut().enumerate() {
            r.take_records(); // drop post-checkpoint records
            r.force_marker(cp.markers[i]);
        }
        self.states = cp.states.clone();
        for (i, mb) in self.mailboxes.iter_mut().enumerate() {
            mb.drain_all();
            for env in &cp.mailboxes[i] {
                mb.push(env.clone());
            }
        }
        self.deliveries = cp.deliveries.clone();
        self.send_seq = cp.send_seq.clone();
        self.rr_last = cp.rr_last;
        self.match_rec = cp.match_rec.clone();
        self.paused.fill(false);
        // Collected history after the checkpoint marker must be dropped.
        let at = &cp.at;
        self.collected.retain(|rec| rec.marker <= at.get(rec.rank));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    /// A counter machine: computes `steps` blocks then finishes.
    #[derive(Serialize, Deserialize)]
    struct Counter {
        steps: u32,
        done: u32,
    }

    impl MachineProgram for Counter {
        fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
            if self.done >= self.steps {
                return MachineStatus::Finished;
            }
            let site = ctx.site("counter.rs", 1, "tick");
            ctx.compute(100, site);
            self.done += 1;
            MachineStatus::Running
        }

        fn snapshot(&self) -> Vec<u8> {
            serde_json::to_vec(self).unwrap()
        }

        fn restore(&mut self, bytes: &[u8]) {
            *self = serde_json::from_slice(bytes).unwrap();
        }
    }

    /// Ping-pong pair as state machines.
    #[derive(Serialize, Deserialize)]
    struct Pinger {
        rank: u32,
        phase: u32,
        rounds: u32,
    }

    impl MachineProgram for Pinger {
        fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
            let site = ctx.site("pp.rs", 1, "pingpong");
            let peer = Rank(1 - self.rank);
            if self.phase >= 2 * self.rounds {
                return MachineStatus::Finished;
            }
            let my_turn_to_send = (self.phase % 2 == 0) == (self.rank == 0);
            if my_turn_to_send {
                ctx.send(peer, Tag(0), Payload::from_i64(self.phase as i64), site);
                self.phase += 1;
            } else {
                match ctx.try_recv(Some(peer), Some(Tag(0)), site) {
                    Some(_) => self.phase += 1,
                    None => return MachineStatus::Running,
                }
            }
            MachineStatus::Running
        }

        fn snapshot(&self) -> Vec<u8> {
            serde_json::to_vec(self).unwrap()
        }

        fn restore(&mut self, bytes: &[u8]) {
            *self = serde_json::from_slice(bytes).unwrap();
        }
    }

    fn engine_of(programs: Vec<Box<dyn MachineProgram>>) -> MachineEngine {
        MachineEngine::new(
            programs,
            RecorderConfig::full(),
            CostModel::default(),
            SchedPolicy::RoundRobin,
            None,
        )
    }

    #[test]
    fn counters_complete() {
        let mut e = engine_of(vec![
            Box::new(Counter { steps: 3, done: 0 }),
            Box::new(Counter { steps: 5, done: 0 }),
        ]);
        assert!(matches!(e.run(), MachineOutcome::Completed));
        let store = e.trace_store();
        assert_eq!(store.of_kind(EventKind::Compute).len(), 8);
    }

    #[test]
    fn pingpong_machines_complete() {
        let mut e = engine_of(vec![
            Box::new(Pinger {
                rank: 0,
                phase: 0,
                rounds: 3,
            }),
            Box::new(Pinger {
                rank: 1,
                phase: 0,
                rounds: 3,
            }),
        ]);
        assert!(matches!(e.run(), MachineOutcome::Completed));
        let store = e.trace_store();
        assert_eq!(store.of_kind(EventKind::Send).len(), 6);
        assert_eq!(store.of_kind(EventKind::RecvDone).len(), 6);
        // All send seqs patched.
        assert!(store
            .records()
            .iter()
            .filter(|r| r.kind == EventKind::Send)
            .all(|r| r.msg.unwrap().seq != u64::MAX));
    }

    #[test]
    fn threshold_stops_machine_run() {
        let mut e = engine_of(vec![Box::new(Counter { steps: 10, done: 0 })]);
        e.set_threshold(Rank(0), Some(4));
        match e.run() {
            MachineOutcome::Stopped(traps) => {
                assert_eq!(traps, vec![Marker::new(0u32, 4)]);
            }
            other => panic!("{other:?}"),
        }
        e.clear_thresholds();
        e.resume_trapped();
        assert!(matches!(e.run(), MachineOutcome::Completed));
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        // Run A: checkpoint mid-way, continue to completion.
        let mut e = engine_of(vec![
            Box::new(Pinger {
                rank: 0,
                phase: 0,
                rounds: 4,
            }),
            Box::new(Pinger {
                rank: 1,
                phase: 0,
                rounds: 4,
            }),
        ]);
        e.set_threshold(Rank(0), Some(6));
        assert!(matches!(e.run(), MachineOutcome::Stopped(_)));
        e.clear_thresholds();
        let cp = e.checkpoint();
        e.resume_trapped();
        assert!(matches!(e.run(), MachineOutcome::Completed));
        let full_trace = e.collect_trace();
        let final_markers = e.markers();

        // Rewind to the checkpoint and run again: identical end state.
        e.restore(&cp);
        e.resume_trapped();
        assert!(matches!(e.run(), MachineOutcome::Completed));
        let trace2 = e.collect_trace();
        assert_eq!(e.markers(), final_markers);
        let key = |v: &Vec<TraceRecord>| {
            let mut k: Vec<(u32, u64, u64, u64)> = v
                .iter()
                .map(|r| (r.rank.0, r.marker, r.t_start, r.t_end))
                .collect();
            k.sort();
            k
        };
        assert_eq!(key(&full_trace), key(&trace2));
    }

    #[test]
    fn machine_deadlock_detected() {
        #[derive(Serialize, Deserialize)]
        struct Waiter {
            peer: u32,
        }
        impl MachineProgram for Waiter {
            fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
                let site = ctx.site("w.rs", 1, "wait");
                match ctx.try_recv(Some(Rank(self.peer)), None, site) {
                    Some(_) => MachineStatus::Finished,
                    None => MachineStatus::Running,
                }
            }
            fn snapshot(&self) -> Vec<u8> {
                serde_json::to_vec(self).unwrap()
            }
            fn restore(&mut self, bytes: &[u8]) {
                *self = serde_json::from_slice(bytes).unwrap();
            }
        }
        let mut e = engine_of(vec![
            Box::new(Waiter { peer: 1 }),
            Box::new(Waiter { peer: 0 }),
        ]);
        match e.run() {
            MachineOutcome::Deadlock(rep) => {
                assert!(rep.is_cyclic());
                assert_eq!(rep.cycle, vec![Rank(0), Rank(1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A sink machine with a wildcard receive, recording arrival order.
    #[derive(Serialize, Deserialize)]
    struct WildSink {
        expect: u32,
        got: Vec<u32>,
    }

    impl MachineProgram for WildSink {
        fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
            if self.got.len() as u32 >= self.expect {
                return MachineStatus::Finished;
            }
            let site = ctx.site("ws.rs", 1, "sink");
            match ctx.try_recv(None, None, site) {
                Some(m) => {
                    self.got.push(m.src.0);
                    MachineStatus::Running
                }
                None => MachineStatus::Running,
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            serde_json::to_vec(self).unwrap()
        }
        fn restore(&mut self, bytes: &[u8]) {
            *self = serde_json::from_slice(bytes).unwrap();
        }
    }

    /// One-shot sender machine.
    #[derive(Serialize, Deserialize)]
    struct OneSend {
        sent: bool,
        delay_steps: u32,
    }

    impl MachineProgram for OneSend {
        fn step(&mut self, ctx: &mut MachineCtx<'_>) -> MachineStatus {
            let site = ctx.site("ws.rs", 2, "sender");
            if self.delay_steps > 0 {
                self.delay_steps -= 1;
                ctx.compute(50, site);
                return MachineStatus::Running;
            }
            if !self.sent {
                ctx.send(Rank(0), Tag(0), Payload::from_i64(1), site);
                self.sent = true;
                return MachineStatus::Running;
            }
            MachineStatus::Finished
        }
        fn snapshot(&self) -> Vec<u8> {
            serde_json::to_vec(self).unwrap()
        }
        fn restore(&mut self, bytes: &[u8]) {
            *self = serde_json::from_slice(bytes).unwrap();
        }
    }

    #[test]
    fn machine_replay_pins_wildcard_matches() {
        let make = |replay: Option<ReplayLog>| {
            MachineEngine::new(
                vec![
                    Box::new(WildSink {
                        expect: 2,
                        got: Vec::new(),
                    }) as Box<dyn MachineProgram>,
                    Box::new(OneSend {
                        sent: false,
                        delay_steps: 3,
                    }),
                    Box::new(OneSend {
                        sent: false,
                        delay_steps: 0,
                    }),
                ],
                RecorderConfig::full(),
                CostModel::default(),
                SchedPolicy::RoundRobin,
                replay,
            )
        };
        let mut rec = make(None);
        assert!(matches!(rec.run(), MachineOutcome::Completed));
        let recorded: Vec<(u32, u64)> = {
            let store = rec.trace_store();
            store
                .records()
                .iter()
                .filter(|r| r.kind == EventKind::RecvDone)
                .map(|r| (r.msg.unwrap().src.0, r.marker))
                .collect()
        };
        assert_eq!(recorded.len(), 2);
        let mut rep = make(Some(rec.match_log()));
        assert!(matches!(rep.run(), MachineOutcome::Completed));
        let replayed: Vec<(u32, u64)> = {
            let store = rep.trace_store();
            store
                .records()
                .iter()
                .filter(|r| r.kind == EventKind::RecvDone)
                .map(|r| (r.msg.unwrap().src.0, r.marker))
                .collect()
        };
        assert_eq!(recorded, replayed);
    }

    #[test]
    fn checkpoint_serializes() {
        let mut e = engine_of(vec![Box::new(Counter { steps: 2, done: 0 })]);
        let cp = e.checkpoint();
        let json = serde_json::to_string(&cp).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.at, cp.at);
    }
}
