//! The rendezvous protocol between process threads and the engine.
//!
//! A process thread runs only while it holds the turn. It releases the turn
//! by sending a [`Request`] and blocks until the engine returns a [`Reply`]
//! — which the engine does when (a) the request can be satisfied and (b)
//! the scheduler grants the process its next turn. This single-running-
//! process discipline is what makes execution controlled and replayable.

use crate::message::{Envelope, MatchSpec};
use crate::payload::Payload;
use tracedbg_trace::{CollKind, Rank, SiteId, Tag};

/// Point-to-point send semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendMode {
    /// Completes locally as soon as the message is buffered (`MPI_Send`
    /// with buffering, the default).
    Buffered,
    /// Rendezvous: completes only when the matching receive takes the
    /// message (`MPI_Ssend`). Enables send-side circular waits.
    Synchronous,
}

/// A request from a process to the engine (sent with the process's rank).
#[derive(Debug)]
pub enum Request {
    /// Point-to-point send; completion depends on `mode`.
    Send {
        dst: Rank,
        tag: Tag,
        payload: Payload,
        /// Sender-local start time of the send call.
        t0: u64,
        send_marker: u64,
        site: SiteId,
        mode: SendMode,
    },
    /// Blocking receive.
    Recv {
        spec: MatchSpec,
        /// Post time (receiver-local).
        t_post: u64,
    },
    /// Collective operation; blocks until all ranks arrive.
    Collective {
        kind: CollKind,
        root: Rank,
        payload: Payload,
        op: Option<crate::collective::ReduceOp>,
        t_enter: u64,
    },
    /// The marker threshold fired: process pauses for the debugger.
    MarkerTrap { marker: u64 },
    /// Process function returned normally.
    Finished { t_end: u64 },
    /// Process function panicked.
    Panicked { message: String },
}

/// The engine's grant back to a process.
///
/// `Clone` because checkpointing logs the reply stream per rank: restoring
/// a checkpoint re-feeds each process thread its recorded replies so it
/// fast-forwards deterministically to the snapshot point.
#[derive(Clone, Debug)]
pub enum Reply {
    /// Initial grant / resume after a trap or a send.
    Proceed,
    /// A send completed; carries the assigned per-channel sequence number
    /// and the sender-side completion time (for a synchronous send this is
    /// the rendezvous instant).
    SendDone { seq: u64, t_done: u64 },
    /// A receive matched.
    RecvDone { env: Envelope, t_done: u64 },
    /// A collective completed; `result` is this rank's share.
    CollDone { result: Payload, t_done: u64 },
    /// The engine is being torn down: unwind quietly.
    Shutdown,
}

/// Panic payload used to unwind a process thread on [`Reply::Shutdown`].
pub struct ShutdownSignal;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_debug_formats() {
        let r = Request::Recv {
            spec: MatchSpec::any(),
            t_post: 5,
        };
        assert!(format!("{r:?}").contains("Recv"));
        let f = Request::Finished { t_end: 10 };
        assert!(format!("{f:?}").contains("Finished"));
    }
}
