//! Per-process mailboxes with MPI non-overtaking matching.
//!
//! Each destination owns one FIFO queue per source. Matching scans a
//! source's queue in send order and takes the *first* envelope the spec
//! admits; together with per-source FIFO order this enforces the standard's
//! non-overtaking rule (two messages from the same sender that both match a
//! receive are received in send order) — the property the paper leans on to
//! match send and receive arcs uniquely in the trace graph (§3.2).

use crate::message::{Envelope, MatchSpec};
use std::collections::VecDeque;
use tracedbg_trace::Rank;

/// A matchable message: where it sits and what it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub src: Rank,
    /// Position within the source's queue (0 = oldest).
    pub pos: usize,
    pub arrival: u64,
    pub seq: u64,
}

/// The incoming-message store of one destination process.
#[derive(Clone, Debug)]
pub struct Mailbox {
    /// Indexed by source rank.
    queues: Vec<VecDeque<Envelope>>,
}

impl Mailbox {
    pub fn new(n_ranks: usize) -> Self {
        Mailbox {
            queues: (0..n_ranks).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Deposit a sent message.
    pub fn push(&mut self, env: Envelope) {
        self.queues[env.src.ix()].push_back(env);
    }

    /// All envelopes a spec could match right now: for each source, the
    /// first admitted envelope in that source's queue (non-overtaking).
    pub fn candidates(&self, spec: &MatchSpec) -> Vec<Candidate> {
        let mut out = Vec::new();
        for (s, q) in self.queues.iter().enumerate() {
            if let Some(src) = spec.src {
                if src.ix() != s {
                    continue;
                }
            }
            for (pos, env) in q.iter().enumerate() {
                if spec.admits(env) {
                    out.push(Candidate {
                        src: Rank(s as u32),
                        pos,
                        arrival: env.arrival,
                        seq: env.seq,
                    });
                    break;
                }
            }
        }
        out
    }

    /// Remove and return the envelope at a candidate position.
    pub fn take(&mut self, c: Candidate) -> Envelope {
        self.queues[c.src.ix()]
            .remove(c.pos)
            .expect("candidate position vanished")
    }

    /// Number of undelivered messages.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Snapshot of undelivered envelopes (for unmatched-send reports).
    pub fn undelivered(&self) -> Vec<&Envelope> {
        self.queues.iter().flatten().collect()
    }

    /// Drain everything (checkpoint restore support).
    pub fn drain_all(&mut self) -> Vec<Envelope> {
        let mut out = Vec::new();
        for q in &mut self.queues {
            out.extend(q.drain(..));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use tracedbg_trace::{SiteId, Tag};

    fn env(src: u32, tag: i32, seq: u64, arrival: u64) -> Envelope {
        Envelope {
            src: Rank(src),
            dst: Rank(0),
            tag: Tag(tag),
            seq,
            arrival,
            send_marker: 0,
            send_site: SiteId::UNKNOWN,
            synchronous: false,
            payload: Payload::empty(),
        }
    }

    #[test]
    fn fifo_per_source_same_tag() {
        let mut mb = Mailbox::new(2);
        mb.push(env(1, 5, 0, 10));
        mb.push(env(1, 5, 1, 20));
        let spec = MatchSpec::exact(Rank(1), Tag(5));
        let cs = mb.candidates(&spec);
        assert_eq!(cs.len(), 1, "only the head of the queue is matchable");
        assert_eq!(cs[0].seq, 0);
        let e = mb.take(cs[0]);
        assert_eq!(e.seq, 0);
        let cs2 = mb.candidates(&spec);
        assert_eq!(cs2[0].seq, 1);
    }

    #[test]
    fn tag_skipping_is_allowed() {
        // A later message with a *different* tag may be received first.
        let mut mb = Mailbox::new(2);
        mb.push(env(1, 5, 0, 10));
        mb.push(env(1, 6, 1, 20));
        let spec6 = MatchSpec::exact(Rank(1), Tag(6));
        let cs = mb.candidates(&spec6);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].seq, 1);
        mb.take(cs[0]);
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn wildcard_source_sees_one_candidate_per_source() {
        let mut mb = Mailbox::new(3);
        mb.push(env(1, 5, 0, 30));
        mb.push(env(1, 5, 1, 40));
        mb.push(env(2, 5, 0, 10));
        let spec = MatchSpec::new(None, Some(Tag(5)));
        let cs = mb.candidates(&spec);
        assert_eq!(cs.len(), 2);
        let srcs: Vec<u32> = cs.iter().map(|c| c.src.0).collect();
        assert_eq!(srcs, vec![1, 2]);
    }

    #[test]
    fn any_tag_takes_queue_head() {
        let mut mb = Mailbox::new(2);
        mb.push(env(1, 9, 0, 10));
        mb.push(env(1, 5, 1, 20));
        let spec = MatchSpec::new(Some(Rank(1)), None);
        let cs = mb.candidates(&spec);
        assert_eq!(cs[0].seq, 0, "ANY_TAG must take the oldest message");
    }

    #[test]
    fn forced_match_skips_to_pinned_seq() {
        let mut mb = Mailbox::new(2);
        mb.push(env(1, 5, 0, 10));
        mb.push(env(1, 5, 1, 20));
        let mut spec = MatchSpec::any();
        spec.forced = Some((Rank(1), 1));
        // The pinned message is behind seq 0 with the same tag: candidates
        // finds it because `admits` rejects seq 0.
        let cs = mb.candidates(&spec);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].seq, 1);
    }

    #[test]
    fn pending_and_undelivered() {
        let mut mb = Mailbox::new(2);
        assert_eq!(mb.pending(), 0);
        mb.push(env(0, 1, 0, 5));
        mb.push(env(1, 1, 0, 5));
        assert_eq!(mb.pending(), 2);
        assert_eq!(mb.undelivered().len(), 2);
        let drained = mb.drain_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(mb.pending(), 0);
    }
}
