//! The process-side API and thread harness.
//!
//! User programs receive a `&mut ProcessCtx` and call MPI-flavoured
//! operations on it. Instrumentation events (function scopes, probes,
//! compute blocks, communication) are observed through the process's
//! [`Recorder`]; when a debugger-armed marker threshold fires the process
//! traps to the engine and stays paused until resumed — the `UserMonitor`
//! protocol of §2.2.

use crate::clock::CostModel;
use crate::collective::ReduceOp;
use crate::message::{MatchSpec, Message};
use crate::ops::{Reply, Request, SendMode, ShutdownSignal};
use crate::payload::Payload;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use tracedbg_instrument::{Disposition, Recorder};
use tracedbg_trace::{CollKind, EventKind, FlushHandle, Rank, SiteId, SiteTable, Tag, TraceRecord};

/// A simulated process body.
pub type ProgramFn = Box<dyn FnOnce(&mut ProcessCtx) + Send + 'static>;

/// The API a simulated process programs against.
pub struct ProcessCtx {
    rank: Rank,
    n_ranks: usize,
    clock: u64,
    cost: CostModel,
    sites: SiteTable,
    recorder: Arc<Mutex<Recorder>>,
    req_tx: Sender<(Rank, Request)>,
    reply_rx: Receiver<Reply>,
    flush: FlushHandle,
    /// Sites of the function scopes currently open (innermost last).
    fn_stack: Vec<SiteId>,
    /// Cached: instrumentation entirely off (Table 1 baseline fast path).
    instr_off: bool,
}

impl ProcessCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: Rank,
        n_ranks: usize,
        cost: CostModel,
        sites: SiteTable,
        recorder: Arc<Mutex<Recorder>>,
        req_tx: Sender<(Rank, Request)>,
        reply_rx: Receiver<Reply>,
        flush: FlushHandle,
    ) -> Self {
        let instr_off = recorder.lock().is_off();
        ProcessCtx {
            rank,
            n_ranks,
            clock: 0,
            cost,
            sites,
            recorder,
            req_tx,
            reply_rx,
            flush,
            fn_stack: Vec::new(),
            instr_off,
        }
    }

    // ---- identity & time ----

    pub fn rank(&self) -> Rank {
        self.rank
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Current simulated local time (ns).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Intern a source location (cache the id outside hot loops).
    pub fn site(&self, file: &str, line: u32, func: &str) -> SiteId {
        self.sites.site(file, line, func)
    }

    /// Intern a location using the innermost open function scope's name.
    pub fn site_here(&self, file: &str, line: u32) -> SiteId {
        let func = self
            .fn_stack
            .last()
            .map(|s| self.sites.func_name(*s))
            .unwrap_or_else(|| "main".into());
        self.sites.site(file, line, &func)
    }

    // ---- instrumentation events ----

    /// Observe one instrumentation event; trap to the engine if the marker
    /// threshold fired.
    fn observe(&mut self, rec: TraceRecord) {
        if self.instr_off {
            return;
        }
        let (marker, disp) = self.recorder.lock().observe(rec);
        self.clock += self.cost.event_overhead;
        if disp == Disposition::Trap {
            self.request(Request::MarkerTrap { marker });
            match self.await_reply() {
                Reply::Proceed => {}
                other => panic!("unexpected reply to trap: {other:?}"),
            }
        }
    }

    fn request(&self, req: Request) {
        // A closed channel means the engine is gone: unwind quietly.
        if self.req_tx.send((self.rank, req)).is_err() {
            std::panic::panic_any(ShutdownSignal);
        }
    }

    fn await_reply(&self) -> Reply {
        match self.reply_rx.recv() {
            Ok(Reply::Shutdown) | Err(_) => std::panic::panic_any(ShutdownSignal),
            Ok(r) => r,
        }
    }

    /// A block of local computation costing `cost_ns` of simulated time.
    pub fn compute(&mut self, cost_ns: u64, site: SiteId) {
        let t0 = self.clock;
        self.clock += cost_ns;
        let t1 = self.clock;
        let rec = TraceRecord::basic(self.rank, EventKind::Compute, 0, t0)
            .with_span(t0, t1)
            .with_site(site);
        self.observe(rec);
    }

    /// Record a probe: a named value snapshot the debugger can inspect when
    /// stepping (our stand-in for reading locals through ptrace).
    pub fn probe(&mut self, label: &str, value: i64, site: SiteId) {
        let t = self.clock;
        let rec = TraceRecord::basic(self.rank, EventKind::Probe, 0, t)
            .with_site(site)
            .with_args(value, 0)
            .with_label(label);
        self.observe(rec);
    }

    /// Run `body` inside an instrumented function scope: a `FnEnter` event
    /// on the way in (the `UserMonitor` call gcc's `-p` would insert in the
    /// prologue) and a `FnExit` on the way out.
    pub fn scope<T>(
        &mut self,
        site: SiteId,
        args: [i64; 2],
        body: impl FnOnce(&mut Self) -> T,
    ) -> T {
        if self.instr_off {
            return body(self);
        }
        let t = self.clock;
        let rec = TraceRecord::basic(self.rank, EventKind::FnEnter, 0, t)
            .with_site(site)
            .with_args(args[0], args[1]);
        self.observe(rec);
        self.fn_stack.push(site);
        let out = body(self);
        self.fn_stack.pop();
        let t = self.clock;
        let rec = TraceRecord::basic(self.rank, EventKind::FnExit, 0, t).with_site(site);
        self.observe(rec);
        out
    }

    // ---- point-to-point communication ----

    /// Buffered send (completes locally, like `MPI_Send` with buffering).
    pub fn send(&mut self, dst: Rank, tag: Tag, payload: Payload, site: SiteId) {
        self.send_mode(dst, tag, payload, site, SendMode::Buffered)
    }

    /// Synchronous (rendezvous) send, like `MPI_Ssend`: blocks until the
    /// matching receive takes the message. Two processes synchronously
    /// sending to each other deadlock — the send-side circular dependency
    /// §4.4's analysis detects.
    pub fn ssend(&mut self, dst: Rank, tag: Tag, payload: Payload, site: SiteId) {
        self.send_mode(dst, tag, payload, site, SendMode::Synchronous)
    }

    /// Point-to-point send with explicit semantics.
    pub fn send_mode(
        &mut self,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        site: SiteId,
        mode: SendMode,
    ) {
        assert!(dst.ix() < self.n_ranks, "send to nonexistent {dst:?}");
        let t0 = self.clock;
        let bytes = payload.len() as u32;
        let send_marker = if self.instr_off {
            0
        } else {
            self.recorder.lock().marker() + 1
        };
        self.request(Request::Send {
            dst,
            tag,
            payload,
            t0,
            send_marker,
            site,
            mode,
        });
        let (seq, t_done) = match self.await_reply() {
            Reply::SendDone { seq, t_done } => (seq, t_done),
            other => panic!("unexpected reply to send: {other:?}"),
        };
        self.clock = t_done;
        let rec = TraceRecord::basic(self.rank, EventKind::Send, 0, t0)
            .with_span(t0, t_done)
            .with_site(site)
            .with_msg(tracedbg_trace::MsgInfo {
                src: self.rank,
                dst,
                tag,
                bytes,
                seq,
            });
        self.observe(rec);
    }

    /// Blocking receive. `src`/`tag` of `None` are the wildcards.
    pub fn recv(&mut self, src: Option<Rank>, tag: Option<Tag>, site: SiteId) -> Message {
        let t_post = self.clock;
        let post_rec = TraceRecord::basic(self.rank, EventKind::RecvPost, 0, t_post)
            .with_site(site)
            .with_args(
                src.map(|r| r.0 as i64).unwrap_or(-1),
                tag.map(|t| t.0 as i64).unwrap_or(-1),
            );
        self.observe(post_rec);
        self.request(Request::Recv {
            spec: MatchSpec::new(src, tag),
            t_post,
        });
        let (env, t_done) = match self.await_reply() {
            Reply::RecvDone { env, t_done } => (env, t_done),
            other => panic!("unexpected reply to recv: {other:?}"),
        };
        self.clock = t_done;
        let rec = TraceRecord::basic(self.rank, EventKind::RecvDone, 0, t_post)
            .with_span(t_post, t_done)
            .with_site(site)
            .with_msg(env.msg_info());
        self.observe(rec);
        env.into()
    }

    /// Exact-source receive, the common case.
    pub fn recv_from(&mut self, src: Rank, tag: Tag, site: SiteId) -> Message {
        self.recv(Some(src), Some(tag), site)
    }

    /// Wildcard-source receive (`MPI_ANY_SOURCE`) — nondeterministic, and
    /// therefore the construct replay must pin down.
    pub fn recv_any(&mut self, tag: Option<Tag>, site: SiteId) -> Message {
        self.recv(None, tag, site)
    }

    // ---- collectives ----

    fn collective(
        &mut self,
        kind: CollKind,
        root: Rank,
        payload: Payload,
        op: Option<ReduceOp>,
        site: SiteId,
    ) -> Payload {
        let t_enter = self.clock;
        self.request(Request::Collective {
            kind,
            root,
            payload,
            op,
            t_enter,
        });
        let (result, t_done) = match self.await_reply() {
            Reply::CollDone { result, t_done } => (result, t_done),
            other => panic!("unexpected reply to collective: {other:?}"),
        };
        self.clock = t_done;
        let rec = TraceRecord::basic(self.rank, EventKind::Collective(kind), 0, t_enter)
            .with_span(t_enter, t_done)
            .with_site(site)
            .with_msg(tracedbg_trace::MsgInfo {
                src: root,
                dst: self.rank,
                tag: Tag(-1),
                bytes: result.len() as u32,
                seq: 0,
            });
        self.observe(rec);
        result
    }

    pub fn barrier(&mut self, site: SiteId) {
        self.collective(CollKind::Barrier, Rank(0), Payload::empty(), None, site);
    }

    pub fn bcast(&mut self, root: Rank, payload: Payload, site: SiteId) -> Payload {
        self.collective(CollKind::Bcast, root, payload, None, site)
    }

    pub fn reduce(&mut self, root: Rank, op: ReduceOp, payload: Payload, site: SiteId) -> Payload {
        self.collective(CollKind::Reduce, root, payload, Some(op), site)
    }

    pub fn allreduce(&mut self, op: ReduceOp, payload: Payload, site: SiteId) -> Payload {
        self.collective(CollKind::AllReduce, Rank(0), payload, Some(op), site)
    }

    pub fn gather(&mut self, root: Rank, payload: Payload, site: SiteId) -> Payload {
        self.collective(CollKind::Gather, root, payload, None, site)
    }

    pub fn scatter(&mut self, root: Rank, payload: Payload, site: SiteId) -> Payload {
        self.collective(CollKind::Scatter, root, payload, None, site)
    }

    // ---- trace control ----

    /// On-demand flush of this process's trace buffer (§2.1's extension of
    /// the AIMS monitor).
    pub fn flush_trace(&mut self) {
        self.recorder.lock().flush_into(&self.flush);
    }

    /// Toggle trace collection for this process.
    pub fn set_tracing(&mut self, on: bool) {
        self.recorder.lock().set_tracing_enabled(on);
    }

    // ---- harness entry points (crate-internal) ----

    pub(crate) fn emit_proc_start(&mut self) {
        let rec = TraceRecord::basic(self.rank, EventKind::ProcStart, 0, self.clock);
        self.observe(rec);
    }

    pub(crate) fn emit_proc_end(&mut self) {
        let rec = TraceRecord::basic(self.rank, EventKind::ProcEnd, 0, self.clock);
        self.observe(rec);
    }

    pub(crate) fn wait_initial_grant(&self) {
        match self.await_reply() {
            Reply::Proceed => {}
            other => panic!("unexpected initial grant: {other:?}"),
        }
    }

    pub(crate) fn finish(&mut self) {
        let t_end = self.clock;
        self.request(Request::Finished { t_end });
    }

    pub(crate) fn report_panic(&self, message: String) {
        let _ = self.req_tx.send((self.rank, Request::Panicked { message }));
    }
}

/// Convenience macro: open an instrumented function scope.
///
/// ```ignore
/// fn_scope!(ctx, "MatrMult", [n as i64, 0], {
///     // body, with `ctx` rebound inside
/// })
/// ```
#[macro_export]
macro_rules! fn_scope {
    ($ctx:ident, $name:expr, [$a:expr, $b:expr], $body:expr) => {{
        let __site = $ctx.site(file!(), line!(), $name);
        $ctx.scope(__site, [($a) as i64, ($b) as i64], |$ctx| $body)
    }};
}

/// Convenience macro: record a probe with the current file/line.
#[macro_export]
macro_rules! probe {
    ($ctx:expr, $label:expr, $value:expr) => {{
        let __site = $ctx.site_here(file!(), line!());
        $ctx.probe($label, ($value) as i64, __site)
    }};
}
