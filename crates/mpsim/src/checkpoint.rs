//! Engine checkpoints: O(delta) replay for undo, stoplines and
//! prefix-shared exploration.
//!
//! The paper's §4.2 bounds replay cost with a "logarithmic backlog" of
//! saved states; [`EngineCheckpoint`] is that saved state for the
//! thread-backed engine. It captures everything the engine owns — process
//! state machines, mailboxes, sequence counters, collective state, the
//! scheduler (RNG + script cursor), the match recorder, replay cursors,
//! fault-plan progress, per-rank instrumentation recorders and the
//! decision log — plus two things that exist only for restoration:
//!
//! * the **reply log**: every [`crate::ops::Reply`] the engine granted,
//!   per rank, in order. Process *threads* cannot be snapshotted, so
//!   `Engine::restore` re-executes each program on a fresh thread and
//!   feeds it its recorded reply stream all at once; the thread
//!   fast-forwards to the snapshot point without a single engine
//!   round-trip, and all ranks fast-forward in parallel.
//! * the **trap history**: the markers at which each rank trapped, so the
//!   fast-forwarding process re-issues exactly the trap requests of the
//!   original run (keeping request/reply streams aligned).
//!
//! Determinism contract: a restored engine continued to the end produces
//! a byte-identical trace to the uncheckpointed run — the property the
//! `prop_checkpoint` suite pins, including under fault injection.

use crate::clock::CostModel;
use crate::collective::PendingCollective;
use crate::engine::ProcState;
use crate::fault::FaultPlan;
use crate::mailbox::Mailbox;
use crate::ops::Reply;
use crate::record::{MatchRecorder, ReplayLog};
use crate::sched::Scheduler;
use crate::task::TaskSnapshot;
use tracedbg_instrument::{Recorder, RecorderConfig};
use tracedbg_trace::schedule::DecisionPoint;
use tracedbg_trace::{MarkerVector, Rank, SiteTable, TraceRecord};

/// A full deterministic snapshot of a running [`crate::Engine`].
///
/// Cheap to take (clones of owned state, no thread interaction) and
/// self-contained: [`crate::Engine::restore`] rebuilds a live engine from
/// it and fresh program closures. Named `EngineCheckpoint` to keep it
/// distinct from the state-machine backend's `machine::Checkpoint`.
#[derive(Clone)]
pub struct EngineCheckpoint {
    pub(crate) n_ranks: usize,
    pub(crate) states: Vec<ProcState>,
    pub(crate) paused: Vec<bool>,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) send_seq: Vec<Vec<u64>>,
    pub(crate) scheduler: Scheduler,
    pub(crate) match_rec: MatchRecorder,
    pub(crate) replay: Option<ReplayLog>,
    pub(crate) recorders: Vec<Recorder>,
    pub(crate) recorder_cfg: RecorderConfig,
    pub(crate) sites: SiteTable,
    pub(crate) flush_pending: Vec<TraceRecord>,
    pub(crate) cost: CostModel,
    pub(crate) pending_coll: Option<PendingCollective>,
    pub(crate) collected: Vec<TraceRecord>,
    pub(crate) faults: FaultPlan,
    pub(crate) ops: Vec<u64>,
    pub(crate) decision_log: Vec<DecisionPoint>,
    pub(crate) reply_log: Vec<Vec<Reply>>,
    pub(crate) trap_history: Vec<Vec<u64>>,
    /// Frame snapshots of task-backed ranks (`None` for thread ranks).
    /// Restoring a task rank clones this — the reply log and trap history
    /// above exist only for thread ranks.
    pub(crate) tasks: Vec<Option<TaskSnapshot>>,
}

impl EngineCheckpoint {
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Execution markers at the snapshot point (the cache key the
    /// debugger's checkpoint cache dominates against).
    pub fn markers(&self) -> MarkerVector {
        let mut v = MarkerVector::zero(self.n_ranks);
        for (i, r) in self.recorders.iter().enumerate() {
            v.set(Rank(i as u32), r.marker());
        }
        v
    }

    /// Scheduling decisions taken before the snapshot (the explorer forks
    /// sibling schedules with the script cursor set to this length).
    pub fn decision_len(&self) -> usize {
        self.decision_log.len()
    }

    /// Receive matches recorded per rank at the snapshot point — where a
    /// replay log's cursors must stand so only the delta is pinned.
    pub fn match_counts(&self) -> Vec<usize> {
        (0..self.n_ranks)
            .map(|r| self.match_rec.matches_of(Rank(r as u32)).len())
            .collect()
    }

    /// Total granted replies captured — proportional to how much history a
    /// restore must fast-forward through.
    pub fn replies_len(&self) -> usize {
        self.reply_log.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineCheckpoint>();
    }
}
