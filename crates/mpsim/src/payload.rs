//! Message payloads.
//!
//! Payloads are opaque byte vectors (as they are to MPI); helpers cover the
//! element types the workloads use. All encodings are little-endian.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned message payload.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Payload(pub Vec<u8>);

impl Payload {
    pub fn empty() -> Self {
        Payload(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    // --- f64 slices (matrix blocks) ---

    pub fn from_f64s(v: &[f64]) -> Self {
        let mut b = Vec::with_capacity(v.len() * 8);
        for x in v {
            b.extend_from_slice(&x.to_le_bytes());
        }
        Payload(b)
    }

    /// Decode as a slice of f64; returns `None` if the length is not a
    /// multiple of 8.
    pub fn to_f64s(&self) -> Option<Vec<f64>> {
        if self.0.len() % 8 != 0 {
            return None;
        }
        Some(
            self.0
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }

    // --- i64 scalars / slices ---

    pub fn from_i64(x: i64) -> Self {
        Payload(x.to_le_bytes().to_vec())
    }

    pub fn to_i64(&self) -> Option<i64> {
        let arr: [u8; 8] = self.0.as_slice().try_into().ok()?;
        Some(i64::from_le_bytes(arr))
    }

    pub fn from_i64s(v: &[i64]) -> Self {
        let mut b = Vec::with_capacity(v.len() * 8);
        for x in v {
            b.extend_from_slice(&x.to_le_bytes());
        }
        Payload(b)
    }

    pub fn to_i64s(&self) -> Option<Vec<i64>> {
        if self.0.len() % 8 != 0 {
            return None;
        }
        Some(
            self.0
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }

    // --- strings ---

    pub fn from_str_(s: &str) -> Self {
        Payload(s.as_bytes().to_vec())
    }

    pub fn to_string_(&self) -> Option<String> {
        String::from_utf8(self.0.clone()).ok()
    }

    /// Split into `n` equal chunks (scatter); panics if not divisible.
    pub fn split_n(&self, n: usize) -> Vec<Payload> {
        assert!(n > 0);
        assert_eq!(
            self.0.len() % n,
            0,
            "payload of {} bytes not divisible into {} chunks",
            self.0.len(),
            n
        );
        let k = self.0.len() / n;
        (0..n)
            .map(|i| Payload(self.0[i * k..(i + 1) * k].to_vec()))
            .collect()
    }

    /// Concatenate chunks (gather).
    pub fn concat(parts: &[Payload]) -> Payload {
        let mut b = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            b.extend_from_slice(&p.0);
        }
        Payload(b)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, 1e300];
        let p = Payload::from_f64s(&v);
        assert_eq!(p.len(), 32);
        assert_eq!(p.to_f64s().unwrap(), v);
    }

    #[test]
    fn f64_bad_length() {
        let p = Payload(vec![0u8; 9]);
        assert!(p.to_f64s().is_none());
    }

    #[test]
    fn i64_roundtrip() {
        assert_eq!(Payload::from_i64(-42).to_i64(), Some(-42));
        assert_eq!(Payload::from_i64(i64::MAX).to_i64(), Some(i64::MAX));
        assert!(Payload(vec![1, 2]).to_i64().is_none());
        let v = vec![1i64, -5, 7];
        assert_eq!(Payload::from_i64s(&v).to_i64s().unwrap(), v);
    }

    #[test]
    fn string_roundtrip() {
        let p = Payload::from_str_("hello world");
        assert_eq!(p.to_string_().unwrap(), "hello world");
    }

    #[test]
    fn split_and_concat() {
        let p = Payload::from_i64s(&[1, 2, 3, 4]);
        let parts = p.split_n(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[2].to_i64(), Some(3));
        assert_eq!(Payload::concat(&parts), p);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn split_indivisible_panics() {
        Payload(vec![0u8; 10]).split_n(3);
    }
}
