//! Collective operations, implemented natively in the engine.
//!
//! Each process enters the collective with its contribution; when all `n`
//! ranks have arrived the engine computes per-rank results and releases
//! everyone at the synchronized completion time. Collectives are traced as
//! single constructs (one record per participant), matching how AIMS
//! displayed them.

use crate::payload::Payload;
use serde::{Deserialize, Serialize};
use tracedbg_trace::{CollKind, Rank};

/// Reduction operators over f64 element vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl ReduceOp {
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }
}

/// One rank's pending entry into a collective.
#[derive(Clone, Debug)]
pub struct CollEntry {
    pub rank: Rank,
    pub payload: Payload,
    pub t_enter: u64,
}

/// An in-progress collective: buffers entries until all ranks arrive.
#[derive(Clone, Debug)]
pub struct PendingCollective {
    pub kind: CollKind,
    pub root: Rank,
    pub op: Option<ReduceOp>,
    pub entries: Vec<Option<CollEntry>>,
    pub arrived: usize,
}

impl PendingCollective {
    pub fn new(kind: CollKind, root: Rank, op: Option<ReduceOp>, n: usize) -> Self {
        PendingCollective {
            kind,
            root,
            op,
            entries: (0..n).map(|_| None).collect(),
            arrived: 0,
        }
    }

    /// Add a participant; returns `true` when the collective is complete.
    pub fn join(&mut self, e: CollEntry) -> bool {
        let ix = e.rank.ix();
        assert!(
            self.entries[ix].is_none(),
            "{:?} entered collective twice",
            e.rank
        );
        self.entries[ix] = Some(e);
        self.arrived += 1;
        self.arrived == self.entries.len()
    }

    /// Completion time: all participants synchronize at the latest entry
    /// (plus a fixed synchronization cost supplied by the caller).
    pub fn completion_time(&self, sync_cost: u64) -> u64 {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.t_enter)
            .max()
            .unwrap_or(0)
            + sync_cost
    }

    /// Compute each rank's result payload. Panics if called before all
    /// ranks arrived.
    pub fn results(&self) -> Vec<Payload> {
        assert_eq!(self.arrived, self.entries.len());
        let n = self.entries.len();
        let payload_of = |r: usize| -> &Payload { &self.entries[r].as_ref().unwrap().payload };
        match self.kind {
            CollKind::Barrier => (0..n).map(|_| Payload::empty()).collect(),
            CollKind::Bcast => {
                let root = payload_of(self.root.ix()).clone();
                (0..n).map(|_| root.clone()).collect()
            }
            CollKind::Reduce | CollKind::AllReduce => {
                let op = self.op.expect("reduce requires an operator");
                let vecs: Vec<Vec<f64>> = (0..n)
                    .map(|r| {
                        payload_of(r)
                            .to_f64s()
                            .expect("reduce payloads must be f64 vectors")
                    })
                    .collect();
                let len = vecs.first().map(|v| v.len()).unwrap_or(0);
                assert!(
                    vecs.iter().all(|v| v.len() == len),
                    "reduce contributions must have equal length"
                );
                let mut acc = vec![op.identity(); len];
                for v in &vecs {
                    for (a, x) in acc.iter_mut().zip(v) {
                        *a = op.apply(*a, *x);
                    }
                }
                let result = Payload::from_f64s(&acc);
                match self.kind {
                    CollKind::Reduce => (0..n)
                        .map(|r| {
                            if r == self.root.ix() {
                                result.clone()
                            } else {
                                Payload::empty()
                            }
                        })
                        .collect(),
                    _ => (0..n).map(|_| result.clone()).collect(),
                }
            }
            CollKind::Gather => {
                let parts: Vec<Payload> = (0..n).map(|r| payload_of(r).clone()).collect();
                let all = Payload::concat(&parts);
                (0..n)
                    .map(|r| {
                        if r == self.root.ix() {
                            all.clone()
                        } else {
                            Payload::empty()
                        }
                    })
                    .collect()
            }
            CollKind::Scatter => payload_of(self.root.ix()).split_n(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rank: u32, payload: Payload, t: u64) -> CollEntry {
        CollEntry {
            rank: Rank(rank),
            payload,
            t_enter: t,
        }
    }

    fn run(
        kind: CollKind,
        root: u32,
        op: Option<ReduceOp>,
        payloads: Vec<Payload>,
    ) -> Vec<Payload> {
        let n = payloads.len();
        let mut pc = PendingCollective::new(kind, Rank(root), op, n);
        for (i, p) in payloads.into_iter().enumerate() {
            let done = pc.join(entry(i as u32, p, (i as u64 + 1) * 10));
            assert_eq!(done, i == n - 1);
        }
        pc.results()
    }

    #[test]
    fn barrier_empty_results() {
        let res = run(CollKind::Barrier, 0, None, vec![Payload::empty(); 3]);
        assert!(res.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn bcast_copies_root() {
        let res = run(
            CollKind::Bcast,
            1,
            None,
            vec![Payload::empty(), Payload::from_i64(42), Payload::empty()],
        );
        assert!(res.iter().all(|p| p.to_i64() == Some(42)));
    }

    #[test]
    fn reduce_sum_to_root_only() {
        let res = run(
            CollKind::Reduce,
            0,
            Some(ReduceOp::Sum),
            vec![
                Payload::from_f64s(&[1.0, 2.0]),
                Payload::from_f64s(&[10.0, 20.0]),
            ],
        );
        assert_eq!(res[0].to_f64s().unwrap(), vec![11.0, 22.0]);
        assert!(res[1].is_empty());
    }

    #[test]
    fn allreduce_max_everywhere() {
        let res = run(
            CollKind::AllReduce,
            0,
            Some(ReduceOp::Max),
            vec![
                Payload::from_f64s(&[1.0, 9.0]),
                Payload::from_f64s(&[5.0, 2.0]),
            ],
        );
        for p in &res {
            assert_eq!(p.to_f64s().unwrap(), vec![5.0, 9.0]);
        }
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let res = run(
            CollKind::Gather,
            1,
            None,
            vec![
                Payload::from_i64(1),
                Payload::from_i64(2),
                Payload::from_i64(3),
            ],
        );
        assert!(res[0].is_empty());
        assert_eq!(res[1].to_i64s().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn scatter_splits_root_payload() {
        let res = run(
            CollKind::Scatter,
            0,
            None,
            vec![Payload::from_i64s(&[7, 8]), Payload::empty()],
        );
        assert_eq!(res[0].to_i64(), Some(7));
        assert_eq!(res[1].to_i64(), Some(8));
    }

    #[test]
    fn completion_time_is_last_arrival_plus_cost() {
        let mut pc = PendingCollective::new(CollKind::Barrier, Rank(0), None, 2);
        pc.join(entry(0, Payload::empty(), 5));
        pc.join(entry(1, Payload::empty(), 50));
        assert_eq!(pc.completion_time(3), 53);
    }

    #[test]
    fn reduce_ops_math() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Sum.identity(), 0.0);
        assert_eq!(ReduceOp::Prod.identity(), 1.0);
    }
}
