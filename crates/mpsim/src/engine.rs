//! The turn-taking engine.
//!
//! The engine owns every shared structure of a run (mailboxes, sequence
//! counters, collective state, the match recorder) and grants execution to
//! exactly one process at a time. A granted process runs until its next
//! runtime operation, submits a [`Request`] and blocks; the engine services
//! the request and schedules the next turn. Because scheduling decisions
//! are a pure function of (program, policy seed, replay log), the run is
//! controlled — restarting it with the same inputs regenerates the same
//! execution, which is the foundation of the paper's replay, stopline and
//! *undo* operations.

use crate::checkpoint::EngineCheckpoint;
use crate::clock::CostModel;
use crate::collective::{CollEntry, PendingCollective};
use crate::deadlock::DeadlockReport;
use crate::fault::{FaultKind, FaultPlan};
use crate::mailbox::Mailbox;
use crate::message::{Envelope, MatchSpec};
use crate::ops::{Reply, Request, SendMode, ShutdownSignal};
use crate::proc::{ProcessCtx, ProgramFn};
use crate::record::{MatchRecorder, RecordedMatch, ReplayLog};
use crate::sched::{SchedPolicy, Scheduler};
use crate::task::{Prog, TaskHarness, TaskInterp, TaskProgram};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use tracedbg_instrument::{Recorder, RecorderConfig};
use tracedbg_obs::{EngineMetrics, FlightRecorder, Span, SpanKind};
use tracedbg_trace::schedule::{Decision, DecisionPoint};
use tracedbg_trace::{FlushHandle, Marker, MarkerVector, Rank, SiteTable, TraceRecord, TraceStore};

/// Engine construction parameters.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    pub cost: CostModel,
    pub policy: SchedPolicy,
    pub recorder: RecorderConfig,
    /// Force receive matches from a previous run (§4.2 replay).
    pub replay: Option<ReplayLog>,
    /// Share a site table across engine incarnations so source-location
    /// ids stay stable between a recording run and its replays (the
    /// debugger's breakpoints and trace comparisons depend on this).
    pub sites: Option<SiteTable>,
    /// Faults to inject into this run (explorer fault plane).
    pub faults: FaultPlan,
    /// Record the per-rank reply streams and trap history needed to take
    /// [`EngineCheckpoint`]s. Off by default: the reply log deep-copies
    /// message payloads on the grant path, which the engine benches must
    /// not pay unless checkpointing is actually wanted.
    pub checkpoints: bool,
    /// Collect per-rank/per-channel [`EngineMetrics`] and a flight-recorder
    /// span ring during the run. Off by default; when off the engine holds
    /// no telemetry state and every collection site is a single
    /// `Option` check.
    pub metrics: bool,
}

impl EngineConfig {
    pub fn with_recorder(recorder: RecorderConfig) -> Self {
        EngineConfig {
            recorder,
            ..Default::default()
        }
    }
}

/// Why `Engine::run` returned.
#[derive(Debug)]
pub enum RunOutcome {
    /// Every process finished.
    Completed,
    /// No process can make progress (the Figure 5 situation).
    Deadlock(DeadlockReport),
    /// One or more processes hit debugger traps / pauses.
    Stopped(StopReason),
    /// A process panicked.
    Panicked { rank: Rank, message: String },
}

impl RunOutcome {
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    pub fn is_deadlock(&self) -> bool {
        matches!(self, RunOutcome::Deadlock(_))
    }

    pub fn is_stopped(&self) -> bool {
        matches!(self, RunOutcome::Stopped(_))
    }
}

/// Details of a debugger stop.
#[derive(Debug, Clone)]
pub struct StopReason {
    /// Processes stopped at fired marker thresholds.
    pub traps: Vec<Marker>,
    /// Processes paused by an explicit debugger pause.
    pub paused: Vec<Rank>,
}

#[derive(Clone, Debug)]
pub(crate) enum ProcState {
    /// Waiting for a turn; the reply to deliver when granted.
    Ready(Reply),
    /// Currently holding the turn (engine is waiting for its request).
    Running,
    /// Blocked in a receive.
    Blocked {
        spec: MatchSpec,
        t_post: u64,
        marker: u64,
    },
    /// Blocked in a synchronous send to `dst`, waiting for the rendezvous.
    BlockedSend {
        dst: Rank,
        marker: u64,
    },
    /// Waiting inside a collective.
    InCollective,
    /// Stopped at a fired marker threshold.
    Trapped {
        marker: u64,
    },
    /// Silenced by an injected fault: the process submitted a request that
    /// was swallowed and will never be granted another turn.
    Faulted(FaultKind),
    Finished,
    Panicked(String),
}

/// The engine's telemetry plane (present only when
/// `EngineConfig::metrics` is on). Everything in `metrics` derives from
/// the executed event sequence alone; `snapshot_ns` is the one wall-clock
/// fact and is surfaced separately through [`Engine::snapshot_ns`].
struct EngineObs {
    metrics: EngineMetrics,
    flight: FlightRecorder,
    /// `turn_count` at the moment each rank posted its pending receive —
    /// the subtrahend of the match-latency computation.
    block_turn: Vec<Option<u64>>,
    /// Scheduler turns granted so far (the logical clock blocked-turn
    /// accounting runs on).
    turn_count: u64,
    /// Wall-clock nanoseconds spent inside [`Engine::snapshot`].
    snapshot_ns: u64,
}

impl EngineObs {
    fn new(n: usize) -> Box<Self> {
        Box::new(EngineObs {
            metrics: EngineMetrics::new(n),
            flight: FlightRecorder::new(),
            block_turn: vec![None; n],
            turn_count: 0,
            snapshot_ns: 0,
        })
    }

    /// Record a flight span and keep the exact overflow count visible in
    /// the metrics (so `MetricsReport` consumers never have to parse the
    /// dump's "... N earlier spans dropped" text note).
    fn record_span(&mut self, span: Span) {
        self.flight.record(span);
        self.metrics.flight_dropped = self.flight.dropped();
    }
}

/// How one rank executes: the legacy OS thread running a `ProcessCtx`
/// closure, or a resumable task stepped inline on the engine thread.
///
/// Thread ranks pay a channel round-trip per grant and respawn +
/// fast-forward on restore; task ranks cost a struct, are granted by a
/// direct call, and restore by cloning their frame snapshot.
enum Backend {
    Thread {
        reply_tx: Sender<Reply>,
        handle: Option<JoinHandle<()>>,
    },
    Task(TaskHarness),
}

impl Backend {
    fn is_thread(&self) -> bool {
        matches!(self, Backend::Thread { .. })
    }
}

/// A rank's program, in either execution form. `Vec<ProgramFn>` call
/// sites keep working through the `From` impl; task ranks are built with
/// [`RankProgram::task`] or from any [`TaskProgram`] box.
pub enum RankProgram {
    /// A thread-backed `ProcessCtx` closure (the legacy backend).
    Thread(ProgramFn),
    /// A resumable state-machine task.
    Task(Box<dyn TaskProgram>),
}

impl RankProgram {
    /// A task rank from a [`Prog`] tree and its initial state.
    pub fn task<S: Clone + Send + Sync + 'static>(state: S, prog: Prog<S>) -> Self {
        RankProgram::Task(Box::new(TaskInterp::new(state, prog)))
    }
}

impl From<ProgramFn> for RankProgram {
    fn from(f: ProgramFn) -> Self {
        RankProgram::Thread(f)
    }
}

impl From<Box<dyn TaskProgram>> for RankProgram {
    fn from(t: Box<dyn TaskProgram>) -> Self {
        RankProgram::Task(t)
    }
}

/// A complete simulated run.
pub struct Engine {
    states: Vec<ProcState>,
    paused: Vec<bool>,
    backends: Vec<Backend>,
    req_rx: Receiver<(Rank, Request)>,
    mailboxes: Vec<Mailbox>,
    /// `send_seq[src][dst]`: next sequence number on that channel.
    send_seq: Vec<Vec<u64>>,
    scheduler: Scheduler,
    match_rec: MatchRecorder,
    replay: Option<ReplayLog>,
    recorders: Vec<Arc<Mutex<Recorder>>>,
    sites: SiteTable,
    flush: FlushHandle,
    cost: CostModel,
    pending_coll: Option<PendingCollective>,
    n_ranks: usize,
    /// Trace records collected from finished/flushed buffers.
    collected: Vec<TraceRecord>,
    faults: FaultPlan,
    /// Runtime operations (send/recv/collective) submitted per rank, for
    /// fault thresholds.
    ops: Vec<u64>,
    /// Every scheduling decision of this run with its alternatives — the
    /// raw material of schedule artifacts and systematic exploration.
    decision_log: Vec<DecisionPoint>,
    /// Checkpoint plane (all inert unless `checkpoints` is on).
    checkpoints: bool,
    recorder_cfg: RecorderConfig,
    /// Every reply granted, per rank, in grant order (including the
    /// initial `Proceed`) — the restore fast-forward script.
    reply_log: Vec<Vec<Reply>>,
    /// Markers at which each rank trapped, in order.
    trap_history: Vec<Vec<u64>>,
    /// Take a snapshot when the decision log reaches this length.
    snapshot_at_decision: Option<usize>,
    pending_snapshot: Option<Box<EngineCheckpoint>>,
    /// Telemetry plane; `None` unless metrics collection is on.
    obs: Option<Box<EngineObs>>,
}

impl Engine {
    /// Launch `programs` (one per rank) under `config`. Processes start
    /// ready but do not run until [`Engine::run`]. Accepts any mix of
    /// thread closures ([`ProgramFn`]) and resumable tasks
    /// ([`RankProgram::Task`]).
    pub fn launch<P: Into<RankProgram>>(config: EngineConfig, programs: Vec<P>) -> Self {
        install_quiet_shutdown_hook();
        let n = programs.len();
        assert!(n > 0, "need at least one process");
        let sites = config.sites.clone().unwrap_or_default();
        let flush = FlushHandle::new();
        let (req_tx, req_rx) = unbounded::<(Rank, Request)>();
        let mut backends = Vec::with_capacity(n);
        let mut recorders = Vec::with_capacity(n);
        let mut replay = config.replay;
        if let Some(log) = replay.as_mut() {
            log.reset();
        }
        for (i, program) in programs.into_iter().enumerate() {
            let rank = Rank(i as u32);
            let recorder = Arc::new(Mutex::new(Recorder::new(rank, config.recorder.clone())));
            let backend = match program.into() {
                RankProgram::Thread(program) => {
                    let (reply_tx, reply_rx) = unbounded::<Reply>();
                    let ctx = ProcessCtx::new(
                        rank,
                        n,
                        config.cost,
                        sites.clone(),
                        Arc::clone(&recorder),
                        req_tx.clone(),
                        reply_rx,
                        flush.clone(),
                    );
                    Backend::Thread {
                        reply_tx,
                        handle: Some(spawn_process(i, program, ctx)),
                    }
                }
                RankProgram::Task(task) => Backend::Task(TaskHarness::new(
                    rank,
                    n,
                    config.cost,
                    sites.clone(),
                    Arc::clone(&recorder),
                    flush.clone(),
                    task,
                )),
            };
            recorders.push(recorder);
            backends.push(backend);
        }
        Engine {
            states: (0..n).map(|_| ProcState::Ready(Reply::Proceed)).collect(),
            paused: vec![false; n],
            backends,
            req_rx,
            mailboxes: (0..n).map(|_| Mailbox::new(n)).collect(),
            send_seq: vec![vec![0; n]; n],
            scheduler: Scheduler::new(&config.policy, n),
            match_rec: MatchRecorder::new(n),
            replay,
            recorders,
            sites,
            flush,
            cost: config.cost,
            pending_coll: None,
            n_ranks: n,
            collected: Vec::new(),
            faults: config.faults,
            ops: vec![0; n],
            decision_log: Vec::new(),
            checkpoints: config.checkpoints,
            recorder_cfg: config.recorder,
            reply_log: vec![Vec::new(); n],
            trap_history: vec![Vec::new(); n],
            snapshot_at_decision: None,
            pending_snapshot: None,
            obs: config.metrics.then(|| EngineObs::new(n)),
        }
    }

    /// Rebuild a live engine from a checkpoint and fresh program closures
    /// (the same programs the checkpointed engine was launched with —
    /// determinism of the restore depends on it).
    ///
    /// Task ranks restore by cloning their checkpointed frame snapshot —
    /// no respawn, no fast-forward, no reply traffic. Threads cannot be
    /// snapshotted, so each thread rank's program is re-executed on a
    /// fresh thread against its recorded reply stream, preloaded in full:
    /// every rank fast-forwards to the snapshot point in parallel, with no
    /// engine round-trips, no scheduling, no mailbox work and no trace
    /// buffering. The engine only drains (and discards) the re-issued
    /// requests, then installs the checkpointed state wholesale. Restored
    /// engines keep checkpointing enabled, so checkpoints chain.
    pub fn restore<P: Into<RankProgram>>(cp: &EngineCheckpoint, programs: Vec<P>) -> Self {
        install_quiet_shutdown_hook();
        let n = cp.n_ranks;
        assert_eq!(programs.len(), n, "restore needs one program per rank");
        let sites = cp.sites.clone();
        let flush = FlushHandle::new();
        flush.accept(cp.flush_pending.clone());
        let (req_tx, req_rx) = unbounded::<(Rank, Request)>();
        let mut backends = Vec::with_capacity(n);
        let mut recorders = Vec::with_capacity(n);
        for (i, program) in programs.into_iter().enumerate() {
            let rank = Rank(i as u32);
            if let Some(snap) = &cp.tasks[i] {
                // Task rank: the snapshot *is* the process state; the
                // program argument is only a launch recipe and is unused.
                let recorder = Arc::new(Mutex::new(cp.recorders[i].clone()));
                let harness = TaskHarness::restore(
                    snap,
                    rank,
                    n,
                    cp.cost,
                    sites.clone(),
                    Arc::clone(&recorder),
                    flush.clone(),
                );
                recorders.push(recorder);
                backends.push(Backend::Task(harness));
                continue;
            }
            let RankProgram::Thread(program) = program.into() else {
                panic!("rank {i}: checkpoint holds a thread rank; restore got a task program");
            };
            let (reply_tx, reply_rx) = unbounded::<Reply>();
            let recorder = Arc::new(Mutex::new(Recorder::fast_forward(
                rank,
                cp.recorder_cfg.clone(),
                cp.trap_history[i].clone(),
            )));
            let ctx = ProcessCtx::new(
                rank,
                n,
                cp.cost,
                sites.clone(),
                Arc::clone(&recorder),
                req_tx.clone(),
                reply_rx,
                flush.clone(),
            );
            let handle = spawn_process(i, program, ctx);
            // Preload the whole recorded reply stream: the thread replays
            // against it without ever waiting on the engine.
            for reply in &cp.reply_log[i] {
                reply_tx.send(reply.clone()).expect("preload reply stream");
            }
            recorders.push(recorder);
            backends.push(Backend::Thread {
                reply_tx,
                handle: Some(handle),
            });
        }
        // A thread that consumes R preloaded replies makes exactly R
        // requests before parking (or exiting): at every engine-rest point
        // requests-made equals replies-granted for every rank, in every
        // state. Drain exactly that many, discarding contents — the
        // checkpointed engine state already reflects having serviced them.
        // (Task ranks log no replies, so they contribute zero here.)
        let want: Vec<usize> = cp.reply_log.iter().map(|v| v.len()).collect();
        let mut seen = vec![0usize; n];
        for _ in 0..want.iter().sum::<usize>() {
            let (rank, _req) = req_rx.recv().expect("fast-forward request stream");
            seen[rank.ix()] += 1;
            assert!(
                seen[rank.ix()] <= want[rank.ix()],
                "{rank:?} overran its recorded history during fast-forward"
            );
        }
        // Self-check, then swap the checkpointed recorder state in over
        // the fast-forward recorders (threads keep their Arc handles).
        for (i, arc) in recorders.iter().enumerate() {
            if cp.tasks[i].is_some() {
                continue; // task recorders are already exact clones
            }
            let mut g = arc.lock();
            assert_eq!(g.ff_pending(), 0, "rank {i}: scripted traps left over");
            assert_eq!(
                g.marker(),
                cp.recorders[i].marker(),
                "rank {i}: marker mismatch after fast-forward"
            );
            *g = cp.recorders[i].clone();
        }
        Engine {
            states: cp.states.clone(),
            paused: cp.paused.clone(),
            backends,
            req_rx,
            mailboxes: cp.mailboxes.clone(),
            send_seq: cp.send_seq.clone(),
            scheduler: cp.scheduler.clone(),
            match_rec: cp.match_rec.clone(),
            replay: cp.replay.clone(),
            recorders,
            sites,
            flush,
            cost: cp.cost,
            pending_coll: cp.pending_coll.clone(),
            n_ranks: n,
            collected: cp.collected.clone(),
            faults: cp.faults.clone(),
            ops: cp.ops.clone(),
            decision_log: cp.decision_log.clone(),
            checkpoints: true,
            recorder_cfg: cp.recorder_cfg.clone(),
            reply_log: cp.reply_log.clone(),
            trap_history: cp.trap_history.clone(),
            snapshot_at_decision: None,
            pending_snapshot: None,
            // Checkpoints carry no telemetry: a restored engine's metrics
            // would cover only its own incarnation. Callers that want
            // telemetry after a restore opt back in via `enable_metrics`.
            obs: None,
        }
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Run until completion, deadlock, panic, or a debugger stop.
    pub fn run(&mut self) -> RunOutcome {
        // Re-deliver any receive that was mid-match when a checkpoint was
        // taken (a snapshot can land between a match becoming possible and
        // its decision being committed). In an uncheckpointed engine this
        // sweep is a provable no-op: at every rest point a blocked receive
        // with candidates has already been delivered.
        for r in 0..self.n_ranks {
            self.try_match(Rank(r as u32));
        }
        loop {
            let runnable: Vec<Rank> = self
                .states
                .iter()
                .enumerate()
                .filter(|(i, s)| matches!(s, ProcState::Ready(_)) && !self.paused[*i])
                .map(|(i, _)| Rank(i as u32))
                .collect();
            if runnable.is_empty() {
                return self.stall_outcome();
            }
            self.maybe_snapshot();
            let p = self.scheduler.pick(&runnable);
            self.decision_log.push(DecisionPoint {
                chosen: Decision::Turn { rank: p },
                alternatives: runnable
                    .iter()
                    .map(|&r| Decision::Turn { rank: r })
                    .collect(),
            });
            if let Some(o) = self.obs.as_mut() {
                o.turn_count += 1;
                o.metrics.turns += 1;
                o.record_span(Span {
                    decision: self.decision_log.len() as u64,
                    sim_time: 0,
                    kind: SpanKind::Turn,
                    a: p.0 as u64,
                    b: 0,
                    c: 0,
                });
            }
            let reply = match std::mem::replace(&mut self.states[p.ix()], ProcState::Running) {
                ProcState::Ready(r) => r,
                other => unreachable!("granted non-ready process in state {other:?}"),
            };
            if self.checkpoints && self.backends[p.ix()].is_thread() {
                // Only thread ranks need a reply log: a task rank restores
                // from its frame snapshot, not by re-feeding replies.
                self.reply_log[p.ix()].push(reply.clone());
            }
            let (rank, req) = match &mut self.backends[p.ix()] {
                Backend::Thread { reply_tx, .. } => {
                    reply_tx.send(reply).expect("process thread vanished");
                    self.req_rx.recv().expect("request channel closed")
                }
                // Task rank: step it inline — no channels, no context
                // switch; the grant is a function call.
                Backend::Task(harness) => (p, harness.resume(reply)),
            };
            debug_assert_eq!(rank, p, "request from a process without the turn");
            self.service(rank, req);
        }
    }

    /// Classify the no-runnable-process situation.
    fn stall_outcome(&mut self) -> RunOutcome {
        if let Some((i, msg)) = self.states.iter().enumerate().find_map(|(i, s)| match s {
            ProcState::Panicked(m) => Some((i, m.clone())),
            _ => None,
        }) {
            return RunOutcome::Panicked {
                rank: Rank(i as u32),
                message: msg,
            };
        }
        // A crash-faulted process counts as gone: the fault itself is not a
        // violation; what matters is whether the peers could still finish.
        // A hang-faulted process, by contrast, keeps the run incomplete.
        if self.states.iter().all(|s| {
            matches!(
                s,
                ProcState::Finished | ProcState::Faulted(FaultKind::Crash)
            )
        }) {
            return RunOutcome::Completed;
        }
        let traps: Vec<Marker> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ProcState::Trapped { marker } => Some(Marker::new(i as u32, *marker)),
                _ => None,
            })
            .collect();
        let paused: Vec<Rank> = self
            .paused
            .iter()
            .enumerate()
            .filter(|(i, p)| **p && matches!(self.states[*i], ProcState::Ready(_)))
            .map(|(i, _)| Rank(i as u32))
            .collect();
        if !traps.is_empty() || !paused.is_empty() {
            return RunOutcome::Stopped(StopReason { traps, paused });
        }
        // Genuine stall: everyone is blocked, in a collective, or finished.
        let blocked: Vec<(Rank, MatchSpec, u64)> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ProcState::Blocked { spec, marker, .. } => Some((Rank(i as u32), *spec, *marker)),
                ProcState::BlockedSend { dst, marker } => {
                    Some((Rank(i as u32), MatchSpec::new(Some(*dst), None), *marker))
                }
                ProcState::InCollective => Some((Rank(i as u32), MatchSpec::any(), 0)),
                // A hung process shows up as an orphan wait so the report
                // names it; a crashed one is simply absent.
                ProcState::Faulted(FaultKind::Hang) => Some((Rank(i as u32), MatchSpec::any(), 0)),
                _ => None,
            })
            .collect();
        RunOutcome::Deadlock(DeadlockReport::analyze(&blocked))
    }

    fn service(&mut self, rank: Rank, req: Request) {
        // Fault plane: runtime operations count toward the process's
        // silence threshold; the operation that crosses it is swallowed and
        // the process never runs again. Peers observe only the silence.
        if matches!(
            req,
            Request::Send { .. } | Request::Recv { .. } | Request::Collective { .. }
        ) {
            self.ops[rank.ix()] += 1;
            if let Some((after_ops, kind)) = self.faults.silence_for(rank) {
                if self.ops[rank.ix()] > after_ops {
                    self.states[rank.ix()] = ProcState::Faulted(kind);
                    if let Some(o) = self.obs.as_mut() {
                        // The process already emitted its RecvPost trace
                        // record before asking for service, so the swallowed
                        // post still counts: metrics mirror the trace, not
                        // the engine's private view. (A swallowed send left
                        // no trace record — the Send record is written only
                        // after SendDone — so sends need no such credit.)
                        if matches!(req, Request::Recv { .. }) {
                            o.metrics.recvs[rank.ix()] += 1;
                        }
                        o.record_span(Span {
                            decision: self.decision_log.len() as u64,
                            sim_time: 0,
                            kind: SpanKind::Fault,
                            a: rank.0 as u64,
                            b: self.ops[rank.ix()],
                            c: 0,
                        });
                    }
                    return;
                }
            }
        }
        match req {
            Request::Send {
                dst,
                tag,
                payload,
                t0,
                send_marker,
                site,
                mode,
            } => {
                let seq = self.send_seq[rank.ix()][dst.ix()];
                self.send_seq[rank.ix()][dst.ix()] += 1;
                let t_done = self.cost.send_done(t0);
                let bytes = payload.len() as u64;
                let arrival =
                    self.cost.arrival(t_done, payload.len()) + self.faults.delay(rank, dst, seq);
                let env = Envelope {
                    src: rank,
                    dst,
                    tag,
                    seq,
                    arrival,
                    send_marker,
                    send_site: site,
                    synchronous: mode == SendMode::Synchronous,
                    payload,
                };
                self.mailboxes[dst.ix()].push(env);
                let depth = self.mailboxes[dst.ix()].pending() as u64;
                if let Some(o) = self.obs.as_mut() {
                    o.metrics.msgs_sent[rank.ix()] += 1;
                    o.metrics.bytes_sent[rank.ix()] += bytes;
                    o.metrics.channel_msgs[rank.ix()][dst.ix()] += 1;
                    o.metrics.channel_bytes[rank.ix()][dst.ix()] += bytes;
                    let hwm = &mut o.metrics.queue_hwm[dst.ix()];
                    *hwm = (*hwm).max(depth);
                }
                self.states[rank.ix()] = match mode {
                    SendMode::Buffered => ProcState::Ready(Reply::SendDone { seq, t_done }),
                    SendMode::Synchronous => ProcState::BlockedSend {
                        dst,
                        marker: send_marker,
                    },
                };
                self.try_match(dst);
            }
            Request::Recv { mut spec, t_post } => {
                // Replay pinning: narrow this receive to the recorded match.
                if let Some(log) = self.replay.as_mut() {
                    if let Some(m) = log.next_for(rank) {
                        spec.forced = Some((m.src, m.seq));
                    }
                }
                let marker = self.recorders[rank.ix()].lock().marker();
                self.states[rank.ix()] = ProcState::Blocked {
                    spec,
                    t_post,
                    marker,
                };
                if let Some(o) = self.obs.as_mut() {
                    o.metrics.recvs[rank.ix()] += 1;
                    o.block_turn[rank.ix()] = Some(o.turn_count);
                }
                self.try_match(rank);
                // Still blocked: log the wait the flight recorder will show
                // if the run never delivers it (the deadlock picture).
                let decision = self.decision_log.len() as u64;
                if let (Some(o), ProcState::Blocked { spec, t_post, .. }) =
                    (self.obs.as_mut(), &self.states[rank.ix()])
                {
                    let from = spec.src.map_or(u64::MAX, |s| s.0 as u64);
                    o.record_span(Span {
                        decision,
                        sim_time: *t_post,
                        kind: SpanKind::Block,
                        a: rank.0 as u64,
                        b: from,
                        c: 0,
                    });
                }
            }
            Request::Collective {
                kind,
                root,
                payload,
                op,
                t_enter,
            } => {
                let pc = self
                    .pending_coll
                    .get_or_insert_with(|| PendingCollective::new(kind, root, op, self.n_ranks));
                assert_eq!(
                    pc.kind, kind,
                    "collective mismatch: {:?} entered {kind:?} while {:?} in progress",
                    rank, pc.kind
                );
                self.states[rank.ix()] = ProcState::InCollective;
                let complete = pc.join(CollEntry {
                    rank,
                    payload,
                    t_enter,
                });
                if complete {
                    let pc = self.pending_coll.take().unwrap();
                    let t_done = pc.completion_time(self.cost.latency);
                    let results = pc.results();
                    for (i, result) in results.into_iter().enumerate() {
                        self.states[i] = ProcState::Ready(Reply::CollDone { result, t_done });
                    }
                }
            }
            Request::MarkerTrap { marker } => {
                if self.checkpoints && self.backends[rank.ix()].is_thread() {
                    self.trap_history[rank.ix()].push(marker);
                }
                self.states[rank.ix()] = ProcState::Trapped { marker };
                if let Some(o) = self.obs.as_mut() {
                    o.record_span(Span {
                        decision: self.decision_log.len() as u64,
                        sim_time: 0,
                        kind: SpanKind::Trap,
                        a: rank.0 as u64,
                        b: marker,
                        c: 0,
                    });
                }
            }
            Request::Finished { .. } => {
                self.states[rank.ix()] = ProcState::Finished;
                // Collect the finished process's trace immediately.
                let recs = self.recorders[rank.ix()].lock().take_records();
                self.flush.tee_records(&recs);
                self.collected.extend(recs);
            }
            Request::Panicked { message } => {
                self.states[rank.ix()] = ProcState::Panicked(message);
                if let Some(o) = self.obs.as_mut() {
                    o.record_span(Span {
                        decision: self.decision_log.len() as u64,
                        sim_time: 0,
                        kind: SpanKind::Panic,
                        a: rank.0 as u64,
                        b: 0,
                        c: 0,
                    });
                }
            }
        }
    }

    /// If `dst` is blocked in a receive that can now match, deliver.
    fn try_match(&mut self, dst: Rank) {
        let (spec, t_post) = match &self.states[dst.ix()] {
            ProcState::Blocked { spec, t_post, .. } => (*spec, *t_post),
            _ => return,
        };
        let candidates = self.mailboxes[dst.ix()].candidates(&spec);
        if candidates.is_empty() {
            return;
        }
        self.maybe_snapshot();
        let pick = self.scheduler.pick_candidate(dst, &candidates);
        self.decision_log.push(DecisionPoint {
            chosen: Decision::Match {
                dst,
                src: candidates[pick].src,
                seq: candidates[pick].seq,
            },
            alternatives: candidates
                .iter()
                .map(|c| Decision::Match {
                    dst,
                    src: c.src,
                    seq: c.seq,
                })
                .collect(),
        });
        let env = self.mailboxes[dst.ix()].take(candidates[pick]);
        self.match_rec.record(
            dst,
            RecordedMatch {
                src: env.src,
                tag: env.tag,
                seq: env.seq,
            },
        );
        let t_done = self.cost.recv_done(t_post, env.arrival);
        if let Some(o) = self.obs.as_mut() {
            // Latency in turns since the receive was posted. A receive
            // posted and matched within the same turn scores 0; the stamp
            // defaults to "now" for matches delivered by the post-restore
            // sweep, where no post was observed by this incarnation.
            let posted = o.block_turn[dst.ix()].take().unwrap_or(o.turn_count);
            let latency = o.turn_count - posted;
            o.metrics.matches += 1;
            o.metrics.blocked_turns[dst.ix()] += latency;
            o.metrics.match_latency.record(latency);
            o.record_span(Span {
                decision: self.decision_log.len() as u64,
                sim_time: t_done,
                kind: SpanKind::Match,
                a: dst.0 as u64,
                b: env.src.0 as u64,
                c: env.seq,
            });
        }
        // A synchronous sender rendezvouses here: it completes at the
        // same instant the receive does.
        if env.synchronous {
            let sender = env.src;
            if matches!(self.states[sender.ix()], ProcState::BlockedSend { .. }) {
                self.states[sender.ix()] = ProcState::Ready(Reply::SendDone {
                    seq: env.seq,
                    t_done,
                });
            }
        }
        self.states[dst.ix()] = ProcState::Ready(Reply::RecvDone { env, t_done });
    }

    // ---- debugger interface ----

    /// Arm the marker threshold of one process (`None` disarms). The
    /// process traps at the first event whose marker reaches the value.
    pub fn set_threshold(&self, rank: Rank, threshold: Option<u64>) {
        self.recorders[rank.ix()].lock().set_threshold(threshold);
    }

    /// Arm thresholds for all ranks from a marker vector. A rank with
    /// count 0 means "stop before the first event": that rank is paused
    /// outright (there is no marker state 0 to trap on).
    pub fn arm_stopline(&mut self, markers: &MarkerVector) {
        for m in markers.iter() {
            if m.count > 0 {
                self.set_threshold(m.rank, Some(m.count));
            } else {
                self.set_paused(m.rank, true);
            }
        }
    }

    /// Clear every debugger pause.
    pub fn clear_pauses(&mut self) {
        self.paused.fill(false);
    }

    /// Disarm every threshold.
    pub fn clear_thresholds(&self) {
        for r in 0..self.n_ranks {
            self.set_threshold(Rank(r as u32), None);
        }
    }

    /// Resume all trapped processes (thresholds stay as set; clear them
    /// first to avoid immediately re-trapping).
    pub fn resume_trapped(&mut self) {
        for s in self.states.iter_mut() {
            if matches!(s, ProcState::Trapped { .. }) {
                *s = ProcState::Ready(Reply::Proceed);
            }
        }
    }

    /// Resume a single trapped process (single-process `step`/`continue`).
    /// Returns `false` if the process was not trapped.
    pub fn resume_rank(&mut self, rank: Rank) -> bool {
        let s = &mut self.states[rank.ix()];
        if matches!(s, ProcState::Trapped { .. }) {
            *s = ProcState::Ready(Reply::Proceed);
            true
        } else {
            false
        }
    }

    /// Is this process currently stopped at a trap?
    pub fn is_trapped(&self, rank: Rank) -> bool {
        matches!(self.states[rank.ix()], ProcState::Trapped { .. })
    }

    /// Has this process finished?
    pub fn is_finished(&self, rank: Rank) -> bool {
        matches!(self.states[rank.ix()], ProcState::Finished)
    }

    /// Pause / unpause a process (debugger-initiated, turn-level).
    pub fn set_paused(&mut self, rank: Rank, paused: bool) {
        self.paused[rank.ix()] = paused;
    }

    /// Current execution markers of every process.
    pub fn markers(&self) -> MarkerVector {
        let mut v = MarkerVector::zero(self.n_ranks);
        for (i, r) in self.recorders.iter().enumerate() {
            v.set(Rank(i as u32), r.lock().marker());
        }
        v
    }

    /// Ranks currently stopped at traps.
    pub fn trapped(&self) -> Vec<Marker> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ProcState::Trapped { marker } => Some(Marker::new(i as u32, *marker)),
                _ => None,
            })
            .collect()
    }

    /// Recent `UserMonitor` ring of a process (stop reports).
    pub fn recent_calls(&self, rank: Rank) -> Vec<tracedbg_instrument::RingEntry> {
        self.recorders[rank.ix()].lock().monitor().ring().recent()
    }

    /// Arm a source-location breakpoint on every process.
    pub fn add_breakpoint(&self, site: tracedbg_trace::SiteId) {
        for r in &self.recorders {
            r.lock().add_breakpoint(site);
        }
    }

    /// Disarm a source-location breakpoint on every process.
    pub fn remove_breakpoint(&self, site: tracedbg_trace::SiteId) {
        for r in &self.recorders {
            r.lock().remove_breakpoint(site);
        }
    }

    /// Arm a watchpoint on one process (or all, with `None`).
    pub fn add_watch(&self, rank: Option<Rank>, watch: tracedbg_instrument::Watch) {
        match rank {
            Some(r) => self.recorders[r.ix()].lock().add_watch(watch),
            None => {
                for r in &self.recorders {
                    r.lock().add_watch(watch.clone());
                }
            }
        }
    }

    /// Disarm all breakpoints and watchpoints everywhere.
    pub fn clear_breaks(&self) {
        for r in &self.recorders {
            r.lock().clear_breaks();
        }
    }

    /// Why a process's most recent trap fired.
    pub fn trap_cause(&self, rank: Rank) -> Option<tracedbg_instrument::TrapCause> {
        self.recorders[rank.ix()].lock().last_trap().cloned()
    }

    /// Pull everything traced so far (on-demand flush of every process
    /// buffer plus previously flushed data). Safe while stopped: no process
    /// thread runs while the engine has control.
    pub fn collect_trace(&mut self) -> Vec<TraceRecord> {
        for r in &self.recorders {
            let mut g = r.lock();
            let recs = g.take_records();
            drop(g);
            // Records drained here bypass the flush handle, so forward
            // them to any attached streaming sink explicitly.
            self.flush.tee_records(&recs);
            self.collected.extend(recs);
        }
        self.collected.extend(self.flush.drain());
        self.collected.clone()
    }

    /// Attach a streaming trace sink: every record is forwarded to it at
    /// flush/collect time, in arrival order. The sink sees each record
    /// exactly once; call [`Engine::detach_trace_sink`] after the final
    /// [`Engine::collect_trace`] to get it back and finish it.
    pub fn attach_trace_sink(&mut self, sink: Box<dyn tracedbg_trace::TraceSink>) {
        self.flush.set_tee(sink);
    }

    /// Detach the streaming sink attached by [`Engine::attach_trace_sink`].
    pub fn detach_trace_sink(&mut self) -> Option<Box<dyn tracedbg_trace::TraceSink>> {
        self.flush.take_tee()
    }

    /// Collected trace as a queryable store.
    pub fn trace_store(&mut self) -> TraceStore {
        let recs = self.collect_trace();
        TraceStore::build(recs, self.sites.clone(), self.n_ranks)
    }

    /// The receive-match history of this run, for replaying it later.
    pub fn match_log(&self) -> ReplayLog {
        self.match_rec.clone().into_log()
    }

    /// Undelivered messages per destination (unmatched sends, §4.4).
    pub fn undelivered(&self) -> Vec<(Rank, Vec<Envelope>)> {
        self.mailboxes
            .iter()
            .enumerate()
            .map(|(i, mb)| {
                (
                    Rank(i as u32),
                    mb.undelivered().into_iter().cloned().collect(),
                )
            })
            .collect()
    }

    /// Per-process monitor invocation counts (Table 1 accounting).
    pub fn invocations(&self) -> Vec<u64> {
        self.recorders
            .iter()
            .map(|r| r.lock().monitor().invocations())
            .collect()
    }

    // ---- explorer interface ----

    /// Every scheduling decision of the run so far, with the alternatives
    /// that were available at each point.
    pub fn decision_points(&self) -> &[DecisionPoint] {
        &self.decision_log
    }

    /// Just the chosen decisions — the schedule this run followed.
    pub fn schedule_log(&self) -> Vec<Decision> {
        self.decision_log.iter().map(|d| d.chosen).collect()
    }

    /// Under a scripted policy: did the script fail to apply at some point?
    pub fn schedule_diverged(&self) -> bool {
        self.scheduler.diverged()
    }

    /// Processes silenced by injected faults.
    pub fn faulted(&self) -> Vec<(Rank, FaultKind)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ProcState::Faulted(k) => Some((Rank(i as u32), *k)),
                _ => None,
            })
            .collect()
    }

    // ---- checkpoint interface ----

    /// Was this engine launched (or restored) with checkpointing on?
    pub fn checkpoints_enabled(&self) -> bool {
        self.checkpoints
    }

    /// Capture the full deterministic state of the run right now. Callable
    /// whenever the engine has control (between turns — i.e. whenever
    /// `run` has returned). Requires `EngineConfig::checkpoints`.
    ///
    /// Checkpoints deliberately carry no telemetry: metrics describe one
    /// engine incarnation, not a restored lineage.
    pub fn snapshot(&mut self) -> EngineCheckpoint {
        assert!(
            self.checkpoints,
            "snapshot() requires EngineConfig.checkpoints"
        );
        let started = self.obs.is_some().then(std::time::Instant::now);
        let cp = EngineCheckpoint {
            n_ranks: self.n_ranks,
            states: self.states.clone(),
            paused: self.paused.clone(),
            mailboxes: self.mailboxes.clone(),
            send_seq: self.send_seq.clone(),
            scheduler: self.scheduler.clone(),
            match_rec: self.match_rec.clone(),
            replay: self.replay.clone(),
            recorders: self.recorders.iter().map(|r| r.lock().clone()).collect(),
            recorder_cfg: self.recorder_cfg.clone(),
            sites: self.sites.clone(),
            flush_pending: self.flush.snapshot(),
            cost: self.cost,
            pending_coll: self.pending_coll.clone(),
            collected: self.collected.clone(),
            faults: self.faults.clone(),
            ops: self.ops.clone(),
            decision_log: self.decision_log.clone(),
            reply_log: self.reply_log.clone(),
            trap_history: self.trap_history.clone(),
            tasks: self
                .backends
                .iter()
                .map(|b| match b {
                    Backend::Task(h) => Some(h.snapshot()),
                    Backend::Thread { .. } => None,
                })
                .collect(),
        };
        if let (Some(o), Some(t0)) = (self.obs.as_mut(), started) {
            o.metrics.snapshots += 1;
            o.snapshot_ns += t0.elapsed().as_nanos() as u64;
        }
        cp
    }

    /// Arrange for a snapshot to be taken automatically when the decision
    /// log reaches length `k` (the explorer checkpoints schedule prefixes
    /// this way). Collected with [`Engine::take_pending_snapshot`].
    pub fn set_snapshot_at(&mut self, k: usize) {
        assert!(
            self.checkpoints,
            "set_snapshot_at() requires EngineConfig.checkpoints"
        );
        self.snapshot_at_decision = Some(k);
    }

    /// The snapshot armed by [`Engine::set_snapshot_at`], if the run
    /// reached that decision depth.
    pub fn take_pending_snapshot(&mut self) -> Option<EngineCheckpoint> {
        self.pending_snapshot.take().map(|b| *b)
    }

    fn maybe_snapshot(&mut self) {
        if let Some(k) = self.snapshot_at_decision {
            if self.decision_log.len() == k && self.pending_snapshot.is_none() {
                self.pending_snapshot = Some(Box::new(self.snapshot()));
            }
        }
    }

    /// Structural digest of the engine's deterministic state — a cheap
    /// self-check that a restored-and-continued run converged to the same
    /// state as a straight run.
    pub fn digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, s) in self.states.iter().enumerate() {
            (i as u64).hash(&mut h);
            match s {
                ProcState::Ready(_) => 0u8.hash(&mut h),
                ProcState::Running => 1u8.hash(&mut h),
                ProcState::Blocked { marker, .. } => {
                    2u8.hash(&mut h);
                    marker.hash(&mut h);
                }
                ProcState::BlockedSend { dst, marker } => {
                    3u8.hash(&mut h);
                    dst.ix().hash(&mut h);
                    marker.hash(&mut h);
                }
                ProcState::InCollective => 4u8.hash(&mut h),
                ProcState::Trapped { marker } => {
                    5u8.hash(&mut h);
                    marker.hash(&mut h);
                }
                ProcState::Faulted(k) => {
                    6u8.hash(&mut h);
                    matches!(k, FaultKind::Crash).hash(&mut h);
                }
                ProcState::Finished => 7u8.hash(&mut h),
                ProcState::Panicked(m) => {
                    8u8.hash(&mut h);
                    m.hash(&mut h);
                }
            }
            self.recorders[i].lock().marker().hash(&mut h);
        }
        for mb in &self.mailboxes {
            for env in mb.undelivered() {
                (env.src.ix(), env.dst.ix(), env.tag.0, env.seq, env.arrival).hash(&mut h);
            }
        }
        self.send_seq.hash(&mut h);
        self.ops.hash(&mut h);
        self.decision_log.len().hash(&mut h);
        self.match_rec.total().hash(&mut h);
        h.finish()
    }

    /// Receive matches recorded so far, per rank — where replay-log
    /// cursors must stand to pin only the delta after a restore.
    pub fn match_counts(&self) -> Vec<usize> {
        (0..self.n_ranks)
            .map(|r| self.match_rec.matches_of(Rank(r as u32)).len())
            .collect()
    }

    /// Install (or clear) a replay log mid-session. Unlike the launch
    /// path, cursors are left exactly where the caller set them — the
    /// debugger pins a restored run with cursors advanced past the
    /// checkpoint's matches.
    pub fn set_replay(&mut self, log: Option<ReplayLog>) {
        self.replay = log;
    }

    /// Install a replay log on a restored engine so that only the delta
    /// ahead of the checkpoint is forced. Cursors advance past each rank's
    /// made matches — plus, for a rank checkpointed while *blocked in an
    /// unmatched receive*, the entry for that receive: a recv consumes its
    /// log entry when the request is serviced, not when it matches, so
    /// that entry is re-pinned onto the blocked spec instead of leaking to
    /// the rank's next receive.
    pub fn set_replay_delta(&mut self, mut log: ReplayLog) {
        log.reset();
        let made = self.match_counts();
        log.advance_to(&made);
        if let Some(o) = self.obs.as_mut() {
            // Delta length: recorded receives still ahead of this state —
            // the work the coming replay actually re-pins.
            let total: usize = (0..self.n_ranks).map(|r| log.len_for(Rank(r as u32))).sum();
            let delta = total.saturating_sub(made.iter().sum::<usize>());
            o.metrics.replay_delta.record(delta as u64);
        }
        for r in 0..self.n_ranks {
            let rank = Rank(r as u32);
            if let ProcState::Blocked { spec, .. } = &mut self.states[r] {
                if let Some(m) = log.next_for(rank) {
                    spec.forced = Some((m.src, m.seq));
                }
            }
        }
        self.replay = Some(log);
    }

    /// Swap the scheduler's script with the cursor pre-advanced past a
    /// shared prefix (explorer prefix forking; see
    /// [`crate::sched::Scheduler::set_script`]).
    pub fn set_script(&mut self, script: Vec<Decision>, cursor: usize) {
        self.scheduler.set_script(script, cursor);
    }

    // ---- telemetry interface ----

    /// Turn on metrics collection from this point (a restored engine comes
    /// up with telemetry off; the debugger re-enables it here). No-op if
    /// already collecting.
    pub fn enable_metrics(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(EngineObs::new(self.n_ranks));
        }
    }

    /// Is telemetry being collected?
    pub fn metrics_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Event-derived metrics collected so far (None when disabled).
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.obs.as_deref().map(|o| &o.metrics)
    }

    /// Detach the collected metrics, leaving telemetry disabled.
    pub fn take_metrics(&mut self) -> Option<EngineMetrics> {
        self.obs.take().map(|o| o.metrics)
    }

    /// Rendered flight-recorder dump: the last spans leading to the
    /// current state, oldest first. Empty when telemetry is disabled.
    pub fn flight_dump(&self) -> Vec<String> {
        self.obs
            .as_deref()
            .map_or_else(Vec::new, |o| o.flight.dump())
    }

    /// Exact flight-recorder spans lost to ring overflow (0 when
    /// telemetry is disabled).
    pub fn flight_dropped(&self) -> u64 {
        self.obs.as_deref().map_or(0, |o| o.flight.dropped())
    }

    /// Wall-clock nanoseconds spent taking snapshots (0 when disabled).
    pub fn snapshot_ns(&self) -> u64 {
        self.obs.as_deref().map_or(0, |o| o.snapshot_ns)
    }
}

/// Spawn one simulated process thread (shared by `launch` and `restore`).
fn spawn_process(i: usize, program: ProgramFn, mut ctx: ProcessCtx) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("mpsim-p{i}"))
        .spawn(move || {
            ctx.wait_initial_grant();
            ctx.emit_proc_start();
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| program(&mut ctx)));
            match result {
                Ok(()) => {
                    ctx.emit_proc_end();
                    ctx.finish();
                }
                Err(payload) => {
                    if payload.downcast_ref::<ShutdownSignal>().is_some() {
                        return; // engine teardown: exit quietly
                    }
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".into());
                    ctx.report_panic(msg);
                }
            }
        })
        .expect("spawn process thread")
}

static QUIET_PANICS: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Suppress stderr noise from panics inside simulated processes. The
/// explorer turns this on: it drives hundreds of runs into assertion
/// failures on purpose, and every panic is already captured and reported
/// through [`RunOutcome::Panicked`].
pub fn set_quiet_panics(quiet: bool) {
    QUIET_PANICS.store(quiet, std::sync::atomic::Ordering::Relaxed);
}

/// Engine teardown unwinds parked process threads with a
/// [`ShutdownSignal`] panic; this hook keeps those intentional unwinds out
/// of stderr while delegating real panics to the previous hook.
fn install_quiet_shutdown_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownSignal>().is_some() {
                return;
            }
            // A simulated process is either a named `mpsim-p*` thread or a
            // task being stepped inline on the engine's own thread.
            let in_sim_proc = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("mpsim-p"))
                || crate::task::in_task_step();
            if in_sim_proc && QUIET_PANICS.load(std::sync::atomic::Ordering::Relaxed) {
                return;
            }
            prev(info);
        }));
    });
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Wake every parked process thread with a shutdown grant, then
        // join. Task ranks live inside the engine and need no teardown.
        for (i, b) in self.backends.iter().enumerate() {
            if let Backend::Thread { reply_tx, .. } = b {
                if !matches!(self.states[i], ProcState::Finished | ProcState::Panicked(_)) {
                    let _ = reply_tx.send(Reply::Shutdown);
                }
            }
        }
        for b in self.backends.iter_mut() {
            if let Backend::Thread { handle, .. } = b {
                if let Some(h) = handle.take() {
                    let _ = h.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use tracedbg_trace::{EventKind, Tag};

    fn cfg() -> EngineConfig {
        EngineConfig::with_recorder(RecorderConfig::full())
    }

    fn site_of(ctx: &ProcessCtx, f: &str) -> tracedbg_trace::SiteId {
        ctx.site("test.rs", 1, f)
    }

    #[test]
    fn ping_pong_completes() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.send(Rank(1), Tag(1), Payload::from_i64(42), s);
            let m = ctx.recv_from(Rank(1), Tag(2), s);
            assert_eq!(m.payload.to_i64(), Some(43));
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            let m = ctx.recv_from(Rank(0), Tag(1), s);
            let x = m.payload.to_i64().unwrap();
            ctx.send(Rank(0), Tag(2), Payload::from_i64(x + 1), s);
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        let out = e.run();
        assert!(out.is_completed(), "{out:?}");
        let store = e.trace_store();
        assert_eq!(store.of_kind(EventKind::Send).len(), 2);
        assert_eq!(store.of_kind(EventKind::RecvDone).len(), 2);
    }

    #[test]
    fn recv_before_send_blocks_then_matches() {
        // P1 posts its receive long before P0 sends.
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.compute(1_000_000, s);
            ctx.send(Rank(1), Tag(9), Payload::from_i64(7), s);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            let m = ctx.recv_from(Rank(0), Tag(9), s);
            assert_eq!(m.payload.to_i64(), Some(7));
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        assert!(e.run().is_completed());
        let store = e.trace_store();
        // Receive completion must not precede send completion.
        let send = &store.records()[store.of_kind(EventKind::Send)[0].ix()];
        let recv = &store.records()[store.of_kind(EventKind::RecvDone)[0].ix()];
        assert!(recv.t_end >= send.t_end);
    }

    #[test]
    fn deadlock_detected_with_cycle() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            let _ = ctx.recv_from(Rank(1), Tag(0), s);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            let _ = ctx.recv_from(Rank(0), Tag(0), s);
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        match e.run() {
            RunOutcome::Deadlock(rep) => {
                assert!(rep.is_cyclic());
                assert_eq!(rep.cycle, vec![Rank(0), Rank(1)]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_recv_and_match_log() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            let a = ctx.recv_any(Some(Tag(1)), s);
            let b = ctx.recv_any(Some(Tag(1)), s);
            let mut got = vec![a.payload.to_i64().unwrap(), b.payload.to_i64().unwrap()];
            got.sort();
            assert_eq!(got, vec![10, 20]);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.send(Rank(0), Tag(1), Payload::from_i64(10), s);
        });
        let p2: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p2");
            ctx.send(Rank(0), Tag(1), Payload::from_i64(20), s);
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1, p2]);
        assert!(e.run().is_completed());
        let log = e.match_log();
        assert_eq!(log.len_for(Rank(0)), 2);
    }

    #[test]
    fn replay_forces_wildcard_matches() {
        // Record under one seed, replay under a different seed: the
        // wildcard receive order must follow the log, not the new seed.
        let make = || -> Vec<ProgramFn> {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = site_of(ctx, "p0");
                let a = ctx.recv_any(None, s);
                let b = ctx.recv_any(None, s);
                // Report the observed order via probes.
                ctx.probe("first", a.src.0 as i64, s);
                ctx.probe("second", b.src.0 as i64, s);
            });
            let sender = |v: i64| -> ProgramFn {
                Box::new(move |ctx| {
                    let s = site_of(ctx, "sender");
                    ctx.send(Rank(0), Tag(0), Payload::from_i64(v), s);
                })
            };
            vec![p0, sender(1), sender(2)]
        };
        let order_of = |e: &mut Engine| -> Vec<i64> {
            let store = e.trace_store();
            store
                .records()
                .iter()
                .filter(|r| r.kind == EventKind::Probe)
                .map(|r| r.args[0])
                .collect()
        };
        let mut cfg1 = cfg();
        cfg1.policy = SchedPolicy::Seeded(1);
        let mut e1 = Engine::launch(cfg1, make());
        assert!(e1.run().is_completed());
        let recorded = order_of(&mut e1);
        let log = e1.match_log();

        let mut cfg2 = cfg();
        cfg2.policy = SchedPolicy::Seeded(999);
        cfg2.replay = Some(log);
        let mut e2 = Engine::launch(cfg2, make());
        assert!(e2.run().is_completed());
        let replayed = order_of(&mut e2);
        assert_eq!(recorded, replayed, "replay must pin wildcard matches");
    }

    #[test]
    fn threshold_trap_stops_and_resumes() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            for _ in 0..10 {
                ctx.compute(100, s);
            }
        });
        let mut e = Engine::launch(cfg(), vec![p0]);
        e.set_threshold(Rank(0), Some(5));
        match e.run() {
            RunOutcome::Stopped(stop) => {
                assert_eq!(stop.traps, vec![Marker::new(0u32, 5)]);
            }
            other => panic!("expected stop, got {other:?}"),
        }
        assert_eq!(e.markers().get(Rank(0)), 5);
        e.clear_thresholds();
        e.resume_trapped();
        assert!(e.run().is_completed());
        // ProcStart + 10 computes + ProcEnd = 12 events
        assert_eq!(e.markers().get(Rank(0)), 12);
    }

    #[test]
    fn pause_stops_run() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.compute(100, s);
        });
        let mut e = Engine::launch(cfg(), vec![p0]);
        e.set_paused(Rank(0), true);
        match e.run() {
            RunOutcome::Stopped(stop) => {
                assert_eq!(stop.paused, vec![Rank(0)]);
                assert!(stop.traps.is_empty());
            }
            other => panic!("{other:?}"),
        }
        e.set_paused(Rank(0), false);
        assert!(e.run().is_completed());
    }

    #[test]
    fn panic_is_reported() {
        let p0: ProgramFn = Box::new(|_ctx| {
            panic!("boom at iteration 3");
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.compute(10, s);
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        match e.run() {
            RunOutcome::Panicked { rank, message } => {
                assert_eq!(rank, Rank(0));
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ssend_rendezvous_completes_and_orders_times() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.ssend(Rank(1), Tag(1), Payload::from_i64(5), s);
            ctx.probe("after_ssend", ctx.now() as i64, s);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.compute(1_000_000, s); // keep the sender waiting
            let m = ctx.recv_from(Rank(0), Tag(1), s);
            assert_eq!(m.payload.to_i64(), Some(5));
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        assert!(e.run().is_completed());
        let store = e.trace_store();
        let send = &store.records()[store.of_kind(EventKind::Send)[0].ix()];
        let recv = &store.records()[store.of_kind(EventKind::RecvDone)[0].ix()];
        // Rendezvous: the send completes no earlier than the receive
        // and waits out the receiver's long compute.
        assert_eq!(send.t_end, recv.t_end);
        assert!(send.t_end >= 1_000_000);
    }

    #[test]
    fn ssend_cycle_deadlocks() {
        // The send-side circular dependency of §4.4: both processes in
        // synchronous sends to each other, nobody receives.
        let mk = |peer: u32| -> ProgramFn {
            Box::new(move |ctx| {
                let s = site_of(ctx, "ss");
                ctx.ssend(Rank(peer), Tag(0), Payload::from_i64(1), s);
                let _ = ctx.recv_from(Rank(peer), Tag(0), s);
            })
        };
        let mut e = Engine::launch(cfg(), vec![mk(1), mk(0)]);
        match e.run() {
            RunOutcome::Deadlock(rep) => {
                assert!(rep.is_cyclic());
                assert_eq!(rep.cycle, vec![Rank(0), Rank(1)]);
            }
            other => panic!("expected send-send deadlock, got {other:?}"),
        }
    }

    #[test]
    fn buffered_sends_do_not_deadlock_same_pattern() {
        // The same exchange with buffered sends completes — the classic
        // reason "it works with small messages" bugs exist.
        let mk = |peer: u32| -> ProgramFn {
            Box::new(move |ctx| {
                let s = site_of(ctx, "bs");
                ctx.send(Rank(peer), Tag(0), Payload::from_i64(1), s);
                let _ = ctx.recv_from(Rank(peer), Tag(0), s);
            })
        };
        let mut e = Engine::launch(cfg(), vec![mk(1), mk(0)]);
        assert!(e.run().is_completed());
    }

    #[test]
    fn collectives_work_end_to_end() {
        use crate::collective::ReduceOp;
        let make = |rank: u32| -> ProgramFn {
            Box::new(move |ctx| {
                let s = site_of(ctx, "coll");
                ctx.barrier(s);
                let v = ctx.bcast(
                    Rank(0),
                    if rank == 0 {
                        Payload::from_i64(7)
                    } else {
                        Payload::empty()
                    },
                    s,
                );
                assert_eq!(v.to_i64(), Some(7));
                let sum = ctx.allreduce(ReduceOp::Sum, Payload::from_f64s(&[rank as f64]), s);
                assert_eq!(sum.to_f64s().unwrap(), vec![0.0 + 1.0 + 2.0]);
            })
        };
        let mut e = Engine::launch(cfg(), vec![make(0), make(1), make(2)]);
        let out = e.run();
        assert!(out.is_completed(), "{out:?}");
        let store = e.trace_store();
        assert_eq!(
            store
                .records()
                .iter()
                .filter(|r| matches!(r.kind, EventKind::Collective(_)))
                .count(),
            9
        );
    }

    #[test]
    fn identical_runs_produce_identical_traces() {
        let make = || -> Vec<ProgramFn> {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = site_of(ctx, "p0");
                ctx.compute(500, s);
                ctx.send(Rank(1), Tag(3), Payload::from_i64(1), s);
                let _ = ctx.recv_from(Rank(1), Tag(4), s);
            });
            let p1: ProgramFn = Box::new(|ctx| {
                let s = site_of(ctx, "p1");
                let _ = ctx.recv_from(Rank(0), Tag(3), s);
                ctx.send(Rank(0), Tag(4), Payload::from_i64(2), s);
            });
            vec![p0, p1]
        };
        let run = || {
            let mut e = Engine::launch(cfg(), make());
            assert!(e.run().is_completed());
            e.collect_trace()
        };
        assert_eq!(run(), run(), "determinism: same program, same trace");
    }

    #[test]
    fn undelivered_messages_visible() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.send(Rank(1), Tag(1), Payload::from_i64(5), s);
        });
        let p1: ProgramFn = Box::new(|_ctx| {
            // never receives
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        assert!(e.run().is_completed());
        let und = e.undelivered();
        assert_eq!(und[1].1.len(), 1);
        assert_eq!(und[1].1[0].tag, Tag(1));
        assert_eq!(und[0].1.len(), 0);
    }

    #[test]
    fn scripted_schedule_reproduces_a_seeded_run() {
        // Record a seeded run's decisions, then re-execute them as a
        // script: the trace must be bit-identical even though the scripted
        // scheduler shares no RNG state with the recording.
        let make = || -> Vec<ProgramFn> {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = site_of(ctx, "p0");
                let a = ctx.recv_any(None, s);
                let b = ctx.recv_any(None, s);
                ctx.probe("order", (a.src.0 * 10 + b.src.0) as i64, s);
            });
            let sender = |v: i64| -> ProgramFn {
                Box::new(move |ctx| {
                    let s = site_of(ctx, "sender");
                    ctx.compute(100, s);
                    ctx.send(Rank(0), Tag(0), Payload::from_i64(v), s);
                })
            };
            vec![p0, sender(1), sender(2)]
        };
        let mut cfg1 = cfg();
        cfg1.policy = SchedPolicy::Seeded(42);
        let mut e1 = Engine::launch(cfg1, make());
        assert!(e1.run().is_completed());
        let script = e1.schedule_log();
        let recorded = e1.collect_trace();

        let mut cfg2 = cfg();
        cfg2.policy = SchedPolicy::Scripted(script);
        let mut e2 = Engine::launch(cfg2, make());
        assert!(e2.run().is_completed());
        assert!(!e2.schedule_diverged(), "script must apply cleanly");
        assert_eq!(recorded, e2.collect_trace(), "scripted replay is exact");
    }

    /// The receiver matches a directed receive from P1 first; while it
    /// holds no turn, P2 and P3 queue their sends. The first wildcard then
    /// sees two candidates — a real branch point.
    fn wildcard_fanin() -> Vec<ProgramFn> {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            let _ = ctx.recv_from(Rank(1), Tag(0), s);
            let a = ctx.recv_any(None, s);
            ctx.probe("first", a.src.0 as i64, s);
            let _ = ctx.recv_any(None, s);
        });
        let sender = || -> ProgramFn {
            Box::new(move |ctx| {
                let s = site_of(ctx, "sender");
                ctx.send(Rank(0), Tag(0), Payload::from_i64(1), s);
            })
        };
        vec![p0, sender(), sender(), sender()]
    }

    #[test]
    fn decision_log_marks_wildcard_branches() {
        let mut e = Engine::launch(cfg(), wildcard_fanin());
        assert!(e.run().is_completed());
        let branchy: Vec<_> = e
            .decision_points()
            .iter()
            .filter(|d| d.is_branch() && matches!(d.chosen, Decision::Match { .. }))
            .collect();
        assert_eq!(
            branchy.len(),
            1,
            "first wildcard has two candidates, second has one"
        );
        assert_eq!(branchy[0].alternatives.len(), 2);
    }

    #[test]
    fn delay_fault_reorders_wildcard_arrivals() {
        use tracedbg_trace::Fault;
        // The first wildcard of `wildcard_fanin` ties on arrival and picks
        // the lowest source (P2); delaying P2's message flips it to P3.
        let first_src = |faults: FaultPlan| -> i64 {
            let mut c = cfg();
            c.faults = faults;
            let mut e = Engine::launch(c, wildcard_fanin());
            assert!(e.run().is_completed());
            let store = e.trace_store();
            store
                .records()
                .iter()
                .find(|r| r.kind == EventKind::Probe)
                .map(|r| r.args[0])
                .unwrap()
        };
        assert_eq!(first_src(FaultPlan::default()), 2);
        let delayed = FaultPlan::new(vec![Fault::Delay {
            src: Rank(2),
            dst: Rank(0),
            nth: 0,
            extra_ns: 50_000_000,
        }]);
        assert_eq!(first_src(delayed), 3, "delay fault must flip the match");
    }

    #[test]
    fn crash_fault_starves_peer_into_deadlock() {
        use tracedbg_trace::Fault;
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            let _ = ctx.recv_from(Rank(1), Tag(0), s);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.send(Rank(0), Tag(0), Payload::from_i64(1), s);
        });
        let mut c = cfg();
        // P1 crashes on its very first operation: the send never happens.
        c.faults = FaultPlan::new(vec![Fault::Crash {
            rank: Rank(1),
            after_ops: 0,
        }]);
        let mut e = Engine::launch(c, vec![p0, p1]);
        match e.run() {
            RunOutcome::Deadlock(rep) => {
                assert!(!rep.is_cyclic(), "starvation, not a cycle");
                assert_eq!(rep.waits.len(), 1);
                assert_eq!(rep.waits[0].waiter, Rank(0));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(e.faulted(), vec![(Rank(1), FaultKind::Crash)]);
    }

    #[test]
    fn crash_fault_alone_still_completes() {
        use tracedbg_trace::Fault;
        // Nobody depends on P1: its crash is not a failure.
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.compute(10, s);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.send(Rank(0), Tag(9), Payload::from_i64(1), s);
        });
        let mut c = cfg();
        c.faults = FaultPlan::new(vec![Fault::Crash {
            rank: Rank(1),
            after_ops: 0,
        }]);
        let mut e = Engine::launch(c, vec![p0, p1]);
        assert!(e.run().is_completed());
    }

    #[test]
    fn hang_fault_prevents_completion() {
        use tracedbg_trace::Fault;
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.compute(10, s);
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.send(Rank(0), Tag(9), Payload::from_i64(1), s);
        });
        let mut c = cfg();
        c.faults = FaultPlan::new(vec![Fault::Hang {
            rank: Rank(1),
            after_ops: 0,
        }]);
        let mut e = Engine::launch(c, vec![p0, p1]);
        match e.run() {
            RunOutcome::Deadlock(rep) => {
                assert!(rep.waits.iter().any(|w| w.waiter == Rank(1)));
            }
            other => panic!("expected hang-induced stall, got {other:?}"),
        }
    }

    fn ckpt_cfg() -> EngineConfig {
        EngineConfig {
            checkpoints: true,
            ..cfg()
        }
    }

    #[test]
    fn snapshot_mid_run_restore_and_continue_is_byte_identical() {
        let mut straight = Engine::launch(ckpt_cfg(), wildcard_fanin());
        assert!(straight.run().is_completed());
        let want = straight.collect_trace();
        let want_digest = straight.digest();
        // Same run, but snapshot when the decision log reaches depth 5.
        let mut e = Engine::launch(ckpt_cfg(), wildcard_fanin());
        e.set_snapshot_at(5);
        assert!(e.run().is_completed());
        let cp = e.take_pending_snapshot().expect("snapshot at decision 5");
        assert_eq!(cp.decision_len(), 5);
        assert_eq!(e.collect_trace(), want, "snapshotting must not perturb");
        // Restore the prefix and run the rest: identical trace and state.
        let mut r = Engine::restore(&cp, wildcard_fanin());
        assert!(r.run().is_completed());
        assert_eq!(r.collect_trace(), want, "restored run diverged");
        assert_eq!(r.digest(), want_digest);
    }

    #[test]
    fn snapshot_of_a_stop_restores_traps_and_continues_identically() {
        let make = || -> Vec<ProgramFn> {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = site_of(ctx, "p0");
                for _ in 0..10 {
                    ctx.compute(100, s);
                }
            });
            vec![p0]
        };
        let mut e = Engine::launch(ckpt_cfg(), make());
        e.set_threshold(Rank(0), Some(5));
        assert!(e.run().is_stopped());
        let cp = e.snapshot();
        assert_eq!(cp.markers().get(Rank(0)), 5);
        e.clear_thresholds();
        e.resume_trapped();
        assert!(e.run().is_completed());
        let want = e.collect_trace();
        let want_digest = e.digest();
        // A restored stop *is* the stop: same trap, then same run.
        let mut r = Engine::restore(&cp, make());
        assert!(r.is_trapped(Rank(0)));
        match r.run() {
            RunOutcome::Stopped(st) => assert_eq!(st.traps, vec![Marker::new(0u32, 5)]),
            other => panic!("restored stop must re-report its stop, got {other:?}"),
        }
        r.clear_thresholds();
        r.resume_trapped();
        assert!(r.run().is_completed());
        assert_eq!(r.collect_trace(), want);
        assert_eq!(r.digest(), want_digest);
    }

    #[test]
    fn restored_engine_chains_further_checkpoints() {
        let make = || -> Vec<ProgramFn> {
            let p0: ProgramFn = Box::new(|ctx| {
                let s = site_of(ctx, "p0");
                for _ in 0..10 {
                    ctx.compute(100, s);
                }
            });
            vec![p0]
        };
        let mut e = Engine::launch(ckpt_cfg(), make());
        e.set_threshold(Rank(0), Some(3));
        assert!(e.run().is_stopped());
        let cp1 = e.snapshot();
        let mut r1 = Engine::restore(&cp1, make());
        assert!(r1.checkpoints_enabled());
        r1.set_threshold(Rank(0), Some(7));
        r1.resume_trapped();
        assert!(r1.run().is_stopped());
        let cp2 = r1.snapshot();
        assert_eq!(cp2.markers().get(Rank(0)), 7);
        let mut r2 = Engine::restore(&cp2, make());
        r2.clear_thresholds();
        r2.resume_trapped();
        assert!(r2.run().is_completed());
        assert_eq!(r2.markers().get(Rank(0)), 12);
    }

    #[test]
    #[should_panic(expected = "requires EngineConfig.checkpoints")]
    fn snapshot_requires_opt_in() {
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            ctx.compute(1, s);
        });
        let mut e = Engine::launch(cfg(), vec![p0]);
        let _ = e.snapshot();
    }

    #[test]
    fn restore_replays_through_faults_identically() {
        use tracedbg_trace::Fault;
        // Crash P1 after one op: the straight and restored runs must agree
        // on the resulting starvation deadlock and trace.
        let make = || wildcard_fanin();
        let faults = FaultPlan::new(vec![Fault::Crash {
            rank: Rank(2),
            after_ops: 0,
        }]);
        let mut c = ckpt_cfg();
        c.faults = faults.clone();
        let mut straight = Engine::launch(c.clone(), make());
        let straight_out = straight.run();
        let want = straight.collect_trace();
        let mut e = Engine::launch(c, make());
        e.set_snapshot_at(4);
        let _ = e.run();
        let cp = e.take_pending_snapshot().expect("snapshot");
        let mut r = Engine::restore(&cp, make());
        let r_out = r.run();
        assert_eq!(
            format!("{straight_out:?}"),
            format!("{r_out:?}"),
            "outcome must match"
        );
        assert_eq!(r.collect_trace(), want);
        assert_eq!(r.faulted(), straight.faulted());
    }

    #[test]
    fn trap_on_recv_post_stops_before_blocking() {
        // Threshold at the RecvPost marker: process stops *before* the
        // engine parks it in the mailbox wait.
        let p0: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p0");
            let _ = ctx.recv_from(Rank(1), Tag(0), s); // would deadlock
        });
        let p1: ProgramFn = Box::new(|ctx| {
            let s = site_of(ctx, "p1");
            ctx.compute(10, s);
        });
        let mut e = Engine::launch(cfg(), vec![p0, p1]);
        // P0 events: ProcStart(1), RecvPost(2)
        e.set_threshold(Rank(0), Some(2));
        match e.run() {
            RunOutcome::Stopped(st) => {
                assert_eq!(st.traps, vec![Marker::new(0u32, 2)]);
            }
            other => panic!("{other:?}"),
        }
    }
}
