//! Resumable rank tasks: state-machine processes multiplexed on the
//! engine's own thread.
//!
//! The thread-per-rank backend ([`crate::proc::ProcessCtx`]) caps rank
//! counts at a few dozen and makes every checkpoint restore pay thread
//! respawn plus reply-log fast-forward. This module is the scalable
//! alternative: a rank is a [`TaskProgram`] — a poll-able state machine
//! that yields a [`TaskOp`] at every send/recv/collective boundary — and
//! the engine drives it *inline* on the granting thread. Per-rank cost is
//! a struct, not a thread; a checkpoint of a task rank is a clone of its
//! frame stack ([`TaskSnapshot`]), so restore is a memcpy instead of
//! respawn + fast-forward.
//!
//! Semantics contract: a task rank produces **byte-identical traces** to
//! the same program written against `ProcessCtx` at a fixed seed. The
//! [`TaskHarness`] replicates every emission rule of `proc.rs` exactly —
//! record field layout, clock arithmetic, marker peeking, trap points
//! (including the RecvPost trap that fires *before* the receive is
//! submitted), `instr_off` short-circuits, and panic capture.
//!
//! Most programs are written as a [`Prog`] syntax tree (sequence /
//! act / op / scope / if / loops / dynamic generation) interpreted by
//! [`TaskInterp`], whose explicit frame stack is what makes mid-program
//! snapshots cheap: nodes are `Arc`-shared, so cloning an interpreter
//! clones a few pointers plus the user state `S`.

use crate::clock::CostModel;
use crate::collective::ReduceOp;
use crate::message::Message;
use crate::ops::{Reply, Request, SendMode};
use crate::payload::Payload;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tracedbg_instrument::{Disposition, Recorder};
use tracedbg_trace::{
    CollKind, EventKind, FlushHandle, MsgInfo, Rank, SiteId, SiteTable, Tag, TraceRecord,
};

// ---------------------------------------------------------------------------
// Op vocabulary
// ---------------------------------------------------------------------------

/// What a resuming task receives: the value produced by the op it last
/// yielded at.
#[derive(Clone, Debug)]
pub enum OpResult {
    /// Ops with no value (compute, probe, send, tracing toggles...).
    None,
    /// A completed receive.
    Message(Message),
    /// A completed collective: this rank's share of the result.
    Payload(Payload),
}

impl OpResult {
    /// The delivered message; panics if the last op was not a receive.
    pub fn message(self) -> Message {
        match self {
            OpResult::Message(m) => m,
            other => panic!("expected a message result, got {other:?}"),
        }
    }

    /// The collective result; panics if the last op was not a collective.
    pub fn payload(self) -> Payload {
        match self {
            OpResult::Payload(p) => p,
            other => panic!("expected a payload result, got {other:?}"),
        }
    }
}

/// One operation a task yields at. Mirrors the `ProcessCtx` surface
/// one-to-one; the harness turns each into the exact record/request
/// sequence the thread backend emits.
#[derive(Clone)]
pub enum TaskOp {
    /// `ProcessCtx::compute`.
    Compute { cost_ns: u64, site: SiteId },
    /// `ProcessCtx::probe`.
    Probe {
        label: String,
        value: i64,
        site: SiteId,
    },
    /// `ProcessCtx::scope` entry (emitted by [`Prog::scope`] frames).
    Enter { site: SiteId, args: [i64; 2] },
    /// `ProcessCtx::scope` exit.
    Exit { site: SiteId },
    /// `ProcessCtx::send` / `ssend`.
    Send {
        dst: Rank,
        tag: Tag,
        payload: Payload,
        site: SiteId,
        mode: SendMode,
    },
    /// `ProcessCtx::recv` (both components optional, as in `recv_any`).
    Recv {
        src: Option<Rank>,
        tag: Option<Tag>,
        site: SiteId,
    },
    /// `ProcessCtx::collective` and its wrappers.
    Collective {
        kind: CollKind,
        root: Rank,
        payload: Payload,
        op: Option<ReduceOp>,
        site: SiteId,
    },
    /// `ProcessCtx::set_tracing`.
    SetTracing(bool),
    /// `ProcessCtx::flush_trace`.
    FlushTrace,
    /// No operation: the program had nothing to emit at this step (used
    /// by conditional emitters); the harness advances immediately.
    Nop,
    /// The program is finished (`ProcEnd` + `Finished` follow).
    Done,
}

/// Read-only view a task gets while deciding its next op: identity plus
/// the shared site table (interning through it preserves the exact site
/// numbering of the thread backend).
pub struct TaskView<'a> {
    pub rank: Rank,
    pub n_ranks: usize,
    sites: &'a SiteTable,
    fn_stack: &'a [SiteId],
}

impl TaskView<'_> {
    /// Intern a source site (see `ProcessCtx::site`).
    pub fn site(&self, file: &str, line: u32, func: &str) -> SiteId {
        self.sites.site(file, line, func)
    }

    /// Site attributed to the innermost open scope (see
    /// `ProcessCtx::site_here`).
    pub fn site_here(&self, file: &str, line: u32) -> SiteId {
        let func = self
            .fn_stack
            .last()
            .map(|s| self.sites.func_name(*s))
            .unwrap_or_else(|| "main".into());
        self.sites.site(file, line, &func)
    }
}

/// A resumable rank program. `next` is called with the result of the
/// previously yielded op (or [`OpResult::None`] on the first call) and
/// returns the next op; [`TaskOp::Done`] ends the rank.
///
/// `snapshot` must return an independent deep copy positioned at the same
/// execution point — this is what makes checkpoint/restore a memcpy.
pub trait TaskProgram: Send + Sync {
    fn next(&mut self, input: OpResult, view: &TaskView<'_>) -> TaskOp;
    fn snapshot(&self) -> Box<dyn TaskProgram>;
}

impl Clone for Box<dyn TaskProgram> {
    fn clone(&self) -> Self {
        self.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Prog<S>: a resumable program syntax tree
// ---------------------------------------------------------------------------

type ActFn<S> = Arc<dyn Fn(&mut S, &TaskView<'_>) + Send + Sync>;
type EmitFn<S> = Arc<dyn Fn(&mut S, &TaskView<'_>) -> TaskOp + Send + Sync>;
type BindFn<S> = Arc<dyn Fn(&mut S, OpResult, &TaskView<'_>) + Send + Sync>;
type CondFn<S> = Arc<dyn Fn(&S, &TaskView<'_>) -> bool + Send + Sync>;
type RangeFn<S> = Arc<dyn Fn(&S, &TaskView<'_>) -> (i64, i64) + Send + Sync>;
type IndexFn<S> = Arc<dyn Fn(&mut S, i64) + Send + Sync>;
type EnterFn<S> = Arc<dyn Fn(&mut S, &TaskView<'_>) -> (SiteId, [i64; 2]) + Send + Sync>;
type GenFn<S> = Arc<dyn Fn(&mut S, &TaskView<'_>) -> Prog<S> + Send + Sync>;

enum Node<S> {
    /// Run children in order.
    Seq(Vec<Prog<S>>),
    /// Pure local mutation of the task state: no op, no trace record.
    Act(ActFn<S>),
    /// Yield one op; `bind` consumes its result on resume.
    Op {
        emit: EmitFn<S>,
        bind: Option<BindFn<S>>,
    },
    /// `ProcessCtx::scope`: FnEnter, body, FnExit.
    Scope { enter: EnterFn<S>, body: Prog<S> },
    /// Two-way branch.
    If {
        cond: CondFn<S>,
        then: Prog<S>,
        els: Prog<S>,
    },
    /// Counted loop over `start..end`; `at` publishes the index into `S`
    /// before each iteration.
    For {
        range: RangeFn<S>,
        at: IndexFn<S>,
        body: Prog<S>,
    },
    /// Condition-checked loop.
    While { cond: CondFn<S>, body: Prog<S> },
    /// Build a subtree at runtime from the current state — recursion and
    /// data-dependent program shapes.
    Gen(GenFn<S>),
}

/// A shareable program tree node (cheap to clone: one `Arc`).
pub struct Prog<S>(Arc<Node<S>>);

impl<S> Clone for Prog<S> {
    fn clone(&self) -> Self {
        Prog(Arc::clone(&self.0))
    }
}

impl<S: Send + Sync + 'static> Prog<S> {
    pub fn seq(items: Vec<Prog<S>>) -> Self {
        Prog(Arc::new(Node::Seq(items)))
    }

    pub fn act(f: impl Fn(&mut S, &TaskView<'_>) + Send + Sync + 'static) -> Self {
        Prog(Arc::new(Node::Act(Arc::new(f))))
    }

    /// Yield the op computed by `emit`, discarding its result.
    pub fn op(f: impl Fn(&mut S, &TaskView<'_>) -> TaskOp + Send + Sync + 'static) -> Self {
        Prog(Arc::new(Node::Op {
            emit: Arc::new(f),
            bind: None,
        }))
    }

    /// Yield the op computed by `emit`; `bind` receives its result.
    pub fn op_bind(
        emit: impl Fn(&mut S, &TaskView<'_>) -> TaskOp + Send + Sync + 'static,
        bind: impl Fn(&mut S, OpResult, &TaskView<'_>) + Send + Sync + 'static,
    ) -> Self {
        Prog(Arc::new(Node::Op {
            emit: Arc::new(emit),
            bind: Some(Arc::new(bind)),
        }))
    }

    pub fn scope(
        enter: impl Fn(&mut S, &TaskView<'_>) -> (SiteId, [i64; 2]) + Send + Sync + 'static,
        body: Prog<S>,
    ) -> Self {
        Prog(Arc::new(Node::Scope {
            enter: Arc::new(enter),
            body,
        }))
    }

    pub fn if_else(
        cond: impl Fn(&S, &TaskView<'_>) -> bool + Send + Sync + 'static,
        then: Prog<S>,
        els: Prog<S>,
    ) -> Self {
        Prog(Arc::new(Node::If {
            cond: Arc::new(cond),
            then,
            els,
        }))
    }

    pub fn when(
        cond: impl Fn(&S, &TaskView<'_>) -> bool + Send + Sync + 'static,
        then: Prog<S>,
    ) -> Self {
        Self::if_else(cond, then, Self::seq(vec![]))
    }

    /// `for i in range.0..range.1 { at(state, i); body }`.
    pub fn for_range(
        range: impl Fn(&S, &TaskView<'_>) -> (i64, i64) + Send + Sync + 'static,
        at: impl Fn(&mut S, i64) + Send + Sync + 'static,
        body: Prog<S>,
    ) -> Self {
        Prog(Arc::new(Node::For {
            range: Arc::new(range),
            at: Arc::new(at),
            body,
        }))
    }

    pub fn while_loop(
        cond: impl Fn(&S, &TaskView<'_>) -> bool + Send + Sync + 'static,
        body: Prog<S>,
    ) -> Self {
        Prog(Arc::new(Node::While {
            cond: Arc::new(cond),
            body,
        }))
    }

    /// Defer construction: `f` runs when execution reaches this node and
    /// the subtree it returns is executed in place.
    pub fn gen(f: impl Fn(&mut S, &TaskView<'_>) -> Prog<S> + Send + Sync + 'static) -> Self {
        Prog(Arc::new(Node::Gen(Arc::new(f))))
    }
}

// ---------------------------------------------------------------------------
// TaskInterp: the frame-stack interpreter
// ---------------------------------------------------------------------------

enum Frame<S> {
    /// A `Seq` node with the index of the next child to enter.
    Seq { node: Prog<S>, idx: usize },
    /// A counted loop mid-flight.
    For { node: Prog<S>, cur: i64, end: i64 },
    /// A `While` node (condition re-checked each pass).
    While { node: Prog<S> },
    /// A node whose entry was deferred (body of a scope after its
    /// `FnEnter` op, loop bodies).
    Pending(Prog<S>),
    /// Emit `FnExit` for this site once the scope body is done.
    ScopeExit { site: SiteId },
}

impl<S> Clone for Frame<S> {
    fn clone(&self) -> Self {
        match self {
            Frame::Seq { node, idx } => Frame::Seq {
                node: node.clone(),
                idx: *idx,
            },
            Frame::For { node, cur, end } => Frame::For {
                node: node.clone(),
                cur: *cur,
                end: *end,
            },
            Frame::While { node } => Frame::While { node: node.clone() },
            Frame::Pending(node) => Frame::Pending(node.clone()),
            Frame::ScopeExit { site } => Frame::ScopeExit { site: *site },
        }
    }
}

/// Interprets a [`Prog`] tree as a [`TaskProgram`]. The whole execution
/// point is `(stack, state, pending_bind)` — all cheap to clone.
pub struct TaskInterp<S> {
    stack: Vec<Frame<S>>,
    state: S,
    pending_bind: Option<BindFn<S>>,
}

impl<S: Clone + Send + Sync + 'static> TaskInterp<S> {
    pub fn new(state: S, prog: Prog<S>) -> Self {
        TaskInterp {
            stack: vec![Frame::Pending(prog)],
            state,
            pending_bind: None,
        }
    }

    /// Enter `node`, descending through control nodes until something
    /// yields an op (`Some`) or completes silently (`None`, with any
    /// remaining work pushed as frames).
    fn enter(
        stack: &mut Vec<Frame<S>>,
        pending_bind: &mut Option<BindFn<S>>,
        state: &mut S,
        mut node: Prog<S>,
        view: &TaskView<'_>,
    ) -> Option<TaskOp> {
        loop {
            match &*node.0.clone() {
                Node::Seq(_) => {
                    stack.push(Frame::Seq { node, idx: 0 });
                    return None;
                }
                Node::Act(f) => {
                    f(state, view);
                    return None;
                }
                Node::Op { emit, bind } => {
                    let op = emit(state, view);
                    if matches!(op, TaskOp::Nop) {
                        return None;
                    }
                    *pending_bind = bind.clone();
                    return Some(op);
                }
                Node::Scope { enter, body } => {
                    let (site, args) = enter(state, view);
                    stack.push(Frame::ScopeExit { site });
                    stack.push(Frame::Pending(body.clone()));
                    return Some(TaskOp::Enter { site, args });
                }
                Node::If { cond, then, els } => {
                    node = if cond(state, view) {
                        then.clone()
                    } else {
                        els.clone()
                    };
                }
                Node::For { range, .. } => {
                    let (start, end) = range(state, view);
                    stack.push(Frame::For {
                        node,
                        cur: start,
                        end,
                    });
                    return None;
                }
                Node::While { .. } => {
                    stack.push(Frame::While { node });
                    return None;
                }
                Node::Gen(f) => {
                    node = f(state, view);
                }
            }
        }
    }
}

impl<S: Clone + Send + Sync + 'static> TaskProgram for TaskInterp<S> {
    fn next(&mut self, input: OpResult, view: &TaskView<'_>) -> TaskOp {
        let TaskInterp {
            stack,
            state,
            pending_bind,
        } = self;
        if let Some(bind) = pending_bind.take() {
            bind(state, input, view);
        }
        loop {
            let Some(top) = stack.last_mut() else {
                return TaskOp::Done;
            };
            match top {
                Frame::Seq { node, idx } => {
                    let Node::Seq(items) = &*node.0 else {
                        unreachable!("Seq frame holds non-Seq node")
                    };
                    if *idx >= items.len() {
                        stack.pop();
                        continue;
                    }
                    let child = items[*idx].clone();
                    *idx += 1;
                    if let Some(op) = Self::enter(stack, pending_bind, state, child, view) {
                        return op;
                    }
                }
                Frame::For { node, cur, end } => {
                    if *cur >= *end {
                        stack.pop();
                        continue;
                    }
                    let i = *cur;
                    *cur += 1;
                    let Node::For { at, body, .. } = &*node.0.clone() else {
                        unreachable!("For frame holds non-For node")
                    };
                    at(state, i);
                    if let Some(op) = Self::enter(stack, pending_bind, state, body.clone(), view) {
                        return op;
                    }
                }
                Frame::While { node } => {
                    let Node::While { cond, body } = &*node.0.clone() else {
                        unreachable!("While frame holds non-While node")
                    };
                    if !cond(state, view) {
                        stack.pop();
                        continue;
                    }
                    if let Some(op) = Self::enter(stack, pending_bind, state, body.clone(), view) {
                        return op;
                    }
                }
                Frame::Pending(_) => {
                    let Some(Frame::Pending(node)) = stack.pop() else {
                        unreachable!()
                    };
                    if let Some(op) = Self::enter(stack, pending_bind, state, node, view) {
                        return op;
                    }
                }
                Frame::ScopeExit { site } => {
                    let site = *site;
                    stack.pop();
                    return TaskOp::Exit { site };
                }
            }
        }
    }

    fn snapshot(&self) -> Box<dyn TaskProgram> {
        Box::new(TaskInterp {
            stack: self.stack.clone(),
            state: self.state.clone(),
            pending_bind: self.pending_bind.clone(),
        })
    }
}

// ---------------------------------------------------------------------------
// TaskHarness: the engine-side driver
// ---------------------------------------------------------------------------

/// Where a suspended task is in the grant protocol: which [`Reply`] it is
/// waiting for, and what to do with it.
#[derive(Clone)]
enum Await {
    /// Waiting for the initial `Proceed` (ProcStart not yet emitted).
    Initial,
    /// Trapped at a marker threshold; on `Proceed`, continue with `Then`.
    Trap(Then),
    /// A send was submitted; the completion record still has to be
    /// emitted from the `SendDone` reply.
    SendDone {
        t0: u64,
        bytes: u32,
        site: SiteId,
        src: Rank,
        dst: Rank,
        tag: Tag,
    },
    /// A receive was submitted.
    RecvDone { t_post: u64, site: SiteId },
    /// A collective was submitted.
    CollDone {
        kind: CollKind,
        root: Rank,
        site: SiteId,
        t_enter: u64,
    },
    /// `Finished` was submitted; the engine never grants again.
    Finished,
}

/// Continuation after a trap resolves: the action the trap interrupted.
#[derive(Clone)]
enum Then {
    /// Hand `OpResult` to the program and keep stepping.
    Advance(OpResult),
    /// FnEnter was recorded; push the scope site, then advance.
    PushScope { site: SiteId },
    /// RecvPost was recorded (and trapped); now submit the receive.
    SubmitRecv {
        src: Option<Rank>,
        tag: Option<Tag>,
        t_post: u64,
        site: SiteId,
    },
    /// ProcEnd was recorded (and trapped); now submit `Finished`.
    SubmitFinished,
}

thread_local! {
    /// True while a task is being stepped inline on this thread — lets the
    /// engine's quiet-panic hook recognize simulated-process panics that
    /// do not happen on an `mpsim-p*` thread.
    static IN_TASK_STEP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current thread inside [`TaskHarness::resume`]?
pub(crate) fn in_task_step() -> bool {
    IN_TASK_STEP.with(|f| f.get())
}

/// Drives one task rank: owns the rank-local state `ProcessCtx` would own
/// (clock, fn stack, recorder handle) and converts the ops the program
/// yields into the engine's request/reply protocol, one grant at a time.
pub(crate) struct TaskHarness {
    rank: Rank,
    n_ranks: usize,
    clock: u64,
    cost: CostModel,
    sites: SiteTable,
    recorder: Arc<Mutex<Recorder>>,
    flush: FlushHandle,
    fn_stack: Vec<SiteId>,
    instr_off: bool,
    program: Box<dyn TaskProgram>,
    waiting: Await,
}

/// The checkpointable execution point of a task rank. Restoring is a
/// clone of this plus a recorder clone — no respawn, no fast-forward.
#[derive(Clone)]
pub(crate) struct TaskSnapshot {
    clock: u64,
    fn_stack: Vec<SiteId>,
    program: Box<dyn TaskProgram>,
    waiting: Await,
}

impl TaskHarness {
    pub(crate) fn new(
        rank: Rank,
        n_ranks: usize,
        cost: CostModel,
        sites: SiteTable,
        recorder: Arc<Mutex<Recorder>>,
        flush: FlushHandle,
        program: Box<dyn TaskProgram>,
    ) -> Self {
        let instr_off = recorder.lock().is_off();
        TaskHarness {
            rank,
            n_ranks,
            clock: 0,
            cost,
            sites,
            recorder,
            flush,
            fn_stack: Vec::new(),
            instr_off,
            program,
            waiting: Await::Initial,
        }
    }

    pub(crate) fn snapshot(&self) -> TaskSnapshot {
        TaskSnapshot {
            clock: self.clock,
            fn_stack: self.fn_stack.clone(),
            program: self.program.snapshot(),
            waiting: self.waiting.clone(),
        }
    }

    pub(crate) fn restore(
        snap: &TaskSnapshot,
        rank: Rank,
        n_ranks: usize,
        cost: CostModel,
        sites: SiteTable,
        recorder: Arc<Mutex<Recorder>>,
        flush: FlushHandle,
    ) -> Self {
        let instr_off = recorder.lock().is_off();
        TaskHarness {
            rank,
            n_ranks,
            clock: snap.clock,
            cost,
            sites,
            recorder,
            flush,
            fn_stack: snap.fn_stack.clone(),
            instr_off,
            program: snap.program.snapshot(),
            waiting: snap.waiting.clone(),
        }
    }

    /// Step the task with the engine's grant until it issues its next
    /// request. Panics inside the program become `Request::Panicked`,
    /// mirroring the thread backend's catch-all (no `ProcEnd` is emitted
    /// for a panicking rank there either).
    pub(crate) fn resume(&mut self, reply: Reply) -> Request {
        IN_TASK_STEP.with(|f| f.set(true));
        let out = catch_unwind(AssertUnwindSafe(|| self.step(reply)));
        IN_TASK_STEP.with(|f| f.set(false));
        match out {
            Ok(req) => req,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                Request::Panicked { message }
            }
        }
    }

    /// Observe an instrumentation record exactly as `ProcessCtx::observe`
    /// does; returns the marker when the recorder demands a trap.
    fn observe(&mut self, rec: TraceRecord) -> Option<u64> {
        if self.instr_off {
            return None;
        }
        let (marker, disposition) = self.recorder.lock().observe(rec);
        self.clock += self.cost.event_overhead;
        match disposition {
            Disposition::Trap => Some(marker),
            _ => None,
        }
    }

    fn step(&mut self, reply: Reply) -> Request {
        let mut then = match std::mem::replace(&mut self.waiting, Await::Initial) {
            Await::Initial => {
                match reply {
                    Reply::Proceed => {}
                    other => panic!("unexpected initial grant: {other:?}"),
                }
                let rec = TraceRecord::basic(self.rank, EventKind::ProcStart, 0, self.clock);
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::Advance(OpResult::None));
                        return Request::MarkerTrap { marker };
                    }
                    None => Then::Advance(OpResult::None),
                }
            }
            Await::Trap(t) => {
                match reply {
                    Reply::Proceed => {}
                    other => panic!("unexpected reply to trap: {other:?}"),
                }
                t
            }
            Await::SendDone {
                t0,
                bytes,
                site,
                src,
                dst,
                tag,
            } => {
                let (seq, t_done) = match reply {
                    Reply::SendDone { seq, t_done } => (seq, t_done),
                    other => panic!("unexpected reply to send: {other:?}"),
                };
                self.clock = t_done;
                let rec = TraceRecord::basic(self.rank, EventKind::Send, 0, t0)
                    .with_span(t0, t_done)
                    .with_site(site)
                    .with_msg(MsgInfo {
                        src,
                        dst,
                        tag,
                        bytes,
                        seq,
                    });
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::Advance(OpResult::None));
                        return Request::MarkerTrap { marker };
                    }
                    None => Then::Advance(OpResult::None),
                }
            }
            Await::RecvDone { t_post, site } => {
                let (env, t_done) = match reply {
                    Reply::RecvDone { env, t_done } => (env, t_done),
                    other => panic!("unexpected reply to recv: {other:?}"),
                };
                self.clock = t_done;
                let rec = TraceRecord::basic(self.rank, EventKind::RecvDone, 0, t_post)
                    .with_span(t_post, t_done)
                    .with_site(site)
                    .with_msg(env.msg_info());
                let msg: Message = env.into();
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::Advance(OpResult::Message(msg)));
                        return Request::MarkerTrap { marker };
                    }
                    None => Then::Advance(OpResult::Message(msg)),
                }
            }
            Await::CollDone {
                kind,
                root,
                site,
                t_enter,
            } => {
                let (result, t_done) = match reply {
                    Reply::CollDone { result, t_done } => (result, t_done),
                    other => panic!("unexpected reply to collective: {other:?}"),
                };
                self.clock = t_done;
                let rec = TraceRecord::basic(self.rank, EventKind::Collective(kind), 0, t_enter)
                    .with_span(t_enter, t_done)
                    .with_site(site)
                    .with_msg(MsgInfo {
                        src: root,
                        dst: self.rank,
                        tag: Tag(-1),
                        bytes: result.len() as u32,
                        seq: 0,
                    });
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::Advance(OpResult::Payload(result)));
                        return Request::MarkerTrap { marker };
                    }
                    None => Then::Advance(OpResult::Payload(result)),
                }
            }
            Await::Finished => panic!("task granted after Finished"),
        };
        loop {
            match then {
                Then::Advance(input) => {
                    let op = {
                        let view = TaskView {
                            rank: self.rank,
                            n_ranks: self.n_ranks,
                            sites: &self.sites,
                            fn_stack: &self.fn_stack,
                        };
                        self.program.next(input, &view)
                    };
                    match self.perform(op) {
                        Ok(next) => then = next,
                        Err(request) => return request,
                    }
                }
                Then::PushScope { site } => {
                    self.fn_stack.push(site);
                    then = Then::Advance(OpResult::None);
                }
                Then::SubmitRecv {
                    src,
                    tag,
                    t_post,
                    site,
                } => {
                    self.waiting = Await::RecvDone { t_post, site };
                    return Request::Recv {
                        spec: crate::message::MatchSpec::new(src, tag),
                        t_post,
                    };
                }
                Then::SubmitFinished => {
                    self.waiting = Await::Finished;
                    return Request::Finished { t_end: self.clock };
                }
            }
        }
    }

    /// Execute one op. `Ok(then)` continues the inner loop; `Err(req)`
    /// suspends the task (with `self.waiting` already set) and hands the
    /// request to the engine.
    fn perform(&mut self, op: TaskOp) -> Result<Then, Request> {
        match op {
            TaskOp::Nop => Ok(Then::Advance(OpResult::None)),
            TaskOp::Compute { cost_ns, site } => {
                let t0 = self.clock;
                self.clock += cost_ns;
                let t1 = self.clock;
                let rec = TraceRecord::basic(self.rank, EventKind::Compute, 0, t0)
                    .with_span(t0, t1)
                    .with_site(site);
                self.after_observe(rec, Then::Advance(OpResult::None))
            }
            TaskOp::Probe { label, value, site } => {
                let rec = TraceRecord::basic(self.rank, EventKind::Probe, 0, self.clock)
                    .with_site(site)
                    .with_args(value, 0)
                    .with_label(label);
                self.after_observe(rec, Then::Advance(OpResult::None))
            }
            TaskOp::Enter { site, args } => {
                if self.instr_off {
                    return Ok(Then::Advance(OpResult::None));
                }
                let rec = TraceRecord::basic(self.rank, EventKind::FnEnter, 0, self.clock)
                    .with_site(site)
                    .with_args(args[0], args[1]);
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::PushScope { site });
                        Err(Request::MarkerTrap { marker })
                    }
                    None => {
                        self.fn_stack.push(site);
                        Ok(Then::Advance(OpResult::None))
                    }
                }
            }
            TaskOp::Exit { site } => {
                if self.instr_off {
                    return Ok(Then::Advance(OpResult::None));
                }
                self.fn_stack.pop();
                let rec =
                    TraceRecord::basic(self.rank, EventKind::FnExit, 0, self.clock).with_site(site);
                self.after_observe(rec, Then::Advance(OpResult::None))
            }
            TaskOp::Send {
                dst,
                tag,
                payload,
                site,
                mode,
            } => {
                assert!(dst.ix() < self.n_ranks, "send to nonexistent {dst:?}");
                let t0 = self.clock;
                let bytes = payload.len() as u32;
                let send_marker = if self.instr_off {
                    0
                } else {
                    self.recorder.lock().marker() + 1
                };
                self.waiting = Await::SendDone {
                    t0,
                    bytes,
                    site,
                    src: self.rank,
                    dst,
                    tag,
                };
                Err(Request::Send {
                    dst,
                    tag,
                    payload,
                    t0,
                    send_marker,
                    site,
                    mode,
                })
            }
            TaskOp::Recv { src, tag, site } => {
                let t_post = self.clock;
                let rec = TraceRecord::basic(self.rank, EventKind::RecvPost, 0, t_post)
                    .with_site(site)
                    .with_args(
                        src.map(|r| r.0 as i64).unwrap_or(-1),
                        tag.map(|t| t.0 as i64).unwrap_or(-1),
                    );
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::SubmitRecv {
                            src,
                            tag,
                            t_post,
                            site,
                        });
                        Err(Request::MarkerTrap { marker })
                    }
                    None => {
                        self.waiting = Await::RecvDone { t_post, site };
                        Err(Request::Recv {
                            spec: crate::message::MatchSpec::new(src, tag),
                            t_post,
                        })
                    }
                }
            }
            TaskOp::Collective {
                kind,
                root,
                payload,
                op,
                site,
            } => {
                let t_enter = self.clock;
                self.waiting = Await::CollDone {
                    kind,
                    root,
                    site,
                    t_enter,
                };
                Err(Request::Collective {
                    kind,
                    root,
                    payload,
                    op,
                    t_enter,
                })
            }
            TaskOp::SetTracing(on) => {
                self.recorder.lock().set_tracing_enabled(on);
                Ok(Then::Advance(OpResult::None))
            }
            TaskOp::FlushTrace => {
                self.recorder.lock().flush_into(&self.flush);
                Ok(Then::Advance(OpResult::None))
            }
            TaskOp::Done => {
                let rec = TraceRecord::basic(self.rank, EventKind::ProcEnd, 0, self.clock);
                match self.observe(rec) {
                    Some(marker) => {
                        self.waiting = Await::Trap(Then::SubmitFinished);
                        Err(Request::MarkerTrap { marker })
                    }
                    None => {
                        self.waiting = Await::Finished;
                        Err(Request::Finished { t_end: self.clock })
                    }
                }
            }
        }
    }

    fn after_observe(&mut self, rec: TraceRecord, then: Then) -> Result<Then, Request> {
        match self.observe(rec) {
            Some(marker) => {
                self.waiting = Await::Trap(then);
                Err(Request::MarkerTrap { marker })
            }
            None => Ok(then),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct St {
        i: i64,
        log: Vec<i64>,
    }

    fn dummy_view_run(prog: Prog<St>) -> Vec<i64> {
        let sites = SiteTable::new();
        let fn_stack = Vec::new();
        let view = TaskView {
            rank: Rank(0),
            n_ranks: 1,
            sites: &sites,
            fn_stack: &fn_stack,
        };
        let mut interp = TaskInterp::new(St::default(), prog);
        loop {
            match interp.next(OpResult::None, &view) {
                TaskOp::Done => break,
                TaskOp::Nop => {}
                _ => panic!("pure-control program yielded an op"),
            }
        }
        interp.state.log
    }

    #[test]
    fn seq_and_for_run_in_order() {
        let prog = Prog::seq(vec![
            Prog::act(|s: &mut St, _| s.log.push(-1)),
            Prog::for_range(
                |_, _| (0, 3),
                |s, i| s.i = i,
                Prog::act(|s: &mut St, _| s.log.push(s.i)),
            ),
            Prog::act(|s: &mut St, _| s.log.push(-2)),
        ]);
        assert_eq!(dummy_view_run(prog), vec![-1, 0, 1, 2, -2]);
    }

    #[test]
    fn while_and_if_branch() {
        let prog = Prog::seq(vec![Prog::while_loop(
            |s: &St, _| s.i < 4,
            Prog::seq(vec![
                Prog::if_else(
                    |s: &St, _| s.i % 2 == 0,
                    Prog::act(|s: &mut St, _| s.log.push(s.i * 10)),
                    Prog::act(|s: &mut St, _| s.log.push(s.i)),
                ),
                Prog::act(|s: &mut St, _| s.i += 1),
            ]),
        )]);
        assert_eq!(dummy_view_run(prog), vec![0, 1, 20, 3]);
    }

    #[test]
    fn gen_recursion_descends() {
        // Countdown via runtime-generated subtrees.
        fn countdown() -> Prog<St> {
            Prog::gen(|s: &mut St, _| {
                if s.i <= 0 {
                    Prog::seq(vec![])
                } else {
                    Prog::seq(vec![
                        Prog::act(|s: &mut St, _| {
                            s.log.push(s.i);
                            s.i -= 1;
                        }),
                        countdown(),
                    ])
                }
            })
        }
        let prog = Prog::seq(vec![Prog::act(|s: &mut St, _| s.i = 3), countdown()]);
        assert_eq!(dummy_view_run(prog), vec![3, 2, 1]);
    }

    #[test]
    fn interp_snapshot_resumes_independently() {
        let sites = SiteTable::new();
        let fn_stack = Vec::new();
        let view = TaskView {
            rank: Rank(0),
            n_ranks: 1,
            sites: &sites,
            fn_stack: &fn_stack,
        };
        let prog = Prog::for_range(
            |_, _| (0, 5),
            |s, i| s.i = i,
            Prog::seq(vec![
                Prog::act(|s: &mut St, _| s.log.push(s.i)),
                Prog::op(|s: &mut St, _| TaskOp::Compute {
                    cost_ns: s.i as u64,
                    site: SiteId(0),
                }),
            ]),
        );
        let mut a = TaskInterp::new(St::default(), prog);
        // Run two yields, snapshot, then check both copies agree forever.
        a.next(OpResult::None, &view);
        a.next(OpResult::None, &view);
        let mut b_box = a.snapshot();
        loop {
            let va = a.next(OpResult::None, &view);
            let vb = b_box.next(OpResult::None, &view);
            match (&va, &vb) {
                (TaskOp::Done, TaskOp::Done) => break,
                (TaskOp::Compute { cost_ns: ca, .. }, TaskOp::Compute { cost_ns: cb, .. }) => {
                    assert_eq!(ca, cb)
                }
                _ => panic!("snapshot diverged from original"),
            }
        }
        assert_eq!(a.state.log, vec![0, 1, 2, 3, 4]);
    }
}
