//! Fault injection plane.
//!
//! The explorer perturbs executions not only through scheduling but through
//! *faults*: message delays (legal under MPI semantics — they only shift
//! arrival times, which biases wildcard matching), and injected process
//! crashes or hangs (the process goes silent after a set number of runtime
//! operations). A [`FaultPlan`] is attached to an
//! [`EngineConfig`](crate::EngineConfig); the engine consults it while
//! servicing requests. Faulted processes are not themselves reported as
//! failures — the observable signal is what their silence does to their
//! peers (starvation, orphaned receives, broken collectives).

use tracedbg_trace::schedule::Fault;
use tracedbg_trace::Rank;

/// What kind of silence a faulted process fell into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Terminated abruptly: counts as gone for run-completion purposes.
    Crash,
    /// Alive but never progressing: the run can never complete.
    Hang,
}

/// An immutable set of faults to inject into one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Total extra latency to add to message `seq` on the `src -> dst`
    /// channel.
    pub fn delay(&self, src: Rank, dst: Rank, seq: u64) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Delay {
                    src: s,
                    dst: d,
                    nth,
                    extra_ns,
                } if *s == src && *d == dst && *nth == seq => Some(*extra_ns),
                _ => None,
            })
            .sum()
    }

    /// If `rank` is scheduled to go silent, the operation threshold and the
    /// kind of silence. The process is cut off when it submits its
    /// `after_ops + 1`-th runtime operation.
    pub fn silence_for(&self, rank: Rank) -> Option<(u64, FaultKind)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { rank: r, after_ops } if *r == rank => {
                    Some((*after_ops, FaultKind::Crash))
                }
                Fault::Hang { rank: r, after_ops } if *r == rank => {
                    Some((*after_ops, FaultKind::Hang))
                }
                _ => None,
            })
            .min_by_key(|(ops, _)| *ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_accumulate_per_message() {
        let plan = FaultPlan::new(vec![
            Fault::Delay {
                src: Rank(1),
                dst: Rank(0),
                nth: 0,
                extra_ns: 100,
            },
            Fault::Delay {
                src: Rank(1),
                dst: Rank(0),
                nth: 0,
                extra_ns: 50,
            },
            Fault::Delay {
                src: Rank(1),
                dst: Rank(0),
                nth: 1,
                extra_ns: 7,
            },
        ]);
        assert_eq!(plan.delay(Rank(1), Rank(0), 0), 150);
        assert_eq!(plan.delay(Rank(1), Rank(0), 1), 7);
        assert_eq!(plan.delay(Rank(1), Rank(0), 2), 0);
        assert_eq!(plan.delay(Rank(0), Rank(1), 0), 0);
    }

    #[test]
    fn earliest_silence_wins() {
        let plan = FaultPlan::new(vec![
            Fault::Hang {
                rank: Rank(2),
                after_ops: 9,
            },
            Fault::Crash {
                rank: Rank(2),
                after_ops: 3,
            },
        ]);
        assert_eq!(plan.silence_for(Rank(2)), Some((3, FaultKind::Crash)));
        assert_eq!(plan.silence_for(Rank(0)), None);
    }
}
