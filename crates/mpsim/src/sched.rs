//! Turn scheduling policies.
//!
//! The engine always runs exactly one process at a time; the policy decides
//! which runnable process gets the next turn. `RoundRobin` gives the
//! deterministic baseline; `Seeded` perturbs both turn order and wildcard
//! message choice, standing in for real-cluster timing variation so that
//! replay (which pins wildcard matches) has actual nondeterminism to
//! defeat; `Scripted` follows a recorded decision sequence exactly — the
//! explorer's schedule artifacts replay through it.

use crate::mailbox::Candidate;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tracedbg_trace::schedule::Decision;
use tracedbg_trace::Rank;

/// Scheduling policy.
#[derive(Clone, Debug, Default)]
pub enum SchedPolicy {
    /// Deterministic: cycle through ranks starting after the last granted.
    #[default]
    RoundRobin,
    /// Seeded pseudo-random choice among runnable processes and among
    /// wildcard match candidates.
    Seeded(u64),
    /// Follow a recorded decision sequence; once it is exhausted, fall back
    /// to deterministic round-robin (so a shrunk prefix is still a complete
    /// schedule). If a scripted decision cannot be honoured the scheduler
    /// abandons the script and flags [`Scheduler::diverged`].
    Scripted(Vec<Decision>),
}

/// Instantiated scheduler state.
#[derive(Clone)]
pub struct Scheduler {
    policy_is_random: bool,
    rng: ChaCha8Rng,
    last: usize,
    n: usize,
    script: Vec<Decision>,
    cursor: usize,
    diverged: bool,
}

impl Scheduler {
    pub fn new(policy: &SchedPolicy, n_ranks: usize) -> Self {
        let (policy_is_random, seed, script) = match policy {
            SchedPolicy::RoundRobin => (false, 0, Vec::new()),
            SchedPolicy::Seeded(s) => (true, *s, Vec::new()),
            SchedPolicy::Scripted(d) => (false, 0, d.clone()),
        };
        Scheduler {
            policy_is_random,
            rng: ChaCha8Rng::seed_from_u64(seed),
            last: n_ranks.saturating_sub(1),
            n: n_ranks,
            script,
            cursor: 0,
            diverged: false,
        }
    }

    /// Did a scripted decision fail to apply? (Exhausting the script is not
    /// divergence — the round-robin tail is part of the artifact contract.)
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// How many scripted decisions have been consumed.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Swap in a (typically longer) script with the cursor already advanced
    /// past a shared prefix — the explorer forks a checkpointed prefix into
    /// sibling schedules this way. `last` and the RNG are untouched: every
    /// schedule sharing the prefix reached this state identically.
    pub fn set_script(&mut self, script: Vec<Decision>, cursor: usize) {
        assert!(cursor <= script.len());
        self.script = script;
        self.cursor = cursor;
        self.diverged = false;
    }

    /// Next scripted decision, unless the script diverged or ran out.
    fn scripted_next(&self) -> Option<Decision> {
        if self.diverged {
            None
        } else {
            self.script.get(self.cursor).copied()
        }
    }

    /// Choose the next process among `runnable` (must be non-empty).
    pub fn pick(&mut self, runnable: &[Rank]) -> Rank {
        assert!(!runnable.is_empty());
        if let Some(d) = self.scripted_next() {
            match d {
                Decision::Turn { rank } if runnable.contains(&rank) => {
                    self.cursor += 1;
                    self.last = rank.ix();
                    return rank;
                }
                _ => self.diverged = true,
            }
        }
        if self.policy_is_random {
            let i = self.rng.gen_range(0..runnable.len());
            runnable[i]
        } else {
            // First runnable strictly after `last` in cyclic order.
            let mut best: Option<(usize, Rank)> = None;
            for &r in runnable {
                let dist = (r.ix() + self.n - (self.last + 1) % self.n) % self.n;
                match best {
                    Some((d, _)) if d <= dist => {}
                    _ => best = Some((dist, r)),
                }
            }
            let (_, r) = best.unwrap();
            self.last = r.ix();
            r
        }
    }

    /// Choose among the match candidates of a receive on `dst`.
    /// Deterministic policy: earliest arrival, then lowest source rank.
    /// Random policy: uniform. Scripted: the recorded `(src, seq)`.
    pub fn pick_candidate(&mut self, dst: Rank, cands: &[Candidate]) -> usize {
        assert!(!cands.is_empty());
        if let Some(d) = self.scripted_next() {
            match d {
                Decision::Match { dst: sd, src, seq } if sd == dst => {
                    if let Some(i) = cands.iter().position(|c| c.src == src && c.seq == seq) {
                        self.cursor += 1;
                        return i;
                    }
                    self.diverged = true;
                }
                _ => self.diverged = true,
            }
        }
        if self.policy_is_random {
            self.rng.gen_range(0..cands.len())
        } else {
            let mut best = 0;
            for (i, c) in cands.iter().enumerate() {
                if (c.arrival, c.src) < (cands[best].arrival, cands[best].src) {
                    best = i;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(src: u32, arrival: u64, seq: u64) -> Candidate {
        Candidate {
            src: Rank(src),
            pos: 0,
            arrival,
            seq,
        }
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut s = Scheduler::new(&SchedPolicy::RoundRobin, 4);
        let all: Vec<Rank> = (0..4u32).map(Rank).collect();
        let picks: Vec<u32> = (0..8).map(|_| s.pick(&all).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_non_runnable() {
        let mut s = Scheduler::new(&SchedPolicy::RoundRobin, 4);
        assert_eq!(s.pick(&[Rank(2), Rank(3)]), Rank(2));
        assert_eq!(s.pick(&[Rank(1), Rank(3)]), Rank(3));
        assert_eq!(s.pick(&[Rank(1), Rank(2)]), Rank(1));
    }

    #[test]
    fn seeded_is_reproducible() {
        let all: Vec<Rank> = (0..6u32).map(Rank).collect();
        let run = |seed| {
            let mut s = Scheduler::new(&SchedPolicy::Seeded(seed), 6);
            (0..20).map(|_| s.pick(&all).0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn deterministic_candidate_pick_prefers_earliest_then_lowest() {
        let mut s = Scheduler::new(&SchedPolicy::RoundRobin, 4);
        let cands = vec![cand(0, 20, 0), cand(3, 10, 0), cand(1, 10, 0)];
        assert_eq!(s.pick_candidate(Rank(9), &cands), 2);
    }

    #[test]
    fn scripted_follows_then_falls_back_to_round_robin() {
        let script = vec![
            Decision::Turn { rank: Rank(2) },
            Decision::Match {
                dst: Rank(0),
                src: Rank(1),
                seq: 5,
            },
        ];
        let mut s = Scheduler::new(&SchedPolicy::Scripted(script), 3);
        let all: Vec<Rank> = (0..3u32).map(Rank).collect();
        assert_eq!(s.pick(&all), Rank(2));
        let cands = vec![cand(2, 10, 0), cand(1, 20, 5)];
        assert_eq!(s.pick_candidate(Rank(0), &cands), 1);
        assert!(!s.diverged());
        assert_eq!(s.cursor(), 2);
        // Script exhausted: deterministic round-robin continues after P2.
        assert_eq!(s.pick(&all), Rank(0));
        assert!(!s.diverged(), "exhaustion is not divergence");
    }

    #[test]
    fn scripted_divergence_flagged_and_abandoned() {
        let script = vec![
            Decision::Turn { rank: Rank(2) },
            Decision::Turn { rank: Rank(0) },
        ];
        let mut s = Scheduler::new(&SchedPolicy::Scripted(script), 3);
        // P2 is not runnable: the script cannot be honoured.
        assert_eq!(s.pick(&[Rank(0), Rank(1)]), Rank(0));
        assert!(s.diverged());
        // The rest of the script is ignored; fallback stays deterministic.
        assert_eq!(s.pick(&[Rank(0), Rank(1)]), Rank(1));
        assert_eq!(s.cursor(), 0);
    }
}
