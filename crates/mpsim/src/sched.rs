//! Turn scheduling policies.
//!
//! The engine always runs exactly one process at a time; the policy decides
//! which runnable process gets the next turn. `RoundRobin` gives the
//! deterministic baseline; `Seeded` perturbs both turn order and wildcard
//! message choice, standing in for real-cluster timing variation so that
//! replay (which pins wildcard matches) has actual nondeterminism to
//! defeat.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tracedbg_trace::Rank;

/// Scheduling policy.
#[derive(Clone, Debug, Default)]
pub enum SchedPolicy {
    /// Deterministic: cycle through ranks starting after the last granted.
    #[default]
    RoundRobin,
    /// Seeded pseudo-random choice among runnable processes and among
    /// wildcard match candidates.
    Seeded(u64),
}

/// Instantiated scheduler state.
pub struct Scheduler {
    policy_is_random: bool,
    rng: ChaCha8Rng,
    last: usize,
    n: usize,
}

impl Scheduler {
    pub fn new(policy: &SchedPolicy, n_ranks: usize) -> Self {
        let (policy_is_random, seed) = match policy {
            SchedPolicy::RoundRobin => (false, 0),
            SchedPolicy::Seeded(s) => (true, *s),
        };
        Scheduler {
            policy_is_random,
            rng: ChaCha8Rng::seed_from_u64(seed),
            last: n_ranks.saturating_sub(1),
            n: n_ranks,
        }
    }

    /// Choose the next process among `runnable` (must be non-empty).
    pub fn pick(&mut self, runnable: &[Rank]) -> Rank {
        assert!(!runnable.is_empty());
        if self.policy_is_random {
            let i = self.rng.gen_range(0..runnable.len());
            runnable[i]
        } else {
            // First runnable strictly after `last` in cyclic order.
            let mut best: Option<(usize, Rank)> = None;
            for &r in runnable {
                let dist = (r.ix() + self.n - (self.last + 1) % self.n) % self.n;
                match best {
                    Some((d, _)) if d <= dist => {}
                    _ => best = Some((dist, r)),
                }
            }
            let (_, r) = best.unwrap();
            self.last = r.ix();
            r
        }
    }

    /// Choose among wildcard receive candidates, given their `(arrival,
    /// src)` keys. Deterministic policy: earliest arrival, then lowest
    /// rank. Random policy: uniform among candidates.
    pub fn pick_candidate(&mut self, keys: &[(u64, Rank)]) -> usize {
        assert!(!keys.is_empty());
        if self.policy_is_random {
            self.rng.gen_range(0..keys.len())
        } else {
            let mut best = 0;
            for (i, k) in keys.iter().enumerate() {
                if *k < keys[best] {
                    best = i;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_fairly() {
        let mut s = Scheduler::new(&SchedPolicy::RoundRobin, 4);
        let all: Vec<Rank> = (0..4u32).map(Rank).collect();
        let picks: Vec<u32> = (0..8).map(|_| s.pick(&all).0).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_non_runnable() {
        let mut s = Scheduler::new(&SchedPolicy::RoundRobin, 4);
        assert_eq!(s.pick(&[Rank(2), Rank(3)]), Rank(2));
        assert_eq!(s.pick(&[Rank(1), Rank(3)]), Rank(3));
        assert_eq!(s.pick(&[Rank(1), Rank(2)]), Rank(1));
    }

    #[test]
    fn seeded_is_reproducible() {
        let all: Vec<Rank> = (0..6u32).map(Rank).collect();
        let run = |seed| {
            let mut s = Scheduler::new(&SchedPolicy::Seeded(seed), 6);
            (0..20).map(|_| s.pick(&all).0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn deterministic_candidate_pick_prefers_earliest_then_lowest() {
        let mut s = Scheduler::new(&SchedPolicy::RoundRobin, 4);
        let keys = vec![(20, Rank(0)), (10, Rank(3)), (10, Rank(1))];
        assert_eq!(s.pick_candidate(&keys), 2);
    }
}
