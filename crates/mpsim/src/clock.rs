//! Simulated time.
//!
//! Each process carries a local clock (simulated nanoseconds) advanced by a
//! [`CostModel`]. Message arrival is sender completion plus latency; a
//! receive completes at `max(post time, arrival) + overhead`. Timestamps
//! therefore respect causality (no message is received before it is sent —
//! the property §4.1 derives breakpoint consistency from) and are *schedule
//! independent*: they depend only on local work and message matching, so a
//! faithful replay reproduces the time-space diagram exactly.

use serde::{Deserialize, Serialize};

/// Simulated durations of runtime operations, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed local cost of a send call.
    pub send_overhead: u64,
    /// Fixed local cost of completing a receive.
    pub recv_overhead: u64,
    /// Network latency from send completion to availability at the
    /// destination.
    pub latency: u64,
    /// Additional per-byte wire cost added to latency.
    pub byte_cost_num: u64,
    /// ... as `byte_cost_num / byte_cost_den` ns per byte.
    pub byte_cost_den: u64,
    /// Cost of one instrumentation event (models monitor overhead in the
    /// simulated timeline; 0 = free instrumentation).
    pub event_overhead: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Loosely modeled on a late-90s workstation cluster: ~50µs latency,
        // ~10MB/s effective bandwidth (100ns/byte), microsecond overheads.
        CostModel {
            send_overhead: 2_000,
            recv_overhead: 2_000,
            latency: 50_000,
            byte_cost_num: 100,
            byte_cost_den: 1,
            event_overhead: 0,
        }
    }
}

impl CostModel {
    /// A zero-cost model (pure causal ordering; useful in tests).
    pub fn free() -> Self {
        CostModel {
            send_overhead: 0,
            recv_overhead: 0,
            latency: 0,
            byte_cost_num: 0,
            byte_cost_den: 1,
            event_overhead: 0,
        }
    }

    /// Wire time for a message of `bytes` bytes.
    pub fn wire_time(&self, bytes: usize) -> u64 {
        self.latency + (bytes as u64 * self.byte_cost_num) / self.byte_cost_den.max(1)
    }

    /// Sender-side completion time of a send starting at `t`.
    pub fn send_done(&self, t: u64) -> u64 {
        t + self.send_overhead
    }

    /// Arrival time at the destination for a send completing at `t_done`.
    pub fn arrival(&self, t_done: u64, bytes: usize) -> u64 {
        t_done + self.wire_time(bytes)
    }

    /// Completion time of a receive posted at `t_post` for a message
    /// arriving at `arrival`.
    pub fn recv_done(&self, t_post: u64, arrival: u64) -> u64 {
        t_post.max(arrival) + self.recv_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_causal() {
        let m = CostModel::default();
        let t_send_done = m.send_done(1_000);
        let arr = m.arrival(t_send_done, 1024);
        let t_recv = m.recv_done(0, arr);
        assert!(t_recv > t_send_done, "recv must complete after send");
        assert!(arr >= t_send_done + m.latency);
    }

    #[test]
    fn recv_waits_for_late_message() {
        let m = CostModel::free();
        assert_eq!(m.recv_done(100, 50), 100);
        assert_eq!(m.recv_done(50, 100), 100);
    }

    #[test]
    fn wire_time_scales_with_bytes() {
        let m = CostModel::default();
        assert!(m.wire_time(1 << 20) > m.wire_time(1));
        let f = CostModel::free();
        assert_eq!(f.wire_time(1 << 20), 0);
    }
}
