//! Runtime deadlock detection.
//!
//! When the engine finds no runnable, no trapped, and at least one blocked
//! process, the run cannot make progress. The report captures each blocked
//! process's wait and the wait-for cycle if one exists — "the debugger is
//! also able to detect deadlocks due to circular dependency in sends or
//! receives" (§4.4). Figure 5's Strassen bug manifests here as the cycle
//! {0, 7}.

use crate::message::MatchSpec;
use std::fmt;
use tracedbg_trace::Rank;

/// One blocked process's wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitForEdge {
    pub waiter: Rank,
    /// The specific source being waited on (`None` for a wildcard receive,
    /// which waits on "anyone").
    pub awaited: Option<Rank>,
    /// Marker of the blocked receive post.
    pub marker: u64,
}

/// Why and where the run stopped making progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// All blocked processes with their waits.
    pub waits: Vec<WaitForEdge>,
    /// Ranks on a circular wait (empty when the stall is not a cycle, e.g.
    /// a process waiting for a message nobody will ever send).
    pub cycle: Vec<Rank>,
}

impl DeadlockReport {
    /// Build a report from the engine's blocked set.
    pub fn analyze(blocked: &[(Rank, MatchSpec, u64)]) -> Self {
        let waits: Vec<WaitForEdge> = blocked
            .iter()
            .map(|(r, spec, marker)| WaitForEdge {
                waiter: *r,
                awaited: spec.forced.map(|(s, _)| s).or(spec.src),
                marker: *marker,
            })
            .collect();
        let cycle = find_cycle(&waits);
        DeadlockReport { waits, cycle }
    }

    pub fn blocked_ranks(&self) -> Vec<Rank> {
        self.waits.iter().map(|w| w.waiter).collect()
    }

    pub fn is_cyclic(&self) -> bool {
        !self.cycle.is_empty()
    }
}

/// Find a cycle among specific-source waits (wildcards cannot close a
/// cycle: they can be satisfied by any future sender).
fn find_cycle(waits: &[WaitForEdge]) -> Vec<Rank> {
    use std::collections::HashMap;
    let edge: HashMap<Rank, Rank> = waits
        .iter()
        .filter_map(|w| w.awaited.map(|a| (w.waiter, a)))
        .collect();
    // Walk from each node; a walk that returns to a visited-on-this-walk
    // node inside the blocked set is a cycle.
    for &start in edge.keys() {
        let mut path = vec![start];
        let mut cur = start;
        #[allow(clippy::while_let_loop)] // the None arm documents "walked out of the blocked set"
        loop {
            match edge.get(&cur) {
                Some(&next) => {
                    if let Some(pos) = path.iter().position(|&r| r == next) {
                        let mut cyc = path[pos..].to_vec();
                        cyc.sort();
                        return cyc;
                    }
                    path.push(next);
                    cur = next;
                }
                None => break, // walked out of the blocked set
            }
        }
    }
    Vec::new()
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "deadlock: {} blocked process(es)", self.waits.len())?;
        for w in &self.waits {
            match w.awaited {
                Some(a) => writeln!(
                    f,
                    "  {:?} blocked in receive from {:?} (marker {})",
                    w.waiter, a, w.marker
                )?,
                None => writeln!(
                    f,
                    "  {:?} blocked in wildcard receive (marker {})",
                    w.waiter, w.marker
                )?,
            }
        }
        if self.is_cyclic() {
            write!(f, "  circular wait: ")?;
            for (i, r) in self.cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, " <-> ")?;
                }
                write!(f, "{r:?}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: Option<u32>) -> MatchSpec {
        MatchSpec::new(src.map(Rank), None)
    }

    #[test]
    fn two_cycle_detected() {
        // The Figure 5 shape: 0 waits on 7, 7 waits on 0.
        let blocked = vec![(Rank(0), spec(Some(7)), 10), (Rank(7), spec(Some(0)), 12)];
        let rep = DeadlockReport::analyze(&blocked);
        assert!(rep.is_cyclic());
        assert_eq!(rep.cycle, vec![Rank(0), Rank(7)]);
        let s = format!("{rep}");
        assert!(s.contains("circular wait"), "{s}");
    }

    #[test]
    fn chain_without_cycle() {
        // 1 waits on 2, 2 waits on 3, 3 not blocked (sender just absent).
        let blocked = vec![(Rank(1), spec(Some(2)), 1), (Rank(2), spec(Some(3)), 1)];
        let rep = DeadlockReport::analyze(&blocked);
        assert!(!rep.is_cyclic());
        assert_eq!(rep.blocked_ranks(), vec![Rank(1), Rank(2)]);
    }

    #[test]
    fn wildcard_does_not_close_cycle() {
        let blocked = vec![(Rank(0), spec(Some(1)), 1), (Rank(1), spec(None), 1)];
        let rep = DeadlockReport::analyze(&blocked);
        assert!(!rep.is_cyclic());
    }

    #[test]
    fn three_cycle() {
        let blocked = vec![
            (Rank(0), spec(Some(1)), 1),
            (Rank(1), spec(Some(2)), 1),
            (Rank(2), spec(Some(0)), 1),
        ];
        let rep = DeadlockReport::analyze(&blocked);
        assert_eq!(rep.cycle, vec![Rank(0), Rank(1), Rank(2)]);
    }

    #[test]
    fn self_wait_is_a_cycle() {
        let blocked = vec![(Rank(3), spec(Some(3)), 1)];
        let rep = DeadlockReport::analyze(&blocked);
        assert_eq!(rep.cycle, vec![Rank(3)]);
    }
}
