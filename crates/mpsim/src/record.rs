//! Recording and forcing of receive matches (§4.2).
//!
//! "In a replay, the behavior of nondeterministic statements (such as
//! statements using the MPI_ANY_SOURCE wild card) can be controlled by p2d2
//! with the information available in the program trace. This ensures that
//! the replay has identical event causality with the original program
//! execution."
//!
//! The engine always records, for each completed receive, the matched
//! `(source, tag, sequence)` triple in program order. A [`ReplayLog`] built
//! from that recording pins each receive of the re-execution to the same
//! message.

use serde::{Deserialize, Serialize};
use tracedbg_trace::{Rank, Tag};

/// One recorded receive match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedMatch {
    pub src: Rank,
    pub tag: Tag,
    /// Per-(src, receiver) send sequence number.
    pub seq: u64,
}

/// Accumulates matches during a recorded run, per receiver in program order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MatchRecorder {
    per_rank: Vec<Vec<RecordedMatch>>,
}

impl MatchRecorder {
    pub fn new(n_ranks: usize) -> Self {
        MatchRecorder {
            per_rank: vec![Vec::new(); n_ranks],
        }
    }

    pub fn record(&mut self, receiver: Rank, m: RecordedMatch) {
        self.per_rank[receiver.ix()].push(m);
    }

    pub fn matches_of(&self, receiver: Rank) -> &[RecordedMatch] {
        &self.per_rank[receiver.ix()]
    }

    pub fn total(&self) -> usize {
        self.per_rank.iter().map(|v| v.len()).sum()
    }

    /// Freeze into a replayable log.
    pub fn into_log(self) -> ReplayLog {
        ReplayLog {
            per_rank: self.per_rank,
            cursor: Vec::new(),
        }
    }
}

/// A frozen match history driving a replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayLog {
    per_rank: Vec<Vec<RecordedMatch>>,
    #[serde(skip)]
    cursor: Vec<usize>,
}

impl ReplayLog {
    /// Prepare cursors for a fresh replay.
    pub fn reset(&mut self) {
        self.cursor = vec![0; self.per_rank.len()];
    }

    /// The forced match for `receiver`'s next receive, advancing the
    /// cursor. `None` when the log is exhausted for that rank (the replay
    /// ran past the recorded history — receives become free again).
    pub fn next_for(&mut self, receiver: Rank) -> Option<RecordedMatch> {
        if self.cursor.is_empty() {
            self.reset();
        }
        let c = &mut self.cursor[receiver.ix()];
        let m = self.per_rank[receiver.ix()].get(*c).copied();
        if m.is_some() {
            *c += 1;
        }
        m
    }

    /// Recorded receive count for a rank.
    pub fn len_for(&self, receiver: Rank) -> usize {
        self.per_rank[receiver.ix()].len()
    }

    /// Position the cursors as if `counts[r]` matches were already consumed
    /// per rank — a restored checkpoint pins only the *delta* of receives
    /// still ahead of the snapshot point.
    pub fn advance_to(&mut self, counts: &[usize]) {
        assert_eq!(counts.len(), self.per_rank.len());
        self.cursor = counts.to_vec();
    }

    pub fn n_ranks(&self) -> usize {
        self.per_rank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_replay_in_order() {
        let mut rec = MatchRecorder::new(2);
        rec.record(
            Rank(1),
            RecordedMatch {
                src: Rank(0),
                tag: Tag(5),
                seq: 0,
            },
        );
        rec.record(
            Rank(1),
            RecordedMatch {
                src: Rank(0),
                tag: Tag(5),
                seq: 1,
            },
        );
        assert_eq!(rec.total(), 2);
        let mut log = rec.into_log();
        log.reset();
        assert_eq!(log.next_for(Rank(1)).unwrap().seq, 0);
        assert_eq!(log.next_for(Rank(1)).unwrap().seq, 1);
        assert!(log.next_for(Rank(1)).is_none(), "exhausted");
        assert!(log.next_for(Rank(0)).is_none(), "rank 0 recorded nothing");
    }

    #[test]
    fn serde_roundtrip() {
        let mut rec = MatchRecorder::new(1);
        rec.record(
            Rank(0),
            RecordedMatch {
                src: Rank(0),
                tag: Tag(1),
                seq: 9,
            },
        );
        let log = rec.into_log();
        let json = serde_json::to_string(&log).unwrap();
        let mut back: ReplayLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_ranks(), 1);
        assert_eq!(back.next_for(Rank(0)).unwrap().seq, 9);
    }
}
