//! Engine edge cases: self-sends, wildcards, scale, empty payloads,
//! flush-on-demand, and trap interactions.

use tracedbg_mpsim::{
    CostModel, Engine, EngineConfig, Payload, ProgramFn, RecorderConfig, RunOutcome, SchedPolicy,
};
use tracedbg_trace::{EventKind, Marker, Rank, Tag};

fn cfg() -> EngineConfig {
    EngineConfig::with_recorder(RecorderConfig::full())
}

#[test]
fn self_send_and_receive() {
    // The buggy Strassen sends to rank 0 itself; the runtime must treat
    // self-sends as ordinary buffered messages.
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 1, "selfie");
        ctx.send(Rank(0), Tag(1), Payload::from_i64(9), s);
        let m = ctx.recv_from(Rank(0), Tag(1), s);
        assert_eq!(m.payload.to_i64(), Some(9));
    });
    let mut e = Engine::launch(cfg(), vec![p0]);
    assert!(e.run().is_completed());
    let store = e.trace_store();
    assert_eq!(store.of_kind(EventKind::Send).len(), 1);
    assert_eq!(store.of_kind(EventKind::RecvDone).len(), 1);
}

#[test]
fn any_tag_receive_takes_oldest() {
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 2, "p0");
        ctx.send(Rank(1), Tag(9), Payload::from_i64(1), s);
        ctx.send(Rank(1), Tag(5), Payload::from_i64(2), s);
    });
    let p1: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 3, "p1");
        let a = ctx.recv(Some(Rank(0)), None, s);
        let b = ctx.recv(Some(Rank(0)), None, s);
        assert_eq!(a.tag, Tag(9), "ANY_TAG takes the queue head");
        assert_eq!(b.tag, Tag(5));
    });
    let mut e = Engine::launch(cfg(), vec![p0, p1]);
    assert!(e.run().is_completed());
}

#[test]
fn empty_payload_messages() {
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 4, "p0");
        ctx.send(Rank(1), Tag(0), Payload::empty(), s);
    });
    let p1: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 5, "p1");
        let m = ctx.recv_from(Rank(0), Tag(0), s);
        assert!(m.payload.is_empty());
    });
    let mut e = Engine::launch(cfg(), vec![p0, p1]);
    assert!(e.run().is_completed());
}

#[test]
fn sixteen_rank_all_to_one() {
    // Scale check: 15 senders funnel into one wildcard receiver.
    let recv: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 6, "sink");
        let mut sum = 0i64;
        for _ in 0..15 {
            let m = ctx.recv_any(Some(Tag(1)), s);
            sum += m.payload.to_i64().unwrap();
        }
        assert_eq!(sum, (1..16).sum::<i64>());
    });
    let mut progs: Vec<ProgramFn> = vec![recv];
    for r in 1..16u32 {
        progs.push(Box::new(move |ctx| {
            let s = ctx.site("e.rs", 7, "source");
            ctx.compute((r as u64) * 1000, s);
            ctx.send(Rank(0), Tag(1), Payload::from_i64(r as i64), s);
        }));
    }
    let mut e = Engine::launch(cfg(), progs);
    assert!(e.run().is_completed());
    assert_eq!(e.match_log().len_for(Rank(0)), 15);
}

#[test]
fn flush_on_demand_mid_run() {
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 8, "p0");
        ctx.compute(100, s);
        ctx.flush_trace();
        ctx.compute(100, s);
    });
    let mut e = Engine::launch(cfg(), vec![p0]);
    assert!(e.run().is_completed());
    // Both the flushed and the end-of-run records survive collection.
    let store = e.trace_store();
    assert_eq!(store.of_kind(EventKind::Compute).len(), 2);
}

#[test]
fn tracing_toggle_inside_program() {
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 9, "p0");
        ctx.compute(1, s);
        ctx.set_tracing(false);
        ctx.compute(2, s);
        ctx.compute(3, s);
        ctx.set_tracing(true);
        ctx.compute(4, s);
    });
    let mut e = Engine::launch(cfg(), vec![p0]);
    assert!(e.run().is_completed());
    let store = e.trace_store();
    // 2 of the 4 computes recorded; markers unaffected (4 computes + 2
    // lifecycle events).
    assert_eq!(store.of_kind(EventKind::Compute).len(), 2);
    assert_eq!(e.markers().get(Rank(0)), 6);
}

#[test]
fn trap_mid_collective_sequence() {
    // One rank traps before entering the barrier; the others wait inside
    // the collective — a Stopped outcome, not a deadlock.
    let mk = |_r: u32| -> ProgramFn {
        Box::new(move |ctx| {
            let s = ctx.site("e.rs", 10, "coll");
            ctx.compute(10, s);
            ctx.barrier(s);
        })
    };
    let mut e = Engine::launch(cfg(), vec![mk(0), mk(1), mk(2)]);
    // P0: ProcStart(1) compute(2) barrier(3)... trap at 2.
    e.set_threshold(Rank(0), Some(2));
    match e.run() {
        RunOutcome::Stopped(st) => assert_eq!(st.traps, vec![Marker::new(0u32, 2)]),
        other => panic!("{other:?}"),
    }
    e.clear_thresholds();
    e.resume_trapped();
    assert!(e.run().is_completed());
}

#[test]
fn seeded_policy_is_reproducible_end_to_end() {
    let make = || -> Vec<ProgramFn> {
        (0..4u32)
            .map(|r| {
                let p: ProgramFn = Box::new(move |ctx| {
                    let s = ctx.site("e.rs", 11, "n");
                    if r == 0 {
                        for _ in 0..3 {
                            let _ = ctx.recv_any(None, s);
                        }
                    } else {
                        ctx.compute((r as u64) * 7, s);
                        ctx.send(Rank(0), Tag(0), Payload::from_i64(r as i64), s);
                    }
                });
                p
            })
            .collect()
    };
    let run = |seed: u64| {
        let mut e = Engine::launch(
            EngineConfig {
                policy: SchedPolicy::Seeded(seed),
                recorder: RecorderConfig::full(),
                ..Default::default()
            },
            make(),
        );
        assert!(e.run().is_completed());
        e.collect_trace()
    };
    assert_eq!(run(12), run(12), "same seed, same trace");
}

#[test]
fn zero_cost_model_still_causal() {
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 12, "p0");
        ctx.send(Rank(1), Tag(1), Payload::from_i64(1), s);
    });
    let p1: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 13, "p1");
        let _ = ctx.recv_from(Rank(0), Tag(1), s);
    });
    let mut e = Engine::launch(
        EngineConfig {
            cost: CostModel::free(),
            recorder: RecorderConfig::full(),
            ..Default::default()
        },
        vec![p0, p1],
    );
    assert!(e.run().is_completed());
    let store = e.trace_store();
    let send = &store.records()[store.of_kind(EventKind::Send)[0].ix()];
    let recv = &store.records()[store.of_kind(EventKind::RecvDone)[0].ix()];
    assert!(recv.t_end >= send.t_end);
}

#[test]
fn engine_run_after_completion_is_idempotent() {
    let p0: ProgramFn = Box::new(|ctx| {
        let s = ctx.site("e.rs", 14, "p0");
        ctx.compute(1, s);
    });
    let mut e = Engine::launch(cfg(), vec![p0]);
    assert!(e.run().is_completed());
    assert!(e.run().is_completed(), "second run() reports completion");
}

#[test]
fn fn_scope_and_probe_macros() {
    use tracedbg_mpsim::{fn_scope, probe};
    let p0: ProgramFn = Box::new(|ctx| {
        let result = fn_scope!(ctx, "outer", [7, 8], {
            probe!(ctx, "inside", 42);
            fn_scope!(ctx, "inner", [1, 0], { 5 + 5 })
        });
        assert_eq!(result, 10);
    });
    let mut e = Engine::launch(cfg(), vec![p0]);
    assert!(e.run().is_completed());
    let store = e.trace_store();
    assert_eq!(store.of_kind(EventKind::FnEnter).len(), 2);
    assert_eq!(store.of_kind(EventKind::FnExit).len(), 2);
    let probe_rec = store
        .records()
        .iter()
        .find(|r| r.kind == EventKind::Probe)
        .unwrap();
    assert_eq!(probe_rec.args[0], 42);
    // probe! resolves the enclosing scope's function name via site_here.
    assert_eq!(store.sites().func_name(probe_rec.site), "outer");
    // fn_scope! captured the first two args.
    let enter = store
        .records()
        .iter()
        .find(|r| r.kind == EventKind::FnEnter)
        .unwrap();
    assert_eq!(enter.args, [7, 8]);
}
