//! Property tests: mailbox matching preserves the MPI non-overtaking
//! invariant under arbitrary operation sequences.

use proptest::prelude::*;
use tracedbg_mpsim::{Envelope, Mailbox, MatchSpec, Payload};
use tracedbg_trace::{Rank, SiteId, Tag};

#[derive(Clone, Debug)]
enum Op {
    /// Deposit a message from `src` with `tag`.
    Push { src: u32, tag: i32 },
    /// Attempt a receive with the given spec; deterministic candidate
    /// choice (earliest arrival, lowest source).
    Recv { src: Option<u32>, tag: Option<i32> },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 0i32..3).prop_map(|(src, tag)| Op::Push { src, tag }),
        (
            prop_oneof![Just(None), (0u32..4).prop_map(Some)],
            prop_oneof![Just(None), (0i32..3).prop_map(Some)],
        )
            .prop_map(|(src, tag)| Op::Recv { src, tag }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn non_overtaking_invariant(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut mb = Mailbox::new(4);
        let mut next_seq = [0u64; 4];
        let mut arrival = 0u64;
        // Last delivered seq per (src, tag).
        let mut last_delivered: std::collections::HashMap<(u32, i32), u64> =
            Default::default();
        for op in &ops {
            match op {
                Op::Push { src, tag } => {
                    arrival += 7;
                    let seq = next_seq[*src as usize];
                    next_seq[*src as usize] += 1;
                    mb.push(Envelope {
                        src: Rank(*src),
                        dst: Rank(0),
                        tag: Tag(*tag),
                        seq,
                        arrival,
                        send_marker: 0,
                        send_site: SiteId::UNKNOWN,
                        synchronous: false,
                        payload: Payload::empty(),
                    });
                }
                Op::Recv { src, tag } => {
                    let spec = MatchSpec::new(src.map(Rank), tag.map(Tag));
                    let cands = mb.candidates(&spec);
                    // At most one candidate per source.
                    let mut seen = std::collections::HashSet::new();
                    for c in &cands {
                        prop_assert!(seen.insert(c.src), "two candidates from one source");
                    }
                    if let Some(best) = cands.iter().min_by_key(|c| (c.arrival, c.src)) {
                        let env = mb.take(*best);
                        // Non-overtaking: messages on one (src, tag) lane
                        // are delivered in send order.
                        let k = (env.src.0, env.tag.0);
                        if let Some(prev) = last_delivered.get(&k) {
                            prop_assert!(env.seq > *prev,
                                "delivered {} after {} on {:?}", env.seq, prev, k);
                        }
                        last_delivered.insert(k, env.seq);
                        // The spec admitted what we took.
                        prop_assert!(spec.admits(&env));
                    }
                }
            }
        }
        // Conservation: pushes == deliveries + still pending.
        let pushed: u64 = next_seq.iter().sum();
        let delivered = last_delivered.len(); // lower bound only; count properly:
        let _ = delivered;
        let pending = mb.pending() as u64;
        prop_assert!(pending <= pushed);
    }

    #[test]
    fn wildcard_candidates_superset_of_specific(
        ops in proptest::collection::vec(arb_op(), 1..40),
        src in 0u32..4,
    ) {
        let mut mb = Mailbox::new(4);
        let mut next_seq = [0u64; 4];
        for (i, op) in ops.iter().enumerate() {
            if let Op::Push { src, tag } = op {
                let seq = next_seq[*src as usize];
                next_seq[*src as usize] += 1;
                mb.push(Envelope {
                    src: Rank(*src),
                    dst: Rank(0),
                    tag: Tag(*tag),
                    seq,
                    arrival: i as u64,
                    send_marker: 0,
                    send_site: SiteId::UNKNOWN,
                    synchronous: false,
                    payload: Payload::empty(),
                });
            }
        }
        // Any message matchable by (src, ANY) is also matchable by
        // (ANY, ANY)'s candidate set for that source.
        let specific = mb.candidates(&MatchSpec::new(Some(Rank(src)), None));
        let wild = mb.candidates(&MatchSpec::any());
        for c in &specific {
            prop_assert!(
                wild.iter().any(|w| w.src == c.src && w.seq == c.seq),
                "specific candidate missing from wildcard set"
            );
        }
    }
}
