//! Property tests for the snapshot/restore plane: for arbitrary seeds,
//! snapshot depths, and fault plans, a run that is snapshotted mid-way,
//! restored into a fresh engine, and driven to the end must be
//! byte-identical to the straight run — same outcome, same state digest,
//! same trace records. This is the determinism contract the debugger's
//! O(delta) replay and the explorer's prefix forking both stand on.

use proptest::prelude::*;
use tracedbg_mpsim::{
    Engine, EngineConfig, FaultPlan, Payload, ProgramFn, Rank, RecorderConfig, SchedPolicy, Tag,
};
use tracedbg_trace::schedule::Fault;

const NPROCS: usize = 4;

/// Fan-in workload with genuine wildcard nondeterminism: every worker
/// sends `rounds` messages to rank 0, which receives them in whatever
/// order the scheduler picks and then releases the workers.
fn fanin_programs(rounds: u64) -> Vec<ProgramFn> {
    let p0: ProgramFn = Box::new(move |ctx| {
        let s = ctx.site("prop.rs", 1, "collector");
        let mut sum = 0i64;
        for _ in 0..(NPROCS as u64 - 1) * rounds {
            let m = ctx.recv_any(None, s);
            sum += m.payload.to_i64().unwrap_or(0);
        }
        ctx.probe("sum", sum, s);
        for r in 1..NPROCS {
            ctx.send(Rank(r as u32), Tag(9), Payload::from_i64(sum), s);
        }
    });
    let mut progs = vec![p0];
    for r in 1..NPROCS {
        let worker: ProgramFn = Box::new(move |ctx| {
            let s = ctx.site("prop.rs", 2, "worker");
            for round in 0..rounds {
                ctx.compute(50, s);
                let v = (r as i64) * 100 + round as i64;
                ctx.send(Rank(0), Tag(0), Payload::from_i64(v), s);
            }
            let _ = ctx.recv_from(Rank(0), Tag(9), s);
        });
        progs.push(worker);
    }
    progs
}

/// An optional single-fault plan hitting a worker (never the collector,
/// so runs stay short): crash, hang, or a delivery delay into rank 0.
fn arb_faults() -> impl Strategy<Value = Vec<Fault>> {
    let w = 1u32..NPROCS as u32;
    prop_oneof![
        Just(Vec::new()),
        (w.clone(), 0u64..6).prop_map(|(r, k)| vec![Fault::Crash {
            rank: Rank(r),
            after_ops: k,
        }]),
        (w.clone(), 0u64..6).prop_map(|(r, k)| vec![Fault::Hang {
            rank: Rank(r),
            after_ops: k,
        }]),
        (w, 0u64..4, 1u64..500).prop_map(|(src, nth, extra_ns)| vec![Fault::Delay {
            src: Rank(src),
            dst: Rank(0),
            nth,
            extra_ns,
        }]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn restore_then_continue_is_byte_identical(
        seed in 0u64..1024,
        rounds in 1u64..4,
        k in 0usize..24,
        faults in arb_faults(),
    ) {
        let cfg = || EngineConfig {
            policy: SchedPolicy::Seeded(seed),
            recorder: RecorderConfig::full(),
            faults: FaultPlan::new(faults.clone()),
            checkpoints: true,
            ..Default::default()
        };
        // The straight run: the byte-level ground truth.
        let mut straight = Engine::launch(cfg(), fanin_programs(rounds));
        let s_out = format!("{:?}", straight.run());
        let s_digest = straight.digest();
        let s_trace = straight.collect_trace();
        // The same run, snapshotting at decision depth `k` (the snapshot
        // may never fire if the run ends first — then there is nothing to
        // restore, but the run itself must still be unperturbed).
        let mut snap = Engine::launch(cfg(), fanin_programs(rounds));
        snap.set_snapshot_at(k);
        let n_out = format!("{:?}", snap.run());
        prop_assert_eq!(&n_out, &s_out, "snapshotting must not perturb the run");
        prop_assert_eq!(snap.digest(), s_digest, "snapshotting run digest");
        if let Some(cp) = snap.take_pending_snapshot() {
            let mut restored = Engine::restore(&cp, fanin_programs(rounds));
            let r_out = format!("{:?}", restored.run());
            prop_assert_eq!(&r_out, &s_out, "restored run must end identically");
            prop_assert_eq!(restored.digest(), s_digest, "restored state digest");
            let r_trace = restored.collect_trace();
            prop_assert_eq!(r_trace, s_trace, "restored trace must be byte-identical");
        }
    }
}
