//! Property tests for the telemetry plane: event-derived engine metrics
//! must equal independent recounts from the artifacts the run already
//! emits — the trace (sends, bytes, receive posts) and the schedule log
//! (turns, matches, blocked-in-receive turns). Telemetry is a *view* of
//! the event sequence, never a second source of truth; any divergence is
//! a counting bug.

use proptest::prelude::*;
use tracedbg_mpsim::{
    Engine, EngineConfig, FaultPlan, Payload, ProgramFn, Rank, RecorderConfig, SchedPolicy, Tag,
};
use tracedbg_trace::schedule::{Decision, Fault};
use tracedbg_trace::EventKind;

const NPROCS: usize = 4;

/// Fan-in workload with genuine wildcard nondeterminism (same shape as
/// the checkpoint property tests): workers send to a collecting rank 0,
/// which receives in scheduler order and releases them.
fn fanin_programs(rounds: u64) -> Vec<ProgramFn> {
    let p0: ProgramFn = Box::new(move |ctx| {
        let s = ctx.site("prop_obs.rs", 1, "collector");
        let mut sum = 0i64;
        for _ in 0..(NPROCS as u64 - 1) * rounds {
            let m = ctx.recv_any(None, s);
            sum += m.payload.to_i64().unwrap_or(0);
        }
        for r in 1..NPROCS {
            ctx.send(Rank(r as u32), Tag(9), Payload::from_i64(sum), s);
        }
    });
    let mut progs = vec![p0];
    for r in 1..NPROCS {
        let worker: ProgramFn = Box::new(move |ctx| {
            let s = ctx.site("prop_obs.rs", 2, "worker");
            for round in 0..rounds {
                ctx.compute(50, s);
                let v = (r as i64) * 100 + round as i64;
                ctx.send(Rank(0), Tag(0), Payload::from_i64(v), s);
            }
            let _ = ctx.recv_from(Rank(0), Tag(9), s);
        });
        progs.push(worker);
    }
    progs
}

fn arb_faults() -> impl Strategy<Value = Vec<Fault>> {
    let w = 1u32..NPROCS as u32;
    prop_oneof![
        Just(Vec::new()),
        (w.clone(), 0u64..6).prop_map(|(r, k)| vec![Fault::Hang {
            rank: Rank(r),
            after_ops: k,
        }]),
        (w, 0u64..4, 1u64..500).prop_map(|(src, nth, extra_ns)| vec![Fault::Delay {
            src: Rank(src),
            dst: Rank(0),
            nth,
            extra_ns,
        }]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn metrics_equal_independent_recounts(
        seed in 0u64..1024,
        rounds in 1u64..4,
        faults in arb_faults(),
    ) {
        let mut engine = Engine::launch(
            EngineConfig {
                policy: SchedPolicy::Seeded(seed),
                recorder: RecorderConfig::full(),
                faults: FaultPlan::new(faults),
                metrics: true,
                ..Default::default()
            },
            fanin_programs(rounds),
        );
        let _ = engine.run();
        let log = engine.schedule_log();
        let m = engine.metrics().expect("metrics were enabled").clone();
        let store = engine.trace_store();

        // --- recount from the trace: sends, bytes, receive posts ---
        let mut msgs = vec![0u64; NPROCS];
        let mut bytes = vec![0u64; NPROCS];
        let mut recvs = vec![0u64; NPROCS];
        for rec in store.records() {
            match rec.kind {
                EventKind::Send => {
                    let info = rec.msg.as_ref().expect("send records carry MsgInfo");
                    msgs[rec.rank.ix()] += 1;
                    bytes[rec.rank.ix()] += info.bytes as u64;
                }
                EventKind::RecvPost => recvs[rec.rank.ix()] += 1,
                _ => {}
            }
        }
        prop_assert_eq!(&m.msgs_sent, &msgs, "per-rank sends vs trace");
        prop_assert_eq!(&m.bytes_sent, &bytes, "per-rank bytes vs trace");
        prop_assert_eq!(&m.recvs, &recvs, "per-rank receive posts vs trace");
        // Channel matrix rows sum to the per-rank totals.
        for r in 0..NPROCS {
            prop_assert_eq!(m.channel_msgs[r].iter().sum::<u64>(), msgs[r]);
            prop_assert_eq!(m.channel_bytes[r].iter().sum::<u64>(), bytes[r]);
        }

        // --- recount from the schedule log: turns, matches, blocking ---
        // A rank's wait is the number of turns granted (to anyone) between
        // its last own turn — the one that posted the receive — and the
        // match that released it.
        let mut turns = 0u64;
        let mut matches = 0u64;
        let mut stamp = [0u64; NPROCS];
        let mut blocked = vec![0u64; NPROCS];
        for d in &log {
            match d {
                Decision::Turn { rank } => {
                    turns += 1;
                    stamp[rank.ix()] = turns;
                }
                Decision::Match { dst, .. } => {
                    matches += 1;
                    blocked[dst.ix()] += turns - stamp[dst.ix()];
                }
            }
        }
        prop_assert_eq!(m.turns, turns, "turn count vs schedule log");
        prop_assert_eq!(m.matches, matches, "match count vs schedule log");
        prop_assert_eq!(&m.blocked_turns, &blocked, "blocked turns vs log walk");
        // The match-latency histogram is the same data, bucketed.
        prop_assert_eq!(m.match_latency.count, matches);
        prop_assert_eq!(m.match_latency.sum, blocked.iter().sum::<u64>());
    }
}
