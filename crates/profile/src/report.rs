//! The `ProfileReport` JSON schema.
//!
//! Like `LocalizeReport`, everything in the report derives from the trace
//! records alone — never from wall-clock time, worker identity, or job
//! count — so `tracedbg profile --jobs N` is byte-identical for every `N`
//! and for every input plane (`.trc` text, `.tbin`, DiskStore directory)
//! that delivers the same records. The `digest` field (FNV-1a over the
//! report serialized with `digest` zeroed) makes that contract checkable
//! with a `grep`. The report deliberately has **no** `jobs` field.

use crate::frontier::causal_past_markers;
use crate::path::CriticalPath;
use crate::wait::WaitAnalysis;
use serde::{Deserialize, Serialize};
use tracedbg_obs::fnv1a64;
use tracedbg_trace::{SiteId, SiteTable, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// Schema version of [`ProfileReport`].
pub const PROFILE_VERSION: u32 = 1;

/// Detailed wait entries kept in the report (aggregates always cover the
/// full set; the count of dropped entries is recorded, never silent).
pub const WAITS_CAP: usize = 64;

/// Detailed critical-path steps kept in the report (the terminal end of
/// the path; `frontier_markers` and `critical_path_len` always cover the
/// whole path).
pub const PATH_CAP: usize = 512;

/// Per-rank time accounting, all in simulated ns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankProfile {
    pub rank: u32,
    /// Span minus classified waiting (saturating).
    pub busy: u64,
    /// Time this rank spent in classified waits.
    pub wait: u64,
    /// Wait cost *blamed on* this rank (the localize blame signal).
    pub blamed: u64,
    /// Last event end (trace end for stalled ranks) minus trace start.
    pub span: u64,
    /// Critical-path contribution of this rank.
    pub path: u64,
}

/// Aggregate cost of one wait-state kind.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitKindTotal {
    pub kind: String,
    pub count: u64,
    pub cost: u64,
}

/// One classified blocked interval (the top-cost subset).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEntry {
    pub kind: String,
    /// Waiting rank and its execution marker at the waiting construct.
    pub rank: u32,
    pub marker: u64,
    pub t_from: u64,
    pub t_to: u64,
    pub cost: u64,
    /// The rank/site whose behavior caused the wait.
    pub cause_rank: u32,
    pub cause_site: String,
}

/// One critical-path step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathStep {
    pub rank: u32,
    pub marker: u64,
    pub kind: String,
    pub site: String,
    pub t_start: u64,
    pub t_end: u64,
    /// Exclusive ns this step adds to the path.
    pub contribution: u64,
}

/// Critical-path share of one source site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteShare {
    pub site: String,
    pub contribution: u64,
    /// Share of `critical_path_len` in milli-units (0..=1000).
    pub share_millis: u64,
}

/// Output of `tracedbg profile`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    pub version: u32,
    /// Input plane: `workload`, `schedule`, `trace`, or `store`.
    pub source: String,
    /// Workload spec, or the input path for anonymous traces.
    pub workload: String,
    pub procs: usize,
    pub seed: u64,
    /// Trace records profiled.
    pub events: usize,
    /// Simulated makespan (max t_end - min t_start), ns.
    pub makespan: u64,
    /// Length of the critical path, ns. Invariant:
    /// `critical_path_len <= makespan <= busy_total + wait_total`.
    pub critical_path_len: u64,
    /// Σ per-rank busy, ns.
    pub busy_total: u64,
    /// Σ per-rank wait, ns.
    pub wait_total: u64,
    /// Flight-recorder records dropped by ring overflow during the run
    /// that produced this trace (0 when profiling a stored trace).
    pub flight_dropped: u64,
    pub ranks: Vec<RankProfile>,
    /// Per-kind totals over *all* waits, keyed by kind, sorted by kind.
    pub wait_kinds: Vec<WaitKindTotal>,
    /// Top-cost waits (at most [`WAITS_CAP`]), cost-descending.
    pub waits: Vec<WaitEntry>,
    /// Waits dropped by the cap (aggregates still include them).
    pub waits_truncated: u64,
    /// Terminal steps of the critical path (at most [`PATH_CAP`]).
    pub path: Vec<PathStep>,
    /// Path steps dropped by the cap.
    pub path_truncated: u64,
    /// Path contribution per site, contribution-descending.
    pub path_sites: Vec<SiteShare>,
    /// Per-rank markers of the causal past of the path's terminal event —
    /// a consistent cut `tracedbg replay --to-critical-path` arms as a
    /// stopline.
    pub frontier_markers: Vec<u64>,
    /// Per-rank blamed wait cost, ns — localize's fourth ranked signal.
    pub blame: Vec<u64>,
    /// FNV-1a 64 of the report serialized with this field zeroed.
    pub digest: u64,
}

/// Provenance of the trace being profiled, carried into the report.
#[derive(Clone, Copy, Debug)]
pub struct ProfileInput<'a> {
    pub source: &'a str,
    pub workload: &'a str,
    pub procs: usize,
    pub seed: u64,
    pub flight_dropped: u64,
}

fn site_name(sites: &SiteTable, id: SiteId) -> String {
    match sites.resolve(id) {
        Some(loc) => format!("{}:{} {}", loc.file, loc.line, loc.func),
        None => "?".to_string(),
    }
}

impl ProfileReport {
    /// Profile `store` end to end: classify waits, extract the critical
    /// path, account per-rank time, and seal the digest.
    pub fn build(store: &TraceStore, input: ProfileInput<'_>) -> Self {
        let n = store.n_ranks();
        let sites = store.sites();
        let matching = MessageMatching::build(store);
        let waits = WaitAnalysis::build(store, &matching);
        let path = CriticalPath::build(store, &matching);
        let (t_lo, t_hi) = store.time_bounds();
        let makespan = if store.is_empty() { 0 } else { t_hi - t_lo };

        // Per-rank extent: last event end, pushed to trace end for ranks
        // holding an unmatched receive (they are stuck, not finished).
        let mut end = vec![t_lo; n];
        for id in store.ids() {
            let r = store.record(id);
            let e = &mut end[r.rank.ix()];
            *e = (*e).max(r.t_end);
        }
        for u in &matching.unmatched_recvs {
            end[u.rank.ix()] = t_hi;
        }

        let path_per_rank = path.per_rank(store);
        let mut ranks = Vec::with_capacity(n);
        let (mut busy_total, mut wait_total) = (0u64, 0u64);
        for r in 0..n {
            let span = end[r].saturating_sub(t_lo);
            let wait = waits.waited[r];
            let busy = span.saturating_sub(wait);
            busy_total += busy;
            wait_total += wait;
            ranks.push(RankProfile {
                rank: r as u32,
                busy,
                wait,
                blamed: waits.blame[r],
                span,
                path: path_per_rank[r],
            });
        }

        let wait_kinds = waits
            .per_kind
            .iter()
            .map(|(k, &(count, cost))| WaitKindTotal {
                kind: k.to_string(),
                count,
                cost,
            })
            .collect();

        // Top waits by cost; ties break toward the canonical event order
        // so the selection is byte-stable.
        let mut by_cost: Vec<&crate::wait::WaitInterval> = waits.waits.iter().collect();
        by_cost.sort_by_key(|w| (std::cmp::Reverse(w.cost()), w.event.ix()));
        let waits_truncated = by_cost.len().saturating_sub(WAITS_CAP) as u64;
        let wait_entries = by_cost
            .into_iter()
            .take(WAITS_CAP)
            .map(|w| {
                let rec = store.record(w.event);
                WaitEntry {
                    kind: w.kind.to_string(),
                    rank: w.rank.0,
                    marker: rec.marker,
                    t_from: w.t_from,
                    t_to: w.t_to,
                    cost: w.cost(),
                    cause_rank: w.cause_rank.0,
                    cause_site: site_name(sites, w.cause_site),
                }
            })
            .collect();

        // Site shares over the whole path; the detailed step list keeps
        // the terminal end (the part a debugging session replays toward).
        let mut share: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (i, &id) in path.steps.iter().enumerate() {
            let rec = store.record(id);
            *share.entry(site_name(sites, rec.site)).or_insert(0) += path.contributions[i];
        }
        let mut path_sites: Vec<SiteShare> = share
            .into_iter()
            .map(|(site, contribution)| SiteShare {
                site,
                contribution,
                share_millis: (contribution * 1000).checked_div(path.len).unwrap_or(0),
            })
            .collect();
        path_sites.sort_by(|a, b| {
            b.contribution
                .cmp(&a.contribution)
                .then_with(|| a.site.cmp(&b.site))
        });

        let path_truncated = path.steps.len().saturating_sub(PATH_CAP) as u64;
        let skip = path.steps.len().saturating_sub(PATH_CAP);
        let path_steps = path
            .steps
            .iter()
            .enumerate()
            .skip(skip)
            .map(|(i, &id)| {
                let rec = store.record(id);
                PathStep {
                    rank: rec.rank.0,
                    marker: rec.marker,
                    kind: rec.kind.code().to_string(),
                    site: site_name(sites, rec.site),
                    t_start: rec.t_start,
                    t_end: rec.t_end,
                    contribution: path.contributions[i],
                }
            })
            .collect();

        let frontier_markers = match path.terminal() {
            Some(t) => causal_past_markers(store, &matching, t),
            None => vec![0; n],
        };

        let mut report = ProfileReport {
            version: PROFILE_VERSION,
            source: input.source.to_string(),
            workload: input.workload.to_string(),
            procs: input.procs,
            seed: input.seed,
            events: store.len(),
            makespan,
            critical_path_len: path.len,
            busy_total,
            wait_total,
            flight_dropped: input.flight_dropped,
            ranks,
            wait_kinds,
            waits: wait_entries,
            waits_truncated,
            path: path_steps,
            path_truncated,
            path_sites,
            frontier_markers,
            blame: waits.blame.clone(),
            digest: 0,
        };
        report.seal();
        report
    }

    /// Compute and store `digest` over the rest of the report.
    pub fn seal(&mut self) {
        self.digest = 0;
        self.digest = fnv1a64(self.to_json().as_bytes());
    }

    /// Does `digest` match the rest of the report?
    pub fn digest_ok(&self) -> bool {
        let mut probe = self.clone();
        probe.seal();
        probe.digest == self.digest
    }

    /// Ranks sorted by blamed cost, highest first (ties toward lower
    /// ranks) — the "who caused the waiting" ranking.
    pub fn blame_ranking(&self) -> Vec<u32> {
        let mut ranked: Vec<(u64, u32)> = self
            .blame
            .iter()
            .enumerate()
            .map(|(r, &b)| (b, r as u32))
            .collect();
        ranked.sort_by_key(|&(b, r)| (std::cmp::Reverse(b), r));
        ranked.into_iter().map(|(_, r)| r).collect()
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ProfileReport serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        let r: ProfileReport =
            serde_json::from_str(s).map_err(|e| format!("bad ProfileReport: {e:?}"))?;
        if r.version != PROFILE_VERSION {
            return Err(format!(
                "ProfileReport version {} unsupported (expected {})",
                r.version, PROFILE_VERSION
            ));
        }
        Ok(r)
    }
}
