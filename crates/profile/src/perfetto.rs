//! Chrome/Perfetto trace-event JSON export.
//!
//! Emits the legacy "JSON trace event" format that `ui.perfetto.dev` and
//! `chrome://tracing` both load: one `"X"` (complete) slice per trace
//! record on a per-rank track, `"s"`/`"f"` flow events drawing an arrow
//! for every matched message, extra slices on the same tracks for
//! classified wait states, and a dedicated track highlighting the
//! critical path. Timestamps are microseconds; simulated ns are emitted
//! as `us.nnn` with the fraction formatted by hand so the output is
//! byte-deterministic (no float formatting involved anywhere).

use crate::path::CriticalPath;
use crate::wait::WaitAnalysis;
use tracedbg_trace::{EventKind, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// ns -> "us.nnn" with an exact three-digit fraction.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-facing slice name for a record.
fn slice_name(store: &TraceStore, kind: EventKind, label: &Option<String>) -> String {
    let _ = store;
    match label {
        Some(l) => format!("{} {}", kind.code(), l),
        None => kind.code().to_string(),
    }
}

/// Render the whole trace as Perfetto trace-event JSON.
pub fn perfetto_json(
    store: &TraceStore,
    matching: &MessageMatching,
    waits: &WaitAnalysis,
    path: &CriticalPath,
) -> String {
    let n = store.n_ranks();
    let mut ev: Vec<String> = Vec::new();

    // Track names: tid r = rank r, tid n = the critical-path track.
    for r in 0..n {
        ev.push(format!(
            r#"{{"ph":"M","pid":0,"tid":{r},"name":"thread_name","args":{{"name":"rank {r}"}}}}"#
        ));
    }
    ev.push(format!(
        r#"{{"ph":"M","pid":0,"tid":{n},"name":"thread_name","args":{{"name":"critical path"}}}}"#
    ));

    // One complete slice per record. Zero-duration constructs (posts,
    // probes) still get a slice so they are findable on the track.
    for id in store.ids() {
        let rec = store.record(id);
        let name = slice_name(store, rec.kind, &rec.label);
        let mut args = format!(r#""marker":{}"#, rec.marker);
        if let Some(m) = &rec.msg {
            args.push_str(&format!(
                r#","src":{},"dst":{},"tag":{},"seq":{}"#,
                m.src.0, m.dst.0, m.tag.0, m.seq
            ));
        }
        ev.push(format!(
            r#"{{"ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"name":"{}","cat":"event","args":{{{}}}}}"#,
            rec.rank.0,
            us(rec.t_start),
            us(rec.t_end.saturating_sub(rec.t_start)),
            esc(&name),
            args
        ));
    }

    // Wait-state slices on the waiting rank's track.
    for w in &waits.waits {
        ev.push(format!(
            r#"{{"ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"name":"{}","cat":"wait","args":{{"cause_rank":{},"cost_ns":{}}}}}"#,
            w.rank.0,
            us(w.t_from),
            us(w.cost()),
            w.kind,
            w.cause_rank.0,
            w.cost()
        ));
    }

    // Message-flow arrows: start at the send's completion, finish at the
    // receive's completion.
    for (i, m) in matching.matched.iter().enumerate() {
        let send = store.record(m.send);
        let recv = store.record(m.recv);
        ev.push(format!(
            r#"{{"ph":"s","pid":0,"tid":{},"ts":{},"id":{},"name":"msg","cat":"msg"}}"#,
            send.rank.0,
            us(send.t_end),
            i
        ));
        ev.push(format!(
            r#"{{"ph":"f","bp":"e","pid":0,"tid":{},"ts":{},"id":{},"name":"msg","cat":"msg"}}"#,
            recv.rank.0,
            us(recv.t_end),
            i
        ));
    }

    // Critical-path highlighting: each step's exclusive stretch on the
    // dedicated track, named after the rank executing it.
    let mut prev_end = store.time_bounds().0;
    for (i, &id) in path.steps.iter().enumerate() {
        let rec = store.record(id);
        let c = path.contributions[i];
        if c > 0 {
            let from = rec.t_start.max(prev_end);
            ev.push(format!(
                r#"{{"ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"name":"rank {} {}","cat":"critical","args":{{"rank":{},"marker":{}}}}}"#,
                n,
                us(from),
                us(c),
                rec.rank.0,
                rec.kind.code(),
                rec.rank.0,
                rec.marker
            ));
        }
        prev_end = prev_end.max(rec.t_end);
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&ev.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}
