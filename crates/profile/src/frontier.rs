//! Cheap causal-past frontier extraction.
//!
//! `ProfileReport` stores the critical path's divergence frontier as a
//! per-rank marker vector so `tracedbg replay --to-critical-path` can arm
//! it as a stopline. The full `HbIndex` computes this too (its vector
//! clocks *are* causal-past marker vectors), but building it costs
//! `O(events × ranks)` memory — prohibitive at 1024 ranks. The causal
//! past of a *single* event only needs a worklist over the three edge
//! kinds (program order, matched send → receive, collective barrier), so
//! that is what we do here; a unit test pins equality with
//! `HbIndex::past_markers`.

use crate::wait::collective_instances;
use tracedbg_trace::{EventId, EventKind, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// Per-rank marker counts of the causal past of `of`, inclusive of `of`
/// itself — a consistent (left-closed) cut by construction.
pub fn causal_past_markers(
    store: &TraceStore,
    matching: &MessageMatching,
    of: EventId,
) -> Vec<u64> {
    let n = store.n_ranks();
    let mut frontier = vec![0u64; n];
    let mut done = vec![0u64; n];
    if store.is_empty() {
        return frontier;
    }

    let instances = collective_instances(store);
    let mut instance_of = vec![usize::MAX; store.len()];
    for (i, inst) in instances.iter().enumerate() {
        for id in inst {
            instance_of[id.ix()] = i;
        }
    }

    let start = store.record(of);
    frontier[start.rank.ix()] = start.marker;

    // Absorb cross-rank edges until the cut stops growing. Each lane
    // event is scanned at most once (`done` tracks progress), so the
    // whole walk is linear in the size of the causal past.
    let mut progressed = true;
    while progressed {
        progressed = false;
        for r in 0..n {
            if frontier[r] <= done[r] {
                continue;
            }
            progressed = true;
            let lane = store.by_rank(Rank(r as u32));
            let upto = frontier[r].min(lane.len() as u64);
            for idx in done[r]..upto {
                let id = lane[idx as usize];
                let rec = store.record(id);
                if rec.kind == EventKind::RecvDone {
                    if let Some(m) = matching.match_of_recv(id) {
                        let s = store.record(m.send);
                        let f = &mut frontier[s.rank.ix()];
                        *f = (*f).max(s.marker);
                    }
                }
                let inst = instance_of[id.ix()];
                if inst != usize::MAX {
                    // A collective synchronizes all participants: every
                    // participant's record joins the past.
                    for &pid in &instances[inst] {
                        let p = store.record(pid);
                        let f = &mut frontier[p.rank.ix()];
                        *f = (*f).max(p.marker);
                    }
                }
            }
            done[r] = upto;
        }
    }
    frontier
}
