//! Critical-path profiling and wait-state analysis (`tracedbg profile`).
//!
//! The source paper's premise is that the trace explains the run; this
//! crate turns a matched event trace into the three answers an operator
//! of a large message-passing job actually wants:
//!
//! * **where did the time go** — per-rank busy/wait accounting with every
//!   blocked interval classified Scalasca-style ([`WaitAnalysis`]);
//! * **who is to blame** — each wait's cost attributed to the *causing*
//!   rank/site, aggregated into a per-rank blame vector that `localize`
//!   consumes as its fourth ranked signal;
//! * **what bounds the makespan** — the longest weighted chain of
//!   happens-before-ordered events ([`CriticalPath`]), reported as a
//!   replayable marker chain with per-rank/per-site attribution.
//!
//! Everything lands in a sealed, digest-checked [`ProfileReport`] and an
//! optional Perfetto/Chrome trace-event export ([`perfetto_json`]).

mod frontier;
mod path;
mod perfetto;
mod report;
mod wait;

pub use frontier::causal_past_markers;
pub use path::CriticalPath;
pub use perfetto::perfetto_json;
pub use report::{
    PathStep, ProfileInput, ProfileReport, RankProfile, SiteShare, WaitEntry, WaitKindTotal,
    PATH_CAP, PROFILE_VERSION, WAITS_CAP,
};
pub use wait::{
    collective_instances, WaitAnalysis, WaitInterval, WAIT_AT_COLLECTIVE, WAIT_FAULT_STALL,
    WAIT_LATE_RECEIVER, WAIT_LATE_SENDER,
};

use tracedbg_trace::TraceStore;
use tracedbg_tracegraph::MessageMatching;

/// Per-rank blamed wait cost (ns) of a trace — the localize blame signal,
/// computed without building a full report.
pub fn blame_vector(store: &TraceStore) -> Vec<u64> {
    let matching = MessageMatching::build(store);
    WaitAnalysis::build(store, &matching).blame
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracedbg_trace::{
        CollKind, EventKind, MsgInfo, Rank, SiteTable, SourceLoc, Tag, TraceRecord,
    };

    fn msg(src: u32, dst: u32, seq: u64) -> MsgInfo {
        MsgInfo {
            src: Rank(src),
            dst: Rank(dst),
            tag: Tag(7),
            bytes: 8,
            seq,
        }
    }

    /// rank 1 posts at t=0, rank 0 sends late (ends t=100), recv
    /// completes t=120 — a late-sender wait of 100ns blamed on rank 0.
    fn late_sender_store() -> TraceStore {
        let sites = SiteTable::new();
        let s_send = sites.intern(SourceLoc::new("a.c", 10, "send_late"));
        let s_recv = sites.intern(SourceLoc::new("a.c", 20, "recv_early"));
        let records = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 80),
            TraceRecord::basic(0u32, EventKind::Send, 2, 80)
                .with_span(80, 100)
                .with_msg(msg(0, 1, 1))
                .with_site(s_send),
            TraceRecord::basic(1u32, EventKind::RecvPost, 1, 0).with_site(s_recv),
            TraceRecord::basic(1u32, EventKind::RecvDone, 2, 0)
                .with_span(0, 120)
                .with_msg(msg(0, 1, 1))
                .with_site(s_recv),
        ];
        TraceStore::build(records, sites, 2)
    }

    #[test]
    fn late_sender_blames_the_sender() {
        let store = late_sender_store();
        let matching = MessageMatching::build(&store);
        let w = WaitAnalysis::build(&store, &matching);
        assert_eq!(w.waits.len(), 1);
        let wait = &w.waits[0];
        assert_eq!(wait.kind, WAIT_LATE_SENDER);
        assert_eq!(wait.rank, Rank(1));
        assert_eq!(wait.cause_rank, Rank(0));
        assert_eq!(wait.cost(), 100);
        assert_eq!(w.blame, vec![100, 0]);
        assert_eq!(w.waited, vec![0, 100]);
    }

    #[test]
    fn late_receiver_blames_the_receiver() {
        // Send ends t=10; the receive is only posted at t=50.
        let sites = SiteTable::new();
        let records = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 0)
                .with_span(0, 10)
                .with_msg(msg(0, 1, 1)),
            TraceRecord::basic(1u32, EventKind::Compute, 1, 0).with_span(0, 50),
            TraceRecord::basic(1u32, EventKind::RecvPost, 2, 50),
            TraceRecord::basic(1u32, EventKind::RecvDone, 3, 50)
                .with_span(50, 55)
                .with_msg(msg(0, 1, 1)),
        ];
        let store = TraceStore::build(records, sites, 2);
        let matching = MessageMatching::build(&store);
        let w = WaitAnalysis::build(&store, &matching);
        assert_eq!(w.waits.len(), 1);
        assert_eq!(w.waits[0].kind, WAIT_LATE_RECEIVER);
        assert_eq!(w.waits[0].rank, Rank(0), "the sender holds the buffer");
        assert_eq!(w.waits[0].cause_rank, Rank(1));
        assert_eq!(w.waits[0].cost(), 40);
    }

    #[test]
    fn collective_wait_blames_the_last_arriver() {
        let sites = SiteTable::new();
        let coll = EventKind::Collective(CollKind::Barrier);
        let records = vec![
            TraceRecord::basic(0u32, coll, 1, 10).with_span(10, 100),
            TraceRecord::basic(1u32, coll, 1, 90).with_span(90, 100),
            TraceRecord::basic(2u32, coll, 1, 40).with_span(40, 100),
        ];
        let store = TraceStore::build(records, sites, 3);
        let matching = MessageMatching::build(&store);
        let w = WaitAnalysis::build(&store, &matching);
        assert_eq!(w.waits.len(), 2, "two early arrivals wait");
        for wait in &w.waits {
            assert_eq!(wait.kind, WAIT_AT_COLLECTIVE);
            assert_eq!(wait.cause_rank, Rank(1), "rank 1 arrived last");
        }
        assert_eq!(w.blame, vec![0, 80 + 50, 0]);
    }

    #[test]
    fn unmatched_post_is_a_fault_stall() {
        let sites = SiteTable::new();
        let records = vec![
            TraceRecord::basic(0u32, EventKind::Compute, 1, 0).with_span(0, 200),
            TraceRecord::basic(1u32, EventKind::RecvPost, 1, 20).with_args(0, 7),
        ];
        let store = TraceStore::build(records, sites, 2);
        let matching = MessageMatching::build(&store);
        assert_eq!(matching.unmatched_recvs.len(), 1);
        let w = WaitAnalysis::build(&store, &matching);
        let stall = w
            .waits
            .iter()
            .find(|x| x.kind == WAIT_FAULT_STALL)
            .expect("stall classified");
        assert_eq!(stall.rank, Rank(1));
        assert_eq!(stall.t_to, 200, "stalls run to the end of the trace");
    }

    #[test]
    fn critical_path_crosses_the_message_edge() {
        let store = late_sender_store();
        let matching = MessageMatching::build(&store);
        let p = CriticalPath::build(&store, &matching);
        // Terminal is the RecvDone on rank 1; its latest predecessor is
        // the send on rank 0, then the compute before it.
        let chain = p.rank_chain(&store);
        assert_eq!(chain, vec![Rank(0), Rank(1)]);
        assert_eq!(p.len, 120, "path covers the whole makespan here");
        let (lo, hi) = store.time_bounds();
        assert!(p.len <= hi - lo);
    }

    #[test]
    fn report_invariant_and_digest() {
        let store = late_sender_store();
        let r = ProfileReport::build(
            &store,
            ProfileInput {
                source: "trace",
                workload: "unit",
                procs: 2,
                seed: 0,
                flight_dropped: 0,
            },
        );
        assert!(r.digest_ok());
        assert!(r.critical_path_len <= r.makespan);
        assert!(r.makespan <= r.busy_total + r.wait_total);
        assert_eq!(r.blame_ranking()[0], 0, "sender is the top blame");
        let back = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn frontier_matches_hbindex_past_markers() {
        let store = late_sender_store();
        let matching = MessageMatching::build(&store);
        let p = CriticalPath::build(&store, &matching);
        let t = p.terminal().unwrap();
        let hb = tracedbg_causality::HbIndex::build(&store, &matching);
        assert_eq!(
            causal_past_markers(&store, &matching, t),
            hb.past_markers(t)
        );
    }

    #[test]
    fn perfetto_export_is_wellformed_json() {
        let store = late_sender_store();
        let matching = MessageMatching::build(&store);
        let w = WaitAnalysis::build(&store, &matching);
        let p = CriticalPath::build(&store, &matching);
        let json = perfetto_json(&store, &matching, &w, &p);
        let v = serde_json::value_from_str(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 rank tracks + 1 path track + 4 slices + 1 wait + 1 flow pair.
        assert!(events.len() >= 10, "{}", events.len());
        for e in events {
            assert!(e.get("ph").is_some(), "every event has a phase");
        }
        assert!(json.contains("\"cat\":\"wait\""));
        assert!(json.contains("\"cat\":\"critical\""));
        assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
    }
}
