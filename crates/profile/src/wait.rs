//! Scalasca-style wait-state classification over a matched trace.
//!
//! Every blocked interval a process spends inside a communication
//! construct is classified and its cost attributed to the *causing*
//! rank/site, not the waiting one:
//!
//! * **late-sender** — a receive was posted before the matching send
//!   completed; the receiver idles `[post, send_end]` and the *sender* is
//!   blamed at the send site.
//! * **late-receiver** — the matching send completed before the receive
//!   was posted; the message sat buffered for `[send_end, post]` and the
//!   *receiver* is blamed at the receive site.
//! * **wait-at-collective** — early arrivals at a collective idle until
//!   the last participant shows up; the last arriver is blamed.
//! * **fault-stall** — a posted receive that never completed (crash,
//!   hang, or deadlock upstream); the waiting rank idles from the post to
//!   the end of the trace and the expected source rank is blamed.
//!
//! Exactly one of late-sender/late-receiver is nonzero per matched pair,
//! so the per-pair costs never double-count.

use std::collections::BTreeMap;
use tracedbg_trace::{EventId, EventKind, Rank, SiteId, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// Wait-state kind tags (stable strings — they appear in the report JSON).
pub const WAIT_LATE_SENDER: &str = "late-sender";
pub const WAIT_LATE_RECEIVER: &str = "late-receiver";
pub const WAIT_AT_COLLECTIVE: &str = "wait-at-collective";
pub const WAIT_FAULT_STALL: &str = "fault-stall";

/// One classified blocked interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitInterval {
    /// One of the `WAIT_*` tags.
    pub kind: &'static str,
    /// The rank that sat idle.
    pub rank: Rank,
    /// The waiting construct's event.
    pub event: EventId,
    /// Idle interval `[t_from, t_to]` in simulated ns.
    pub t_from: u64,
    pub t_to: u64,
    /// The rank whose behavior caused the wait.
    pub cause_rank: Rank,
    /// Site of the causing construct.
    pub cause_site: SiteId,
}

impl WaitInterval {
    /// Idle time in ns.
    pub fn cost(&self) -> u64 {
        self.t_to.saturating_sub(self.t_from)
    }
}

/// All classified waits of one trace plus the derived aggregates.
#[derive(Clone, Debug, Default)]
pub struct WaitAnalysis {
    /// Every nonzero-cost wait, in canonical order (waiting event order).
    pub waits: Vec<WaitInterval>,
    /// Per-rank ns *blamed on* that rank (the localize blame vector).
    pub blame: Vec<u64>,
    /// Per-rank ns that rank spent waiting.
    pub waited: Vec<u64>,
    /// Total cost per wait kind, keyed by the `WAIT_*` tag.
    pub per_kind: BTreeMap<&'static str, (u64, u64)>,
}

impl WaitAnalysis {
    /// Classify every blocked interval of `store` under `matching`.
    pub fn build(store: &TraceStore, matching: &MessageMatching) -> Self {
        let n = store.n_ranks();
        let (_, t_hi) = store.time_bounds();
        let mut out = WaitAnalysis {
            waits: Vec::new(),
            blame: vec![0; n],
            waited: vec![0; n],
            per_kind: BTreeMap::new(),
        };

        // Matched point-to-point pairs: late sender vs late receiver.
        for m in &matching.matched {
            let recv = store.record(m.recv);
            let send = store.record(m.send);
            let post = recv.t_start; // RecvDone spans [post, completion]
            let send_end = send.t_end;
            if send_end > post {
                out.push(WaitInterval {
                    kind: WAIT_LATE_SENDER,
                    rank: recv.rank,
                    event: m.recv,
                    t_from: post,
                    t_to: send_end.min(recv.t_end),
                    cause_rank: send.rank,
                    cause_site: send.site,
                });
            } else if post > send_end {
                out.push(WaitInterval {
                    kind: WAIT_LATE_RECEIVER,
                    rank: send.rank,
                    event: m.send,
                    t_from: send_end,
                    t_to: post,
                    cause_rank: recv.rank,
                    cause_site: recv.site,
                });
            }
        }

        // Collectives: instance i = the i-th collective record on each
        // rank (the runtime serializes collectives — same convention as
        // `HbIndex`). Early arrivals wait for the last one.
        for instance in collective_instances(store) {
            if instance.len() < 2 {
                continue;
            }
            // Last arriver: max t_start, ties toward the lowest rank.
            let &last = instance
                .iter()
                .max_by_key(|&&id| {
                    (
                        store.record(id).t_start,
                        std::cmp::Reverse(store.record(id).rank.0),
                    )
                })
                .expect("nonempty instance");
            let last_rec = store.record(last);
            for &id in &instance {
                if id == last {
                    continue;
                }
                let rec = store.record(id);
                if last_rec.t_start > rec.t_start {
                    out.push(WaitInterval {
                        kind: WAIT_AT_COLLECTIVE,
                        rank: rec.rank,
                        event: id,
                        t_from: rec.t_start,
                        t_to: last_rec.t_start.min(rec.t_end),
                        cause_rank: last_rec.rank,
                        cause_site: last_rec.site,
                    });
                }
            }
        }

        // Unmatched posts: the rank is stuck from the post to trace end.
        for u in &matching.unmatched_recvs {
            let post = store.record(u.post);
            if t_hi > post.t_end {
                out.push(WaitInterval {
                    kind: WAIT_FAULT_STALL,
                    rank: u.rank,
                    event: u.post,
                    t_from: post.t_end,
                    t_to: t_hi,
                    // Blame the rank the receive was waiting on; a
                    // wildcard post can only blame the waiter itself.
                    cause_rank: u.src.unwrap_or(u.rank),
                    cause_site: post.site,
                });
            }
        }

        // Canonical order: by waiting event id (= canonical trace order),
        // then kind, so reports are byte-stable however we got here.
        out.waits
            .sort_by_key(|w| (w.event.ix(), w.kind, w.cause_rank.0));
        for w in &out.waits {
            let c = w.cost();
            out.blame[w.cause_rank.ix()] += c;
            out.waited[w.rank.ix()] += c;
            let e = out.per_kind.entry(w.kind).or_insert((0, 0));
            e.0 += 1;
            e.1 += c;
        }
        out
    }

    fn push(&mut self, w: WaitInterval) {
        if w.t_to > w.t_from {
            self.waits.push(w);
        }
    }

    /// Total idle ns over all classified waits.
    pub fn total_cost(&self) -> u64 {
        self.waits.iter().map(WaitInterval::cost).sum()
    }
}

/// Group collective records into synchronization instances: the i-th
/// collective record on each rank belongs to instance i.
pub fn collective_instances(store: &TraceStore) -> Vec<Vec<EventId>> {
    let mut instances: Vec<Vec<EventId>> = Vec::new();
    for r in 0..store.n_ranks() {
        let mut i = 0usize;
        for &id in store.by_rank(Rank(r as u32)) {
            if matches!(store.record(id).kind, EventKind::Collective(_)) {
                if instances.len() <= i {
                    instances.resize(i + 1, Vec::new());
                }
                instances[i].push(id);
                i += 1;
            }
        }
    }
    instances
}
