//! Critical-path extraction: the longest weighted chain of
//! happens-before-ordered events that bounds the makespan.
//!
//! The walk starts from the terminal event (max `t_end`, deterministic
//! tie-break) and steps backwards through the event graph, at each event
//! choosing among its immediate predecessors — the same-rank program
//! predecessor, the matched send (for a completed receive), or the
//! last-arriving participant (for a collective) — the one that finished
//! latest. That predecessor is the reason this event could not have
//! completed earlier, which is exactly the critical-path recurrence.
//!
//! Each path event contributes `t_end - max(t_start, prev.t_end)` ns: the
//! stretch of wall time only it covers. Because `t_end` is nonincreasing
//! along the backward walk, those stretches are disjoint subintervals of
//! the run, so `critical_path_len = Σ contributions ≤ makespan` holds by
//! construction (and is property-tested, not just argued).

use crate::wait::collective_instances;
use tracedbg_trace::{EventId, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;

/// The extracted critical path, start → terminal.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Path events in execution order.
    pub steps: Vec<EventId>,
    /// Exclusive time attributed to each step (same indexing).
    pub contributions: Vec<u64>,
    /// Σ contributions.
    pub len: u64,
}

impl CriticalPath {
    /// Extract the critical path of `store` under `matching`.
    pub fn build(store: &TraceStore, matching: &MessageMatching) -> Self {
        if store.is_empty() {
            return CriticalPath::default();
        }
        // Collective instance lookup: event -> its instance participants.
        let instances = collective_instances(store);
        let mut instance_of = vec![usize::MAX; store.len()];
        for (i, inst) in instances.iter().enumerate() {
            for id in inst {
                instance_of[id.ix()] = i;
            }
        }

        // Terminal: max t_end, ties toward the lowest rank then marker —
        // the same event whichever input plane delivered the records.
        let terminal = store
            .ids()
            .max_by_key(|&id| {
                let r = store.record(id);
                (
                    r.t_end,
                    std::cmp::Reverse(r.rank.0),
                    std::cmp::Reverse(r.marker),
                )
            })
            .expect("nonempty store");

        let mut rev = Vec::new();
        let mut visited = vec![false; store.len()];
        let mut cur = terminal;
        loop {
            rev.push(cur);
            visited[cur.ix()] = true;
            let rec = store.record(cur);
            // Candidate predecessors: (event, same_rank).
            let mut cands: Vec<(EventId, bool)> = Vec::new();
            if rec.marker > 1 {
                let lane = store.by_rank(rec.rank);
                cands.push((lane[(rec.marker - 2) as usize], true));
            }
            if let Some(m) = matching.match_of_recv(cur) {
                cands.push((m.send, false));
            }
            let inst = instance_of[cur.ix()];
            if inst != usize::MAX {
                // The last-arriving participant gates the collective.
                if let Some(&gate) = instances[inst].iter().max_by_key(|&&id| {
                    (
                        store.record(id).t_start,
                        std::cmp::Reverse(store.record(id).rank.0),
                    )
                }) {
                    if gate != cur {
                        cands.push((gate, false));
                    }
                }
            }
            // Latest-finishing predecessor; ties prefer staying on-rank,
            // then the lowest rank.
            let next = cands.into_iter().max_by_key(|&(id, same)| {
                let r = store.record(id);
                (r.t_end, same, std::cmp::Reverse(r.rank.0))
            });
            match next {
                // The gate edge of a zero-duration collective region can
                // point at an event the walk already holds; stop rather
                // than revisit.
                Some((id, _)) if !visited[id.ix()] => cur = id,
                _ => break,
            }
        }
        rev.reverse();

        let mut contributions = Vec::with_capacity(rev.len());
        let mut len = 0u64;
        let mut prev_end = store.time_bounds().0;
        for &id in &rev {
            let r = store.record(id);
            let from = r.t_start.max(prev_end);
            let c = r.t_end.saturating_sub(from);
            contributions.push(c);
            len += c;
            prev_end = prev_end.max(r.t_end);
        }
        CriticalPath {
            steps: rev,
            contributions,
            len,
        }
    }

    /// Aggregate path contribution per rank.
    pub fn per_rank(&self, store: &TraceStore) -> Vec<u64> {
        let mut v = vec![0u64; store.n_ranks()];
        for (i, &id) in self.steps.iter().enumerate() {
            v[store.record(id).rank.ix()] += self.contributions[i];
        }
        v
    }

    /// The terminal event of the path, if any.
    pub fn terminal(&self) -> Option<EventId> {
        self.steps.last().copied()
    }

    /// The ranks the path visits, in path order (deduplicated runs).
    pub fn rank_chain(&self, store: &TraceStore) -> Vec<Rank> {
        let mut out: Vec<Rank> = Vec::new();
        for &id in &self.steps {
            let r = store.record(id).rank;
            if out.last() != Some(&r) {
                out.push(r);
            }
        }
        out
    }
}
