//! Property-based tests of the profiler over real (faulted) executions.
//!
//! Random deadlock-free communication patterns run on the engine with a
//! randomly drawn crash / hang / delay fault injected, and the profiling
//! invariants are checked on every resulting trace:
//!
//! * `critical_path_len <= makespan <= busy_total + wait_total`;
//! * the sealed report round-trips through JSON with its digest intact;
//! * the report is a pure function of the trace: rebuilding from the
//!   text-serialized trace (`.trc` plane) and from an ingested store
//!   directory (`DiskStore` plane) is byte-identical;
//! * the critical path is a happens-before chain with per-rank
//!   contributions that sum to its length.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tracedbg_mpsim::{Engine, EngineConfig, SchedPolicy};
use tracedbg_profile::{CriticalPath, ProfileInput, ProfileReport, WaitAnalysis};
use tracedbg_trace::file::{read_text, write_text, TraceFile};
use tracedbg_trace::schedule::Fault;
use tracedbg_trace::{materialize, Rank, TraceStore};
use tracedbg_tracegraph::MessageMatching;
use tracedbg_workloads::random_comm;

/// A random pattern under a randomly drawn fault. Faulted runs may stall
/// or crash — every outcome is a legal profiling input.
fn run_faulted(seed: u64, nprocs: usize, n: usize, fault: Option<Fault>) -> TraceStore {
    let pat = random_comm::generate(seed, nprocs, n);
    let mut e = Engine::launch(
        EngineConfig {
            policy: SchedPolicy::RoundRobin,
            recorder: tracedbg_instrument::RecorderConfig::full(),
            faults: tracedbg_mpsim::FaultPlan::new(fault.into_iter().collect()),
            ..Default::default()
        },
        random_comm::programs(&pat, seed),
    );
    e.run();
    e.trace_store()
}

/// Draw one of the three fault families (or none) from the raw knobs.
fn pick_fault(kind: u8, nprocs: usize, a: u64, b: u64) -> Option<Fault> {
    let r = |v: u64| Rank((v % nprocs as u64) as u32);
    match kind % 4 {
        0 => None,
        1 => Some(Fault::Crash {
            rank: r(a),
            after_ops: b % 8,
        }),
        2 => Some(Fault::Hang {
            rank: r(a),
            after_ops: b % 8,
        }),
        _ => Some(Fault::Delay {
            src: r(a),
            dst: r(a + 1 + b % (nprocs as u64 - 1)),
            nth: b % 4,
            extra_ns: 10_000 + (a % 16) * 25_000,
        }),
    }
}

fn build(store: &TraceStore, workload: &str) -> ProfileReport {
    ProfileReport::build(
        store,
        ProfileInput {
            source: "test",
            workload,
            procs: store.n_ranks(),
            seed: 0,
            flight_dropped: 0,
        },
    )
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn makespan_inequality_holds_under_faults(
        seed in 0u64..10_000,
        nprocs in 2usize..6,
        n in 1usize..30,
        kind in 0u8..8,
        a in 0u64..64,
        b in 0u64..64,
    ) {
        tracedbg_mpsim::set_quiet_panics(true);
        let store = run_faulted(seed, nprocs, n, pick_fault(kind, nprocs, a, b));
        let report = build(&store, "random");
        prop_assert!(
            report.critical_path_len <= report.makespan,
            "path {} > makespan {}", report.critical_path_len, report.makespan
        );
        prop_assert!(
            report.makespan <= report.busy_total + report.wait_total,
            "makespan {} > busy {} + wait {}",
            report.makespan, report.busy_total, report.wait_total
        );
        // The sealed report round-trips with its digest intact.
        prop_assert!(report.digest_ok());
        let back = ProfileReport::from_json(&report.to_json()).unwrap();
        prop_assert_eq!(&back, &report);
        // Per-rank path contributions partition the path length, and
        // every blamed nanosecond shows up in the blame vector.
        let per_rank: u64 = report.ranks.iter().map(|r| r.path).sum();
        prop_assert_eq!(per_rank, report.critical_path_len);
        let blamed: u64 = report.ranks.iter().map(|r| r.blamed).sum();
        prop_assert_eq!(blamed, report.blame.iter().sum::<u64>());
    }

    #[test]
    fn report_is_identical_across_trace_planes(
        seed in 0u64..10_000,
        nprocs in 2usize..5,
        n in 1usize..20,
        kind in 0u8..8,
        a in 0u64..64,
        b in 0u64..64,
    ) {
        tracedbg_mpsim::set_quiet_panics(true);
        let store = run_faulted(seed, nprocs, n, pick_fault(kind, nprocs, a, b));
        let live = build(&store, "random").to_json();

        // `.trc` text plane: serialize and re-parse the trace file.
        let file = TraceFile::new(store.records().to_vec(), store.sites().clone(), store.n_ranks());
        let mut text = Vec::new();
        write_text(&mut text, &file).unwrap();
        let reread = read_text(&text[..]).unwrap().into_store();
        prop_assert_eq!(&build(&reread, "random").to_json(), &live);

        // DiskStore plane: ingest to an on-disk store and materialize it
        // back through `TraceSource`.
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "tracedbg-profile-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        tracedbg_store::ingest_records(
            store.records(),
            store.sites(),
            store.n_ranks(),
            &dir,
            tracedbg_store::StoreOptions::default(),
        )
        .unwrap();
        let disk = tracedbg_store::DiskStore::open(&dir).unwrap();
        let from_disk = materialize(&disk).unwrap();
        let disk_json = build(&from_disk, "random").to_json();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&disk_json, &live);
    }

    #[test]
    fn critical_path_is_a_causal_chain(
        seed in 0u64..10_000,
        nprocs in 2usize..6,
        n in 1usize..25,
    ) {
        let store = run_faulted(seed, nprocs, n, None);
        let matching = MessageMatching::build(&store);
        let path = CriticalPath::build(&store, &matching);
        prop_assert_eq!(path.steps.len(), path.contributions.len());
        prop_assert_eq!(path.contributions.iter().sum::<u64>(), path.len);
        // Steps never move backward in time, and each rank-local hop
        // moves to an earlier-or-equal marker going backward (the walk
        // emitted them terminal-last).
        for w in path.steps.windows(2) {
            let (a, b) = (store.record(w[0]), store.record(w[1]));
            prop_assert!(a.t_end <= b.t_end, "path steps out of time order");
        }
        // Every wait the classifier emits has positive cost and a cause.
        let waits = WaitAnalysis::build(&store, &matching);
        for wi in &waits.waits {
            prop_assert!(wi.cost() > 0);
            prop_assert!(wi.cause_rank.ix() < store.n_ranks());
        }
    }
}
