//! Trace comparison — verifying replay fidelity.
//!
//! §4.2 promises that a controlled replay "has identical event causality
//! with the original program execution". [`diff_traces`] checks that claim
//! mechanically: walk each rank's event lane in both traces and report the
//! first divergence (different kind, site, message, or timing) per rank.
//! The debugger uses it to validate replays; tests use it to pin down
//! determinism regressions.

use crate::event::TraceRecord;
use crate::history::TraceStore;
use crate::ids::Rank;
use std::fmt;

/// How strictly to compare events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiffMode {
    /// Kind, site, message endpoints/tag/seq, args — but not timestamps.
    Causal,
    /// Everything including simulated timestamps (bit-exact replay).
    Exact,
}

/// The first divergence found on one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    pub rank: Rank,
    /// Marker at which the traces diverge (1-based; equals the position in
    /// the lane).
    pub marker: u64,
    /// The event in the left trace, if it exists at that position.
    pub left: Option<TraceRecord>,
    /// The event in the right trace, if it exists at that position.
    pub right: Option<TraceRecord>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence on {:?} at marker {}:",
            self.rank, self.marker
        )?;
        match &self.left {
            Some(l) => writeln!(f, "  left : {l}")?,
            None => writeln!(f, "  left : <no event>")?,
        }
        match &self.right {
            Some(r) => write!(f, "  right: {r}"),
            None => write!(f, "  right: <no event>"),
        }
    }
}

fn events_equal(a: &TraceRecord, b: &TraceRecord, mode: DiffMode) -> bool {
    let causal = a.kind == b.kind
        && a.site == b.site
        && a.msg == b.msg
        && a.args == b.args
        && a.label == b.label
        && a.marker == b.marker;
    match mode {
        DiffMode::Causal => causal,
        DiffMode::Exact => causal && a.t_start == b.t_start && a.t_end == b.t_end,
    }
}

/// Compare two traces rank by rank; one divergence (the first) per rank.
/// Empty result = the traces agree under `mode`.
pub fn diff_traces(left: &TraceStore, right: &TraceStore, mode: DiffMode) -> Vec<Divergence> {
    let n = left.n_ranks().max(right.n_ranks());
    let mut out = Vec::new();
    for r in 0..n {
        let rank = Rank(r as u32);
        let llane: Vec<&TraceRecord> = if r < left.n_ranks() {
            left.by_rank(rank)
                .iter()
                .map(|&id| left.record(id))
                .collect()
        } else {
            Vec::new()
        };
        let rlane: Vec<&TraceRecord> = if r < right.n_ranks() {
            right
                .by_rank(rank)
                .iter()
                .map(|&id| right.record(id))
                .collect()
        } else {
            Vec::new()
        };
        let len = llane.len().max(rlane.len());
        for i in 0..len {
            match (llane.get(i), rlane.get(i)) {
                (Some(l), Some(rr)) if events_equal(l, rr, mode) => continue,
                (l, rr) => {
                    out.push(Divergence {
                        rank,
                        marker: i as u64 + 1,
                        left: l.map(|e| (*e).clone()),
                        right: rr.map(|e| (*e).clone()),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// A stable 64-bit digest of a record sequence (FNV-1a over each record's
/// canonical display form). Two runs with equal digests produced the same
/// observable execution; the explorer uses this to prune equivalent
/// schedules and the golden corpus uses it as a cheap identity check.
pub fn trace_digest(records: &[TraceRecord]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for rec in records {
        for b in rec.to_string().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::loc::SiteTable;

    fn store(markers: &[(u32, u64, EventKind, u64)]) -> TraceStore {
        let recs = markers
            .iter()
            .map(|&(r, m, k, t)| TraceRecord::basic(r, k, m, t).with_span(t, t + 1))
            .collect();
        TraceStore::build(recs, SiteTable::new(), 0)
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        use EventKind::*;
        let spec = [(0, 1, Compute, 0), (0, 2, Send, 10), (1, 1, RecvDone, 5)];
        let a = store(&spec);
        let b = store(&spec);
        assert!(diff_traces(&a, &b, DiffMode::Exact).is_empty());
        assert!(diff_traces(&a, &b, DiffMode::Causal).is_empty());
    }

    #[test]
    fn kind_change_detected() {
        use EventKind::*;
        let a = store(&[(0, 1, Compute, 0), (0, 2, Send, 10)]);
        let b = store(&[(0, 1, Compute, 0), (0, 2, Probe, 10)]);
        let d = diff_traces(&a, &b, DiffMode::Causal);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rank, Rank(0));
        assert_eq!(d[0].marker, 2);
        assert_eq!(d[0].left.as_ref().unwrap().kind, Send);
        let text = format!("{}", d[0]);
        assert!(text.contains("marker 2"), "{text}");
    }

    #[test]
    fn timing_only_difference_is_causal_equal() {
        use EventKind::*;
        let a = store(&[(0, 1, Compute, 0)]);
        let b = store(&[(0, 1, Compute, 99)]);
        assert!(diff_traces(&a, &b, DiffMode::Causal).is_empty());
        let d = diff_traces(&a, &b, DiffMode::Exact);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn shorter_lane_reports_missing_event() {
        use EventKind::*;
        let a = store(&[(0, 1, Compute, 0), (0, 2, Compute, 10)]);
        let b = store(&[(0, 1, Compute, 0)]);
        let d = diff_traces(&a, &b, DiffMode::Causal);
        assert_eq!(d.len(), 1);
        assert!(d[0].right.is_none());
        assert_eq!(d[0].marker, 2);
    }

    #[test]
    fn extra_rank_reported() {
        use EventKind::*;
        let a = store(&[(0, 1, Compute, 0)]);
        let b = store(&[(0, 1, Compute, 0), (1, 1, Compute, 0)]);
        let d = diff_traces(&a, &b, DiffMode::Causal);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rank, Rank(1));
        assert!(d[0].left.is_none());
    }

    #[test]
    fn digest_distinguishes_and_matches() {
        use EventKind::*;
        let a = [
            TraceRecord::basic(0u32, Compute, 1, 0),
            TraceRecord::basic(0u32, Send, 2, 5),
        ];
        let b = [
            TraceRecord::basic(0u32, Compute, 1, 0),
            TraceRecord::basic(0u32, Send, 2, 5),
        ];
        let c = [
            TraceRecord::basic(0u32, Compute, 1, 0),
            TraceRecord::basic(0u32, Probe, 2, 5),
        ];
        assert_eq!(trace_digest(&a), trace_digest(&b));
        assert_ne!(trace_digest(&a), trace_digest(&c));
        assert_ne!(trace_digest(&a), trace_digest(&a[..1]));
    }

    #[test]
    fn one_divergence_per_rank() {
        use EventKind::*;
        let a = store(&[(0, 1, Compute, 0), (0, 2, Compute, 1), (0, 3, Compute, 2)]);
        let b = store(&[(0, 1, Probe, 0), (0, 2, Probe, 1), (0, 3, Probe, 2)]);
        let d = diff_traces(&a, &b, DiffMode::Causal);
        assert_eq!(d.len(), 1, "only the first divergence per rank");
        assert_eq!(d[0].marker, 1);
    }
}
