//! Schedule artifacts — serialized scheduling decision sequences.
//!
//! The engine's nondeterminism is confined to two choice points: which
//! runnable process is granted the next turn, and which candidate message a
//! wildcard receive matches. A [`Decision`] names one resolved choice; the
//! ordered sequence of every decision a run made, together with the fault
//! plan that was active, is a complete *schedule artifact*
//! ([`ScheduleArtifact`]): re-executing the program under the same decision
//! sequence regenerates the identical execution. The explorer records an
//! artifact for every failing interleaving it finds, shrinks it, and the
//! debugger replays it (`tracedbg replay --schedule`) — MAD-style event
//! manipulation made reproducible.
//!
//! Artifacts are plain data (serde/JSON) so they can be committed as a
//! regression corpus and replayed by any later build.

use crate::ids::Rank;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One resolved scheduling choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// The scheduler granted `rank` the next turn.
    Turn { rank: Rank },
    /// A receive on `dst` matched the message `(src, seq)`.
    Match { dst: Rank, src: Rank, seq: u64 },
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Turn { rank } => write!(f, "turn {rank:?}"),
            Decision::Match { dst, src, seq } => write!(f, "match {dst:?} <- {src:?}#{seq}"),
        }
    }
}

/// A decision together with every alternative that was available at that
/// point — the branch structure systematic exploration enumerates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionPoint {
    pub chosen: Decision,
    /// All admissible choices at this point (includes `chosen`).
    pub alternatives: Vec<Decision>,
}

impl DecisionPoint {
    /// Was there an actual choice here?
    pub fn is_branch(&self) -> bool {
        self.alternatives.len() > 1
    }
}

/// An injected fault. Delays stay within MPI legality (they shift arrival
/// times, which only biases wildcard matching); crash/hang silence a
/// process after its first `after_ops` runtime operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Add `extra_ns` to the arrival time of the `nth` message (0-based
    /// send sequence) from `src` to `dst`.
    Delay {
        src: Rank,
        dst: Rank,
        nth: u64,
        extra_ns: u64,
    },
    /// Process `rank` crashes (stops servicing, peers see silence) at its
    /// `after_ops + 1`-th runtime operation.
    Crash { rank: Rank, after_ops: u64 },
    /// Process `rank` hangs (alive but never progresses) at its
    /// `after_ops + 1`-th runtime operation.
    Hang { rank: Rank, after_ops: u64 },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Delay {
                src,
                dst,
                nth,
                extra_ns,
            } => write!(f, "delay {src:?}->{dst:?} #{nth} by {extra_ns}ns"),
            Fault::Crash { rank, after_ops } => write!(f, "crash {rank:?} after {after_ops} ops"),
            Fault::Hang { rank, after_ops } => write!(f, "hang {rank:?} after {after_ops} ops"),
        }
    }
}

/// Current artifact format version (bump on incompatible change).
pub const ARTIFACT_VERSION: u32 = 1;

/// Provenance of an artifact: how the exploration that produced it was
/// configured and how long it took. Purely informational — replay ignores
/// it — and optional, so artifacts written by older builds still parse.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Worker threads the exploration ran with (resolved: never 0).
    pub jobs: u64,
    /// Exploration run budget that was configured.
    pub runs: u64,
    /// Wall-clock duration of the whole exploration, in milliseconds.
    pub wall_ms: u64,
    /// tracedbg version that wrote the artifact.
    pub version: String,
}

/// A complete, replayable description of one explored execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleArtifact {
    pub version: u32,
    /// Workload spec as the CLI understands it (e.g. `racy-wildcard`,
    /// `script:path`).
    pub workload: String,
    /// Process count the workload was instantiated with.
    pub procs: usize,
    /// Workload seed (some workloads generate their pattern from it).
    pub seed: u64,
    /// Faults that were injected into the run.
    pub faults: Vec<Fault>,
    /// The decision sequence. A replay follows it to the end, then falls
    /// back to the deterministic policy — so a shrunk prefix remains a
    /// complete schedule.
    pub decisions: Vec<Decision>,
    /// Failure class this artifact reproduces (`deadlock`, `panic`,
    /// `lint`, `divergence`), if any.
    pub failure: Option<String>,
    /// Run provenance (absent in artifacts from older builds; replay
    /// ignores it either way).
    pub meta: Option<ArtifactMeta>,
    /// Flight-recorder dump of the confirming run — the last engine
    /// decisions before the failure, rendered one span per line. Attached
    /// to deadlock/panic artifacts; absent elsewhere and in artifacts from
    /// older builds.
    pub flight: Option<Vec<String>>,
}

impl ScheduleArtifact {
    pub fn new(workload: impl Into<String>, procs: usize, seed: u64) -> Self {
        ScheduleArtifact {
            version: ARTIFACT_VERSION,
            workload: workload.into(),
            procs,
            seed,
            faults: Vec::new(),
            decisions: Vec::new(),
            failure: None,
            meta: None,
            flight: None,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialization cannot fail")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        let a: ScheduleArtifact =
            serde_json::from_str(s).map_err(|e| format!("bad schedule artifact: {e:?}"))?;
        if a.version != ARTIFACT_VERSION {
            return Err(format!(
                "schedule artifact version {} unsupported (expected {})",
                a.version, ARTIFACT_VERSION
            ));
        }
        Ok(a)
    }
}

impl fmt::Display for ScheduleArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} procs={} seed={} faults={} decisions={}",
            self.workload,
            self.procs,
            self.seed,
            self.faults.len(),
            self.decisions.len()
        )?;
        if let Some(cls) = &self.failure {
            write!(f, " failure={cls}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_json_roundtrip() {
        let mut a = ScheduleArtifact::new("racy-wildcard", 3, 7);
        a.faults.push(Fault::Delay {
            src: Rank(1),
            dst: Rank(0),
            nth: 0,
            extra_ns: 99_000,
        });
        a.faults.push(Fault::Crash {
            rank: Rank(2),
            after_ops: 3,
        });
        a.decisions.push(Decision::Turn { rank: Rank(0) });
        a.decisions.push(Decision::Match {
            dst: Rank(0),
            src: Rank(2),
            seq: 0,
        });
        a.failure = Some("deadlock".into());
        let json = a.to_json();
        let back = ScheduleArtifact::from_json(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn artifact_without_meta_or_flight_still_parses() {
        // An artifact exactly as a pre-telemetry build wrote it: no `meta`,
        // no `flight` keys at all. Committed regression corpora must stay
        // replayable.
        let old = r#"{"version":1,"workload":"ring","procs":4,"seed":9,
            "faults":[],"decisions":[{"Turn":{"rank":1}}],"failure":"deadlock"}"#;
        let a = ScheduleArtifact::from_json(old).unwrap();
        assert_eq!(a.workload, "ring");
        assert_eq!(a.decisions.len(), 1);
        assert!(a.meta.is_none());
        assert!(a.flight.is_none());
    }

    #[test]
    fn artifact_meta_and_flight_roundtrip() {
        let mut a = ScheduleArtifact::new("ring", 4, 0);
        a.meta = Some(ArtifactMeta {
            jobs: 4,
            runs: 64,
            wall_ms: 123,
            version: "0.1.0".into(),
        });
        a.flight = vec!["d1 t0 turn rank=0".to_string()].into();
        let back = ScheduleArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.meta.as_ref().unwrap().jobs, 4);
        assert_eq!(back.flight.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn unknown_fields_in_artifact_json_are_ignored() {
        // Forward compatibility: a *newer* build may add fields; this build
        // must still load the decisions it understands.
        let future = r#"{"version":1,"workload":"ring","procs":2,"seed":0,
            "faults":[],"decisions":[],"failure":null,"meta":null,
            "flight":null,"some_future_field":{"x":1}}"#;
        let a = ScheduleArtifact::from_json(future).unwrap();
        assert_eq!(a.procs, 2);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut a = ScheduleArtifact::new("ring", 4, 0);
        a.version = 999;
        let err = ScheduleArtifact::from_json(&a.to_json()).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn decision_display() {
        let t = Decision::Turn { rank: Rank(3) };
        let m = Decision::Match {
            dst: Rank(0),
            src: Rank(2),
            seq: 5,
        };
        assert_eq!(format!("{t}"), "turn P3");
        assert_eq!(format!("{m}"), "match P0 <- P2#5");
    }

    #[test]
    fn branch_detection() {
        let d = Decision::Turn { rank: Rank(0) };
        let single = DecisionPoint {
            chosen: d,
            alternatives: vec![d],
        };
        assert!(!single.is_branch());
        let multi = DecisionPoint {
            chosen: d,
            alternatives: vec![d, Decision::Turn { rank: Rank(1) }],
        };
        assert!(multi.is_branch());
    }
}
