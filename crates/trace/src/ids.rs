//! Small copy identifiers shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The rank (process number) of a simulated process, 0-based as in MPI.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// Index form for vectors sized by the number of processes.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(r: u32) -> Self {
        Rank(r)
    }
}

impl From<usize> for Rank {
    fn from(r: usize) -> Self {
        Rank(r as u32)
    }
}

/// A message tag. Non-negative values are user tags; negative values are
/// reserved for the runtime (collectives, control traffic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tag(pub i32);

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i32> for Tag {
    fn from(t: i32) -> Self {
        Tag(t)
    }
}

/// Wildcard source for receives, the analog of `MPI_ANY_SOURCE`. Receives
/// posted with this are the (only) nondeterministic constructs the replay
/// controller must pin down (§4.2).
pub const ANY_SOURCE: Option<Rank> = None;

/// Wildcard tag for receives, the analog of `MPI_ANY_TAG`.
pub const ANY_TAG: Option<Tag> = None;

/// Interned source location id; resolved through a [`crate::SiteTable`].
///
/// The `UserMonitor` records a `SiteId` (the analog of "the address it was
/// called from", §2.2) rather than strings so that per-call cost stays at a
/// couple of machine words.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Sentinel for events with no registered source location.
    pub const UNKNOWN: SiteId = SiteId(u32::MAX);

    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SiteId::UNKNOWN {
            write!(f, "site?")
        } else {
            write!(f, "site{}", self.0)
        }
    }
}

/// A communication channel: one per unordered pair of processes, as in the
/// paper's trace graph (§3.2: "one channel per pair of processes").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId {
    pub lo: Rank,
    pub hi: Rank,
}

impl ChannelId {
    /// Canonical channel for a (src, dst) pair; direction-insensitive.
    pub fn between(a: Rank, b: Rank) -> Self {
        if a.0 <= b.0 {
            ChannelId { lo: a, hi: b }
        } else {
            ChannelId { lo: b, hi: a }
        }
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch({},{})", self.lo.0, self.hi.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip_and_order() {
        let r: Rank = 3u32.into();
        assert_eq!(r.ix(), 3);
        assert!(Rank(1) < Rank(2));
        assert_eq!(format!("{:?}", Rank(7)), "P7");
    }

    #[test]
    fn channel_is_canonical() {
        assert_eq!(
            ChannelId::between(Rank(5), Rank(2)),
            ChannelId::between(Rank(2), Rank(5))
        );
        let c = ChannelId::between(Rank(5), Rank(2));
        assert_eq!(c.lo, Rank(2));
        assert_eq!(c.hi, Rank(5));
    }

    #[test]
    fn self_channel_allowed() {
        let c = ChannelId::between(Rank(4), Rank(4));
        assert_eq!(c.lo, c.hi);
    }

    #[test]
    fn site_sentinel() {
        assert_eq!(format!("{:?}", SiteId::UNKNOWN), "site?");
        assert_ne!(SiteId(0), SiteId::UNKNOWN);
    }
}
