//! Trace records — one per executed instrumented construct (§3).
//!
//! "A record identifies the construct by giving its program location, the
//! id of the process that executed the construct, and the start and end
//! time of the construct execution. In addition, if the construct is a
//! message passing operation, the record contains the message tag together
//! with the source and destination of the message."

use crate::ids::{Rank, SiteId, Tag};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Collective operations the runtime can trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CollKind {
    Barrier,
    Bcast,
    Reduce,
    AllReduce,
    Gather,
    Scatter,
}

/// The kind of an instrumented construct.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// Process began execution.
    ProcStart,
    /// Process finished execution normally.
    ProcEnd,
    /// Function entry (UserMonitor / construct instrumentation).
    FnEnter,
    /// Function exit.
    FnExit,
    /// A send completed locally (buffered) or was matched (synchronous).
    Send,
    /// A receive was posted; `t_end` of this record is the post time.
    RecvPost,
    /// A receive completed; the matched message is in `msg`.
    RecvDone,
    /// A block of local computation (carries its simulated duration).
    Compute,
    /// A user probe: label + value snapshot, the state-inspection hook the
    /// debugger's `step` views use.
    Probe,
    /// A collective operation completed.
    Collective(CollKind),
}

impl EventKind {
    /// Is this a message-passing construct (carries `MsgInfo`)?
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            EventKind::Send | EventKind::RecvPost | EventKind::RecvDone | EventKind::Collective(_)
        )
    }

    /// Short code used by the text trace format.
    pub fn code(self) -> &'static str {
        match self {
            EventKind::ProcStart => "PS",
            EventKind::ProcEnd => "PE",
            EventKind::FnEnter => "FE",
            EventKind::FnExit => "FX",
            EventKind::Send => "SN",
            EventKind::RecvPost => "RP",
            EventKind::RecvDone => "RD",
            EventKind::Compute => "CP",
            EventKind::Probe => "PR",
            EventKind::Collective(CollKind::Barrier) => "CB",
            EventKind::Collective(CollKind::Bcast) => "CC",
            EventKind::Collective(CollKind::Reduce) => "CR",
            EventKind::Collective(CollKind::AllReduce) => "CA",
            EventKind::Collective(CollKind::Gather) => "CG",
            EventKind::Collective(CollKind::Scatter) => "CS",
        }
    }

    /// Inverse of [`EventKind::code`].
    pub fn from_code(code: &str) -> Option<EventKind> {
        Some(match code {
            "PS" => EventKind::ProcStart,
            "PE" => EventKind::ProcEnd,
            "FE" => EventKind::FnEnter,
            "FX" => EventKind::FnExit,
            "SN" => EventKind::Send,
            "RP" => EventKind::RecvPost,
            "RD" => EventKind::RecvDone,
            "CP" => EventKind::Compute,
            "PR" => EventKind::Probe,
            "CB" => EventKind::Collective(CollKind::Barrier),
            "CC" => EventKind::Collective(CollKind::Bcast),
            "CR" => EventKind::Collective(CollKind::Reduce),
            "CA" => EventKind::Collective(CollKind::AllReduce),
            "CG" => EventKind::Collective(CollKind::Gather),
            "CS" => EventKind::Collective(CollKind::Scatter),
            _ => return None,
        })
    }

    /// All kinds, for exhaustive property tests.
    pub fn all() -> Vec<EventKind> {
        use CollKind::*;
        use EventKind::*;
        vec![
            ProcStart,
            ProcEnd,
            FnEnter,
            FnExit,
            Send,
            RecvPost,
            RecvDone,
            Compute,
            Probe,
            Collective(Barrier),
            Collective(Bcast),
            Collective(Reduce),
            Collective(AllReduce),
            Collective(Gather),
            Collective(Scatter),
        ]
    }
}

/// Message endpoints + tag carried by communication records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MsgInfo {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Per-(src,dst) send sequence number; with the MPI non-overtaking
    /// guarantee this is what matches a send record to its receive record.
    pub seq: u64,
}

/// One trace record.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Executing process.
    pub rank: Rank,
    /// Construct kind.
    pub kind: EventKind,
    /// Execution-marker count of `rank` at this event (1-based: the first
    /// event a process executes has marker 1).
    pub marker: u64,
    /// Simulated start time (ns).
    pub t_start: u64,
    /// Simulated end time (ns). For a `RecvPost` that never completed this
    /// equals `t_start`; analyses treat the construct as open-ended.
    pub t_end: u64,
    /// Interned source location of the construct.
    pub site: SiteId,
    /// Message info for communication constructs.
    pub msg: Option<MsgInfo>,
    /// First two integer arguments of the instrumented call (the
    /// `UserMonitor` contract of §2.2) or the probe value in `args[0]`.
    pub args: [i64; 2],
    /// Optional label (probe name, collective name, ...).
    pub label: Option<String>,
}

impl TraceRecord {
    /// A minimal record for tests and synthetic traces.
    pub fn basic(rank: impl Into<Rank>, kind: EventKind, marker: u64, t: u64) -> Self {
        TraceRecord {
            rank: rank.into(),
            kind,
            marker,
            t_start: t,
            t_end: t,
            site: SiteId::UNKNOWN,
            msg: None,
            args: [0, 0],
            label: None,
        }
    }

    pub fn with_span(mut self, t_start: u64, t_end: u64) -> Self {
        self.t_start = t_start;
        self.t_end = t_end;
        self
    }

    pub fn with_msg(mut self, msg: MsgInfo) -> Self {
        self.msg = Some(msg);
        self
    }

    pub fn with_site(mut self, site: SiteId) -> Self {
        self.site = site;
        self
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    pub fn with_args(mut self, a: i64, b: i64) -> Self {
        self.args = [a, b];
        self
    }

    /// The execution marker this record carries.
    pub fn marker_of(&self) -> crate::Marker {
        crate::Marker {
            rank: self.rank,
            count: self.marker,
        }
    }

    /// Duration of the construct (0 for instantaneous / unfinished).
    pub fn duration(&self) -> u64 {
        self.t_end.saturating_sub(self.t_start)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:?} m{} {}..{}]",
            self.kind.code(),
            self.rank,
            self.marker,
            self.t_start,
            self.t_end
        )?;
        if let Some(m) = &self.msg {
            write!(f, " {}->{} tag{} seq{}", m.src, m.dst, m.tag, m.seq)?;
        }
        if let Some(l) = &self.label {
            write!(f, " '{l}'")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_for_all_kinds() {
        for k in EventKind::all() {
            assert_eq!(EventKind::from_code(k.code()), Some(k), "kind {k:?}");
        }
        assert_eq!(EventKind::from_code("ZZ"), None);
    }

    #[test]
    fn comm_classification() {
        assert!(EventKind::Send.is_comm());
        assert!(EventKind::RecvDone.is_comm());
        assert!(EventKind::Collective(CollKind::Barrier).is_comm());
        assert!(!EventKind::FnEnter.is_comm());
        assert!(!EventKind::Compute.is_comm());
    }

    #[test]
    fn builder_chain() {
        let r = TraceRecord::basic(2u32, EventKind::Send, 5, 100)
            .with_span(100, 120)
            .with_msg(MsgInfo {
                src: Rank(2),
                dst: Rank(0),
                tag: Tag(7),
                bytes: 64,
                seq: 3,
            })
            .with_args(7, 0)
            .with_label("result");
        assert_eq!(r.duration(), 20);
        assert_eq!(r.marker_of(), crate::Marker::new(2u32, 5));
        assert_eq!(r.msg.unwrap().tag, Tag(7));
        let s = format!("{r}");
        assert!(s.contains("SN"), "{s}");
        assert!(s.contains("2->0"), "{s}");
    }

    #[test]
    fn unfinished_recv_has_zero_duration() {
        let r = TraceRecord::basic(0u32, EventKind::RecvPost, 1, 50);
        assert_eq!(r.duration(), 0);
    }
}
