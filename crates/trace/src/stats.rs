//! Per-trace summary statistics.
//!
//! Used by the benchmark harnesses (message counts per figure) and by the
//! debugger's history reports.

use crate::event::{EventKind, TraceRecord};
use crate::ids::Rank;
use crate::source::{Select, SourceError, TraceSource};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics over a set of trace records.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceStats {
    pub n_events: usize,
    pub n_ranks: usize,
    /// Event count per kind code (BTreeMap for stable display order).
    pub per_kind: BTreeMap<&'static str, usize>,
    /// Event count per rank.
    pub per_rank: BTreeMap<u32, usize>,
    /// Completed messages (RecvDone records).
    pub messages_delivered: usize,
    /// Send records emitted.
    pub sends: usize,
    /// Total payload bytes over all sends.
    pub bytes_sent: u64,
    /// Simulated makespan (max t_end - min t_start).
    pub makespan: u64,
}

impl TraceStats {
    /// Compute statistics from records.
    pub fn compute(records: &[TraceRecord]) -> Self {
        let mut s = TraceStats::default();
        let mut span = (u64::MAX, 0u64);
        for r in records {
            s.fold(r, &mut span);
        }
        s.seal(span);
        s
    }

    /// Compute statistics by streaming any [`TraceSource`] — one pass,
    /// constant memory: an on-disk store is never materialized.
    pub fn from_source(src: &dyn TraceSource) -> Result<Self, SourceError> {
        let mut s = TraceStats::default();
        let mut span = (u64::MAX, 0u64);
        for rec in src.select(Select::All)? {
            s.fold(&rec?, &mut span);
        }
        s.seal(span);
        Ok(s)
    }

    fn fold(&mut self, r: &TraceRecord, (t_lo, t_hi): &mut (u64, u64)) {
        self.n_events += 1;
        *self.per_kind.entry(r.kind.code()).or_insert(0) += 1;
        *self.per_rank.entry(r.rank.0).or_insert(0) += 1;
        *t_lo = (*t_lo).min(r.t_start);
        *t_hi = (*t_hi).max(r.t_end);
        match r.kind {
            EventKind::Send => {
                self.sends += 1;
                if let Some(m) = &r.msg {
                    self.bytes_sent += m.bytes as u64;
                }
            }
            EventKind::RecvDone => self.messages_delivered += 1,
            _ => {}
        }
    }

    fn seal(&mut self, (t_lo, t_hi): (u64, u64)) {
        self.n_ranks = self.per_rank.len();
        self.makespan = if self.n_events == 0 { 0 } else { t_hi - t_lo };
    }

    /// Messages delivered *to* a given rank.
    pub fn received_by(records: &[TraceRecord], rank: Rank) -> usize {
        records
            .iter()
            .filter(|r| r.kind == EventKind::RecvDone && r.rank == rank)
            .count()
    }

    /// Messages sent *by* a given rank.
    pub fn sent_by(records: &[TraceRecord], rank: Rank) -> usize {
        records
            .iter()
            .filter(|r| r.kind == EventKind::Send && r.rank == rank)
            .count()
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events, {} ranks, {} sends / {} delivered, {} bytes, makespan {} ns",
            self.n_events,
            self.n_ranks,
            self.sends,
            self.messages_delivered,
            self.bytes_sent,
            self.makespan
        )?;
        for (k, n) in &self.per_kind {
            writeln!(f, "  {k}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MsgInfo, TraceRecord};
    use crate::ids::{Rank, Tag};

    fn msg(src: u32, dst: u32, bytes: u32) -> MsgInfo {
        MsgInfo {
            src: Rank(src),
            dst: Rank(dst),
            tag: Tag(0),
            bytes,
            seq: 0,
        }
    }

    #[test]
    fn counts_and_makespan() {
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 10)
                .with_span(10, 12)
                .with_msg(msg(0, 1, 100)),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 12)
                .with_span(12, 14)
                .with_msg(msg(0, 1, 100)),
            TraceRecord::basic(0u32, EventKind::Compute, 2, 12).with_span(12, 50),
        ];
        let s = TraceStats::compute(&recs);
        assert_eq!(s.n_events, 3);
        assert_eq!(s.n_ranks, 2);
        assert_eq!(s.sends, 1);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.makespan, 40);
        assert_eq!(s.per_kind["SN"], 1);
        assert_eq!(TraceStats::received_by(&recs, Rank(1)), 1);
        assert_eq!(TraceStats::sent_by(&recs, Rank(0)), 1);
        assert_eq!(TraceStats::sent_by(&recs, Rank(1)), 0);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.n_events, 0);
        assert_eq!(s.makespan, 0);
    }

    #[test]
    fn from_source_matches_compute() {
        use crate::loc::SiteTable;
        let recs = vec![
            TraceRecord::basic(0u32, EventKind::Send, 1, 10)
                .with_span(10, 12)
                .with_msg(msg(0, 1, 100)),
            TraceRecord::basic(1u32, EventKind::RecvDone, 1, 12)
                .with_span(12, 14)
                .with_msg(msg(0, 1, 100)),
            TraceRecord::basic(0u32, EventKind::Compute, 2, 12).with_span(12, 50),
        ];
        let want = TraceStats::compute(&recs);
        let store = crate::TraceStore::build(recs, SiteTable::new(), 2);
        assert_eq!(TraceStats::from_source(&store).unwrap(), want);
    }
}
