//! Trace file formats.
//!
//! Two interchangeable on-disk representations of a run's history:
//!
//! * a compact, line-oriented **text format** (`.trc`) in the spirit of the
//!   AIMS trace files the paper consumed — easy to diff, grep, and feed to
//!   the visualizers;
//! * a **JSON-lines format** (`.jsonl`) for interchange with other tools.
//!
//! Both carry the site table inline so a trace file is self-contained.

use crate::event::{EventKind, MsgInfo, TraceRecord};
use crate::ids::{Rank, SiteId, Tag};
use crate::loc::{SiteTable, SourceLoc};
use std::io::{self, BufRead, Write};

/// Everything a trace file stores.
#[derive(Debug)]
pub struct TraceFile {
    pub records: Vec<TraceRecord>,
    pub sites: SiteTable,
    pub n_ranks: usize,
}

impl TraceFile {
    pub fn new(records: Vec<TraceRecord>, sites: SiteTable, n_ranks: usize) -> Self {
        TraceFile {
            records,
            sites,
            n_ranks,
        }
    }

    /// Convert into a queryable store.
    pub fn into_store(self) -> crate::TraceStore {
        crate::TraceStore::build(self.records, self.sites, self.n_ranks)
    }
}

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum ReadError {
    Io(io::Error),
    /// Malformed line, with its 1-based line number and a description.
    Parse(usize, String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Write the text format.
///
/// Layout:
/// ```text
/// #tracedbg v1
/// #ranks <n>
/// S <id> <line> <file>|<func>
/// R <rank> <code> <marker> <t0> <t1> <site|-> <a> <b> [M <src> <dst> <tag> <bytes> <seq>] [L <label>]
/// ```
pub fn write_text<W: Write>(w: &mut W, file: &TraceFile) -> io::Result<()> {
    writeln!(w, "#tracedbg v1")?;
    writeln!(w, "#ranks {}", file.n_ranks)?;
    for (i, s) in file.sites.snapshot().iter().enumerate() {
        writeln!(w, "S {} {} {}|{}", i, s.line, s.file, s.func)?;
    }
    for r in &file.records {
        write!(
            w,
            "R {} {} {} {} {} ",
            r.rank.0,
            r.kind.code(),
            r.marker,
            r.t_start,
            r.t_end
        )?;
        if r.site == SiteId::UNKNOWN {
            write!(w, "- ")?;
        } else {
            write!(w, "{} ", r.site.0)?;
        }
        write!(w, "{} {}", r.args[0], r.args[1])?;
        if let Some(m) = &r.msg {
            write!(
                w,
                " M {} {} {} {} {}",
                m.src.0, m.dst.0, m.tag.0, m.bytes, m.seq
            )?;
        }
        // Labels are written trimmed; a label that is empty after trimming
        // is unrepresentable in a line-oriented format and reads back as
        // absent.
        if let Some(l) = &r.label {
            let l = l.trim_end();
            if !l.is_empty() {
                write!(w, " L {l}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

fn parse_err(ln: usize, msg: impl Into<String>) -> ReadError {
    ReadError::Parse(ln, msg.into())
}

fn next_field<'a, I: Iterator<Item = &'a str>>(
    it: &mut I,
    ln: usize,
    what: &str,
) -> Result<&'a str, ReadError> {
    it.next()
        .ok_or_else(|| parse_err(ln, format!("missing {what}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, ln: usize, what: &str) -> Result<T, ReadError> {
    s.parse()
        .map_err(|_| parse_err(ln, format!("bad {what}: {s:?}")))
}

/// Read the text format.
pub fn read_text<R: BufRead>(r: R) -> Result<TraceFile, ReadError> {
    let mut n_ranks = 0usize;
    let mut sites: Vec<SourceLoc> = Vec::new();
    let mut records = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let ln = i + 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#ranks ") {
            n_ranks = parse_num(rest.trim(), ln, "rank count")?;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("S ") {
            // S <id> <line> <file>|<func>
            let mut it = rest.splitn(3, ' ');
            let id: usize = parse_num(next_field(&mut it, ln, "site id")?, ln, "site id")?;
            let lno: u32 = parse_num(next_field(&mut it, ln, "site line")?, ln, "site line")?;
            let tail = next_field(&mut it, ln, "site file|func")?;
            let (f, func) = tail
                .split_once('|')
                .ok_or_else(|| parse_err(ln, "site missing '|'"))?;
            if id != sites.len() {
                return Err(parse_err(ln, format!("site id {id} out of order")));
            }
            sites.push(SourceLoc::new(f, lno, func));
            continue;
        }
        if let Some(rest) = line.strip_prefix("R ") {
            // Label is free text: split it off first.
            let (head, label) = match rest.split_once(" L ") {
                Some((h, l)) => (h, Some(l.to_string())),
                None => (rest, None),
            };
            let mut it = head.split_ascii_whitespace();
            let rank: u32 = parse_num(next_field(&mut it, ln, "rank")?, ln, "rank")?;
            let code = next_field(&mut it, ln, "kind")?;
            let kind = EventKind::from_code(code)
                .ok_or_else(|| parse_err(ln, format!("unknown kind {code:?}")))?;
            let marker: u64 = parse_num(next_field(&mut it, ln, "marker")?, ln, "marker")?;
            let t0: u64 = parse_num(next_field(&mut it, ln, "t_start")?, ln, "t_start")?;
            let t1: u64 = parse_num(next_field(&mut it, ln, "t_end")?, ln, "t_end")?;
            let site_s = next_field(&mut it, ln, "site")?;
            let site = if site_s == "-" {
                SiteId::UNKNOWN
            } else {
                SiteId(parse_num(site_s, ln, "site")?)
            };
            let a: i64 = parse_num(next_field(&mut it, ln, "arg0")?, ln, "arg0")?;
            let b: i64 = parse_num(next_field(&mut it, ln, "arg1")?, ln, "arg1")?;
            let msg = match it.next() {
                Some("M") => {
                    let src: u32 = parse_num(next_field(&mut it, ln, "src")?, ln, "src")?;
                    let dst: u32 = parse_num(next_field(&mut it, ln, "dst")?, ln, "dst")?;
                    let tag: i32 = parse_num(next_field(&mut it, ln, "tag")?, ln, "tag")?;
                    let bytes: u32 = parse_num(next_field(&mut it, ln, "bytes")?, ln, "bytes")?;
                    let seq: u64 = parse_num(next_field(&mut it, ln, "seq")?, ln, "seq")?;
                    Some(MsgInfo {
                        src: Rank(src),
                        dst: Rank(dst),
                        tag: Tag(tag),
                        bytes,
                        seq,
                    })
                }
                Some(tok) => return Err(parse_err(ln, format!("unexpected token {tok:?}"))),
                None => None,
            };
            records.push(TraceRecord {
                rank: Rank(rank),
                kind,
                marker,
                t_start: t0,
                t_end: t1,
                site,
                msg,
                args: [a, b],
                label,
            });
            continue;
        }
        return Err(parse_err(ln, format!("unrecognized line: {line:?}")));
    }
    Ok(TraceFile {
        records,
        sites: SiteTable::from_snapshot(sites),
        n_ranks,
    })
}

/// Write the JSON-lines format: a header object then one record per line.
pub fn write_jsonl<W: Write>(w: &mut W, file: &TraceFile) -> io::Result<()> {
    #[derive(serde::Serialize)]
    struct Header<'a> {
        format: &'static str,
        n_ranks: usize,
        sites: &'a [SourceLoc],
    }
    let sites = file.sites.snapshot();
    let header = Header {
        format: "tracedbg-v1",
        n_ranks: file.n_ranks,
        sites: &sites,
    };
    serde_json::to_writer(&mut *w, &header)?;
    writeln!(w)?;
    for r in &file.records {
        serde_json::to_writer(&mut *w, r)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Read the JSON-lines format.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<TraceFile, ReadError> {
    #[derive(serde::Deserialize)]
    struct Header {
        #[allow(dead_code)]
        format: String,
        n_ranks: usize,
        sites: Vec<SourceLoc>,
    }
    let mut lines = r.lines();
    let first = lines.next().ok_or_else(|| parse_err(1, "empty file"))??;
    let header: Header =
        serde_json::from_str(&first).map_err(|e| parse_err(1, format!("bad header: {e}")))?;
    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord = serde_json::from_str(&line)
            .map_err(|e| parse_err(i + 2, format!("bad record: {e}")))?;
        records.push(rec);
    }
    Ok(TraceFile {
        records,
        sites: SiteTable::from_snapshot(header.sites),
        n_ranks: header.n_ranks,
    })
}

// ------------------------------------------------------------- binary

const BIN_MAGIC: &[u8; 6] = b"TDBG1\n";

fn kind_code_u8(kind: EventKind) -> u8 {
    EventKind::all()
        .iter()
        .position(|k| *k == kind)
        .expect("kind in table") as u8
}

fn kind_from_u8(code: u8, ln: usize) -> Result<EventKind, ReadError> {
    EventKind::all()
        .get(code as usize)
        .copied()
        .ok_or_else(|| parse_err(ln, format!("bad kind code {code}")))
}

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let b = s.as_bytes();
    w_u32(w, b.len() as u32)?;
    w.write_all(b)
}

struct BinReader<R> {
    r: R,
}

impl<R: io::Read> BinReader<R> {
    fn u32(&mut self) -> Result<u32, ReadError> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, ReadError> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, ReadError> {
        Ok(self.u64()? as i64)
    }

    fn u8(&mut self) -> Result<u8, ReadError> {
        let mut b = [0u8; 1];
        self.r.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn string(&mut self) -> Result<String, ReadError> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(parse_err(0, format!("string length {len} unreasonable")));
        }
        let mut b = vec![0u8; len];
        self.r.read_exact(&mut b)?;
        String::from_utf8(b).map_err(|_| parse_err(0, "invalid UTF-8"))
    }
}

/// Write the compact binary format (`.tbin`). Fixed little-endian fields;
/// roughly 4–6× denser than the text format on message-heavy traces.
pub fn write_binary<W: Write>(w: &mut W, file: &TraceFile) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    w_u32(w, file.n_ranks as u32)?;
    let sites = file.sites.snapshot();
    w_u32(w, sites.len() as u32)?;
    for s in &sites {
        w_u32(w, s.line)?;
        w_str(w, &s.file)?;
        w_str(w, &s.func)?;
    }
    w_u64(w, file.records.len() as u64)?;
    for r in &file.records {
        w_u32(w, r.rank.0)?;
        w.write_all(&[kind_code_u8(r.kind)])?;
        w_u64(w, r.marker)?;
        w_u64(w, r.t_start)?;
        w_u64(w, r.t_end)?;
        w_u32(w, r.site.0)?;
        w_u64(w, r.args[0] as u64)?;
        w_u64(w, r.args[1] as u64)?;
        let flags = (r.msg.is_some() as u8) | ((r.label.is_some() as u8) << 1);
        w.write_all(&[flags])?;
        if let Some(m) = &r.msg {
            w_u32(w, m.src.0)?;
            w_u32(w, m.dst.0)?;
            w_u32(w, m.tag.0 as u32)?;
            w_u32(w, m.bytes)?;
            w_u64(w, m.seq)?;
        }
        if let Some(l) = &r.label {
            w_str(w, l)?;
        }
    }
    Ok(())
}

/// Read the binary format.
pub fn read_binary<R: io::Read>(r: R) -> Result<TraceFile, ReadError> {
    let mut br = BinReader { r };
    let mut magic = [0u8; 6];
    br.r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(parse_err(0, "not a tracedbg binary trace (bad magic)"));
    }
    let n_ranks = br.u32()? as usize;
    let n_sites = br.u32()? as usize;
    let mut sites = Vec::with_capacity(n_sites.min(1 << 20));
    for _ in 0..n_sites {
        let line = br.u32()?;
        let file = br.string()?;
        let func = br.string()?;
        sites.push(SourceLoc::new(file, line, func));
    }
    let n_records = br.u64()? as usize;
    let mut records = Vec::with_capacity(n_records.min(1 << 24));
    for i in 0..n_records {
        let rank = Rank(br.u32()?);
        let kind = kind_from_u8(br.u8()?, i)?;
        let marker = br.u64()?;
        let t_start = br.u64()?;
        let t_end = br.u64()?;
        let site = SiteId(br.u32()?);
        let a0 = br.i64()?;
        let a1 = br.i64()?;
        let flags = br.u8()?;
        let msg = if flags & 1 != 0 {
            Some(MsgInfo {
                src: Rank(br.u32()?),
                dst: Rank(br.u32()?),
                tag: Tag(br.u32()? as i32),
                bytes: br.u32()?,
                seq: br.u64()?,
            })
        } else {
            None
        };
        let label = if flags & 2 != 0 {
            Some(br.string()?)
        } else {
            None
        };
        records.push(TraceRecord {
            rank,
            kind,
            marker,
            t_start,
            t_end,
            site,
            msg,
            args: [a0, a1],
            label,
        });
    }
    Ok(TraceFile {
        records,
        sites: SiteTable::from_snapshot(sites),
        n_ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind::*;

    fn sample() -> TraceFile {
        let sites = SiteTable::new();
        let s0 = sites.site("strassen.c", 161, "MatrSend");
        let recs = vec![
            TraceRecord::basic(0u32, FnEnter, 1, 0)
                .with_site(s0)
                .with_args(7, 3),
            TraceRecord::basic(0u32, Send, 2, 5)
                .with_span(5, 8)
                .with_site(s0)
                .with_msg(MsgInfo {
                    src: Rank(0),
                    dst: Rank(7),
                    tag: Tag(11),
                    bytes: 1024,
                    seq: 4,
                }),
            TraceRecord::basic(1u32, Probe, 1, 9)
                .with_args(42, 0)
                .with_label("jres value at loop"),
        ];
        TraceFile::new(recs, sites, 8)
    }

    #[test]
    fn text_roundtrip() {
        let f = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &f).unwrap();
        let back = read_text(io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.n_ranks, 8);
        assert_eq!(back.records, f.records);
        assert_eq!(back.sites.len(), 1);
        assert_eq!(back.sites.resolve(SiteId(0)).unwrap().func, "MatrSend");
    }

    #[test]
    fn jsonl_roundtrip() {
        let f = sample();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &f).unwrap();
        let back = read_jsonl(io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.n_ranks, 8);
        assert_eq!(back.records, f.records);
    }

    #[test]
    fn label_with_spaces_survives_text() {
        let f = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &f).unwrap();
        let back = read_text(io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.records[2].label.as_deref(), Some("jres value at loop"));
    }

    #[test]
    fn bad_lines_are_reported_with_line_numbers() {
        let txt = "#tracedbg v1\n#ranks 2\nR 0 ZZ 1 0 0 - 0 0\n";
        match read_text(io::Cursor::new(txt)) {
            Err(ReadError::Parse(3, msg)) => assert!(msg.contains("ZZ"), "{msg}"),
            other => panic!("expected parse error, got {other:?}"),
        }
        let txt2 = "garbage\n";
        assert!(matches!(
            read_text(io::Cursor::new(txt2)),
            Err(ReadError::Parse(1, _))
        ));
    }

    #[test]
    fn empty_text_file_is_empty_trace() {
        let f = read_text(io::Cursor::new("#tracedbg v1\n#ranks 0\n")).unwrap();
        assert!(f.records.is_empty());
        assert_eq!(f.n_ranks, 0);
    }

    #[test]
    fn into_store() {
        let s = sample().into_store();
        assert_eq!(s.n_ranks(), 8);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn binary_roundtrip() {
        let f = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &f).unwrap();
        let back = read_binary(io::Cursor::new(&buf)).unwrap();
        assert_eq!(back.n_ranks, 8);
        assert_eq!(back.records, f.records);
        assert_eq!(back.sites.len(), f.sites.len());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(
            read_binary(io::Cursor::new(b"NOTATRACE")),
            Err(ReadError::Parse(0, _))
        ));
        // Truncated file -> IO error.
        let f = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &f).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            read_binary(io::Cursor::new(&buf)),
            Err(ReadError::Io(_))
        ));
    }

    #[test]
    fn binary_denser_than_text_on_messages() {
        // A message-heavy trace: binary should not be larger than text.
        let sites = SiteTable::new();
        let s0 = sites.site("x.c", 1, "f");
        let recs: Vec<TraceRecord> = (0..200u64)
            .map(|i| {
                TraceRecord::basic(0u32, Send, i + 1, i * 10)
                    .with_span(i * 10, i * 10 + 5)
                    .with_site(s0)
                    .with_msg(MsgInfo {
                        src: Rank(0),
                        dst: Rank(1),
                        tag: Tag(3),
                        bytes: 4096,
                        seq: i,
                    })
            })
            .collect();
        let f = TraceFile::new(recs, sites, 2);
        let mut tbin = Vec::new();
        write_binary(&mut tbin, &f).unwrap();
        let mut ttxt = Vec::new();
        write_text(&mut ttxt, &f).unwrap();
        assert!(
            tbin.len() < ttxt.len() * 2,
            "binary {} vs text {}",
            tbin.len(),
            ttxt.len()
        );
        let back = read_binary(io::Cursor::new(&tbin)).unwrap();
        assert_eq!(back.records.len(), 200);
    }

    #[test]
    fn kind_codes_are_dense_and_stable() {
        for (i, k) in EventKind::all().iter().enumerate() {
            assert_eq!(kind_code_u8(*k) as usize, i);
            assert_eq!(kind_from_u8(i as u8, 0).unwrap(), *k);
        }
        assert!(kind_from_u8(200, 0).is_err());
    }
}
