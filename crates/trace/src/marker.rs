//! Execution markers (§2).
//!
//! "The key idea is to put tags in the execution trace that allow mapping
//! from a particular trace record to the point of its generation. We call
//! such a tag an *execution marker*."
//!
//! In this implementation a marker is the value of a per-process software
//! event counter at the instant an instrumented construct executes — the
//! same scheme as the software instruction counter the paper builds on
//! (Mellor-Crummey & LeBlanc). Because a deterministic replay regenerates
//! the identical event sequence, `(rank, count)` names one unique program
//! state across runs, which is exactly what stoplines, replay and *undo*
//! need.

use crate::ids::Rank;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One execution marker: the `count`-th instrumentation event executed by
/// process `rank`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Marker {
    pub rank: Rank,
    pub count: u64,
}

impl Marker {
    pub fn new(rank: impl Into<Rank>, count: u64) -> Self {
        Marker {
            rank: rank.into(),
            count,
        }
    }
}

impl fmt::Debug for Marker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}", self.rank, self.count)
    }
}

/// A marker per process: the coordinates of a global debugger stop — one
/// threshold for each process's `UserMonitor` (§4.1: "the stopline will be
/// communicated to p2d2 as a set of breakpoints along with the execution
/// markers indicating the corresponding states").
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MarkerVector {
    counts: Vec<u64>,
}

impl MarkerVector {
    /// The state "before anything executed" for `n` processes.
    pub fn zero(n: usize) -> Self {
        MarkerVector { counts: vec![0; n] }
    }

    pub fn from_counts(counts: Vec<u64>) -> Self {
        MarkerVector { counts }
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn get(&self, rank: Rank) -> u64 {
        self.counts[rank.ix()]
    }

    pub fn set(&mut self, rank: Rank, count: u64) {
        self.counts[rank.ix()] = count;
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterate `(rank, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = Marker> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(r, &c)| Marker::new(r as u32, c))
    }

    /// Componentwise `<=`: does stopping at `self` precede (or equal)
    /// stopping at `other` in every process?
    pub fn le(&self, other: &MarkerVector) -> bool {
        self.counts.len() == other.counts.len()
            && self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Strictly earlier in at least one process and later in none.
    pub fn lt(&self, other: &MarkerVector) -> bool {
        self.le(other) && self != other
    }

    /// Componentwise minimum — the latest common predecessor state.
    pub fn meet(&self, other: &MarkerVector) -> MarkerVector {
        assert_eq!(self.counts.len(), other.counts.len());
        MarkerVector {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| (*a).min(*b))
                .collect(),
        }
    }
}

impl fmt::Debug for MarkerVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vector() {
        let v = MarkerVector::zero(4);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|m| m.count == 0));
    }

    #[test]
    fn get_set() {
        let mut v = MarkerVector::zero(3);
        v.set(Rank(1), 42);
        assert_eq!(v.get(Rank(1)), 42);
        assert_eq!(v.get(Rank(0)), 0);
    }

    #[test]
    fn partial_order() {
        let a = MarkerVector::from_counts(vec![1, 2, 3]);
        let b = MarkerVector::from_counts(vec![1, 5, 3]);
        let c = MarkerVector::from_counts(vec![2, 1, 3]);
        assert!(a.le(&b));
        assert!(a.lt(&b));
        assert!(!b.le(&a));
        assert!(!a.le(&c) && !c.le(&a)); // incomparable
        assert!(a.le(&a) && !a.lt(&a));
    }

    #[test]
    fn meet_is_lower_bound() {
        let b = MarkerVector::from_counts(vec![1, 5, 3]);
        let c = MarkerVector::from_counts(vec![2, 1, 3]);
        let m = b.meet(&c);
        assert_eq!(m.counts(), &[1, 1, 3]);
        assert!(m.le(&b) && m.le(&c));
    }

    #[test]
    fn length_mismatch_not_le() {
        let a = MarkerVector::zero(2);
        let b = MarkerVector::zero(3);
        assert!(!a.le(&b));
    }
}
