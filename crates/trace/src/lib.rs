//! AIMS-style execution traces for trace-driven debugging.
//!
//! This crate is the shared vocabulary of the `tracedbg` workspace. It
//! defines:
//!
//! * process [`Rank`]s, message [`Tag`]s and interned source locations
//!   ([`SiteTable`]) — the identifiers every other crate speaks;
//! * [`Marker`]s — the paper's *execution markers* (§2): a per-process
//!   counter value that names a unique state of the execution and that the
//!   controlled-replay machinery tests against debugger-set thresholds;
//! * [`TraceRecord`]s — one record per executed instrumented construct,
//!   carrying the construct's location, the executing process, start/end
//!   simulated times, and (for message-passing constructs) the message tag
//!   and endpoints, exactly the schema of §3;
//! * [`TraceBuffer`] / [`TraceStore`] — per-process collection with
//!   on-demand flush (the paper's extension of the AIMS monitor for *during
//!   execution* use) and a merged, queryable whole-program history;
//! * text and JSON trace file formats ([`file`]).
//!
//! Everything here is deliberately independent of the runtime: the trace is
//! plain data, so the analyses (`tracedbg-tracegraph`, `tracedbg-causality`)
//! and the visualizers consume it without linking the engine.

pub mod buffer;
pub mod diff;
pub mod event;
pub mod file;
pub mod history;
pub mod ids;
pub mod loc;
pub mod marker;
pub mod query;
pub mod schedule;
pub mod source;
pub mod stats;

pub use buffer::{FlushHandle, TraceBuffer};
pub use diff::{diff_traces, trace_digest, DiffMode, Divergence};
pub use event::{CollKind, EventKind, MsgInfo, TraceRecord};
pub use history::{EventId, TraceStore};
pub use ids::{ChannelId, Rank, SiteId, Tag, ANY_SOURCE, ANY_TAG};
pub use loc::{SiteTable, SourceLoc};
pub use marker::{Marker, MarkerVector};
pub use query::EventQuery;
pub use schedule::{ArtifactMeta, Decision, DecisionPoint, Fault, ScheduleArtifact};
pub use source::{
    materialize, CommEdge, EdgeDir, EventIter, Select, SourceError, TraceSink, TraceSource,
};
pub use stats::TraceStats;
