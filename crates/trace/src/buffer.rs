//! Per-process trace buffers with on-demand flush.
//!
//! AIMS was built for post-mortem analysis; the paper's first integration
//! problem (§2.1) was that the debugger needs the trace *during* execution,
//! solved "by adding a monitor function that flushes trace information on
//! demand". [`TraceBuffer`] is that monitor-side buffer: each simulated
//! process appends records locally (no cross-process synchronization on the
//! hot path) and the debugger drains everything collected so far through a
//! shared [`FlushHandle`].
//!
//! "The size of trace file can be controlled by ... toggling the collection
//! on and off in the monitor" — see [`TraceBuffer::set_enabled`].

use crate::event::TraceRecord;
use crate::source::TraceSink;
use std::sync::{Arc, Mutex};

/// Shared drain target for all per-process buffers of one run.
///
/// Optionally tees every record through an attached [`TraceSink`] (a
/// streaming store writer) at flush time — persistence happens while the
/// run executes, without perturbing what the debugger drains.
#[derive(Clone, Default)]
pub struct FlushHandle {
    sink: Arc<Mutex<Vec<TraceRecord>>>,
    tee: Arc<Mutex<Option<Box<dyn TraceSink>>>>,
}

impl FlushHandle {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a streaming sink; every record subsequently flushed is also
    /// forwarded to it. Replaces any previously attached sink.
    pub fn set_tee(&self, sink: Box<dyn TraceSink>) {
        *self.tee.lock().unwrap() = Some(sink);
    }

    /// Detach and return the attached sink (so its owner can finish it).
    pub fn take_tee(&self) -> Option<Box<dyn TraceSink>> {
        self.tee.lock().unwrap().take()
    }

    /// Forward records to the attached sink without storing them here.
    /// Used for records that reach the collector on a path that bypasses
    /// [`FlushHandle::accept`] (end-of-run recorder drains).
    pub fn tee_records(&self, records: &[TraceRecord]) {
        if let Some(t) = self.tee.lock().unwrap().as_mut() {
            for r in records {
                t.accept(r);
            }
        }
    }

    /// Append a batch of flushed records.
    pub fn accept(&self, mut records: Vec<TraceRecord>) {
        self.tee_records(&records);
        self.sink.lock().unwrap().append(&mut records);
    }

    /// Take everything flushed so far (leaves the sink empty).
    pub fn drain(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.sink.lock().unwrap())
    }

    /// Number of records currently waiting in the sink.
    pub fn pending(&self) -> usize {
        self.sink.lock().unwrap().len()
    }

    /// Copy everything flushed so far without draining it (checkpoint
    /// capture: the snapshot must not perturb the live run).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.sink.lock().unwrap().clone()
    }
}

/// A per-process append-only record buffer.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    enabled: bool,
    /// Records dropped while collection was toggled off.
    suppressed: u64,
}

impl TraceBuffer {
    pub fn new() -> Self {
        TraceBuffer {
            records: Vec::new(),
            enabled: true,
            suppressed: 0,
        }
    }

    /// Toggle collection. While disabled, [`TraceBuffer::push`] counts but
    /// does not store records.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Append one record (subject to the toggle).
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.enabled {
            self.records.push(rec);
        } else {
            self.suppressed += 1;
        }
    }

    /// Records currently buffered (not yet flushed).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of records suppressed by the toggle.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Drain this buffer into the shared handle (on-demand flush).
    pub fn flush_into(&mut self, handle: &FlushHandle) {
        if !self.records.is_empty() {
            handle.accept(std::mem::take(&mut self.records));
        }
    }

    /// Drain into a plain vector (end-of-run collection).
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Peek at buffered records without draining.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Mutable access to buffered records (the engine patches fields it
    /// only learns after the record is emitted, e.g. send sequence
    /// numbers).
    pub fn records_mut(&mut self) -> &mut [TraceRecord] {
        &mut self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn rec(marker: u64) -> TraceRecord {
        TraceRecord::basic(0u32, EventKind::Compute, marker, marker * 10)
    }

    #[test]
    fn push_and_take() {
        let mut b = TraceBuffer::new();
        b.push(rec(1));
        b.push(rec(2));
        assert_eq!(b.len(), 2);
        let v = b.take();
        assert_eq!(v.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn toggle_suppresses() {
        let mut b = TraceBuffer::new();
        b.push(rec(1));
        b.set_enabled(false);
        b.push(rec(2));
        b.push(rec(3));
        b.set_enabled(true);
        b.push(rec(4));
        assert_eq!(b.len(), 2);
        assert_eq!(b.suppressed(), 2);
        let markers: Vec<u64> = b.records().iter().map(|r| r.marker).collect();
        assert_eq!(markers, vec![1, 4]);
    }

    #[test]
    fn tee_sees_accepts_and_explicit_forwards() {
        use crate::source::TraceSink;
        use std::sync::{Arc, Mutex};
        struct CountSink(Arc<Mutex<Vec<u64>>>);
        impl TraceSink for CountSink {
            fn accept(&mut self, r: &TraceRecord) {
                self.0.lock().unwrap().push(r.marker);
            }
        }
        let h = FlushHandle::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        h.set_tee(Box::new(CountSink(seen.clone())));
        h.accept(vec![rec(1), rec(2)]);
        h.tee_records(&[rec(3)]);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
        // tee_records does not store; accept does.
        assert_eq!(h.pending(), 2);
        assert!(h.take_tee().is_some());
        h.accept(vec![rec(4)]);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn flush_on_demand() {
        let h = FlushHandle::new();
        let mut b0 = TraceBuffer::new();
        let mut b1 = TraceBuffer::new();
        b0.push(rec(1));
        b1.push(rec(2));
        b0.flush_into(&h);
        assert_eq!(h.pending(), 1);
        b1.flush_into(&h);
        assert_eq!(h.pending(), 2);
        let drained = h.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(h.pending(), 0);
        // flushing an empty buffer is a no-op
        b0.flush_into(&h);
        assert_eq!(h.pending(), 0);
    }
}
